#!/usr/bin/env python3
"""Per-package coverage floors over a ``coverage.py`` JSON report.

CI runs the tier-1 suite under ``pytest --cov`` and hands the JSON report
to this script, which aggregates line coverage per ``repro`` sub-package,
prints the table, and fails when any package sinks below its floor:

    PYTHONPATH=src python -m pytest -q --ignore=benchmarks \
        --cov=repro --cov-report=json:coverage.json
    python scripts/coverage_report.py coverage.json

Two packages carry elevated floors: ``repro/dcnet`` (the DC-net rounds
and the blame protocol — the paper's phase 1 and its countermeasure) and
``repro/blockchain`` (the payload layer the broadcasts exist to carry).
Those are the subsystems where an untested branch is a correctness risk
for the reproduction itself, so their floors flag regressions loudly.

The script only needs the standard library plus ``repro``'s table
formatter; the coverage measurement itself happens wherever pytest-cov is
installed (CI — the local environment does not need it).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Mapping, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402

#: Minimum line coverage (percent) any repro sub-package must hold.
DEFAULT_FLOOR = 60.0

#: Paper-critical packages watched with elevated floors.
CRITICAL_FLOORS: Dict[str, float] = {
    "dcnet": 85.0,
    "blockchain": 85.0,
}


def package_of(path: str) -> str:
    """Map a measured file path onto its ``repro`` sub-package name."""
    parts = Path(path).parts
    if "repro" not in parts:
        return "(other)"
    below = parts[parts.index("repro") + 1:]
    return below[0] if len(below) > 1 else "(root)"


def collect_packages(report: Mapping) -> Dict[str, Tuple[int, int]]:
    """Aggregate ``(covered_lines, num_statements)`` per sub-package."""
    packages: Dict[str, Tuple[int, int]] = {}
    for path, entry in report["files"].items():
        summary = entry["summary"]
        name = package_of(path)
        covered, statements = packages.get(name, (0, 0))
        packages[name] = (
            covered + int(summary["covered_lines"]),
            statements + int(summary["num_statements"]),
        )
    return packages


def floor_for(package: str, default_floor: float) -> float:
    return CRITICAL_FLOORS.get(package, default_floor)


def evaluate(
    packages: Mapping[str, Tuple[int, int]], default_floor: float
) -> Tuple[list, list]:
    """Build the report rows and the list of floor violations."""
    rows = []
    failures = []
    for name in sorted(packages):
        covered, statements = packages[name]
        percent = 100.0 * covered / statements if statements else 100.0
        floor = floor_for(name, default_floor)
        flag = "critical" if name in CRITICAL_FLOORS else ""
        status = "ok" if percent >= floor else "BELOW FLOOR"
        if percent < floor:
            failures.append((name, percent, floor))
        rows.append([
            name, statements, covered, f"{percent:.1f}%",
            f"{floor:.0f}%", flag, status,
        ])
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", type=Path, help="coverage.py JSON report to evaluate"
    )
    parser.add_argument(
        "--floor", type=float, default=DEFAULT_FLOOR,
        help="default per-package floor in percent "
        f"(default: {DEFAULT_FLOOR:.0f}; critical packages keep their "
        "own elevated floors)",
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text())
    packages = collect_packages(report)
    if not packages:
        print("error: the report measured no files", file=sys.stderr)
        return 2
    rows, failures = evaluate(packages, args.floor)
    print(format_table(
        ["package", "statements", "covered", "coverage", "floor",
         "watch", "status"],
        rows,
        title="line coverage per repro sub-package",
    ))
    totals = report.get("totals", {})
    if "percent_covered" in totals:
        print(f"# overall: {float(totals['percent_covered']):.1f}%")
    if failures:
        for name, percent, floor in failures:
            print(
                f"error: repro/{name} at {percent:.1f}% is below its "
                f"{floor:.0f}% floor",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
