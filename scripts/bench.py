#!/usr/bin/env python3
"""Run the tracked benchmark suite and record/compare ``BENCH_*.json``.

The perf trajectory of this repository lives in ``benchmarks/results/``:
every engine-relevant change runs this script, which times the E-series hot
paths through ``benchmarks/harness.py``, writes ``BENCH_<label>.json`` and
compares the numbers against a baseline report, failing (exit code 1) when
any scenario's calibrated events/sec regressed beyond the threshold or a
scale tier's peak RSS exceeded its scenario-declared memory budget (the
memory gate needs no baseline and also fails under ``--no-compare``).
Each result also carries a telemetry counter block (events dispatched,
per-shard stats; ``--no-telemetry`` to skip), and ``--smoke`` asserts
that an *enabled* recorder stays within a small overhead budget on the
5,000-peer flood tier (see ``docs/OBSERVABILITY.md``).

Typical uses::

    # full suite, label derived from the git revision, compare to the
    # newest existing report in benchmarks/results/
    python scripts/bench.py

    # quick CI gate against the committed baseline
    python scripts/bench.py --smoke --label ci \
        --baseline benchmarks/results/BENCH_fastpath.json

    # measure an older source tree with the *same* harness (before/after)
    python scripts/bench.py --src /path/to/old/src --label pre-fastpath

No third-party dependencies beyond what ``repro`` itself needs.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT_DIR = REPO_ROOT / "benchmarks" / "results"


def _git_label() -> str:
    """Default report label: short revision, ``-dirty`` when modified."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return f"{rev}-dirty" if dirty else rev
    except (OSError, subprocess.CalledProcessError):
        return "local"


def _report_age(path: Path) -> float:
    """When a report was generated: embedded meta timestamp, mtime fallback.

    File mtimes all collapse to checkout time on a fresh clone, which would
    make "newest report" arbitrary; the ``created_at`` the harness embeds
    at generation time survives the checkout.
    """
    try:
        with open(path) as handle:
            return float(json.load(handle)["meta"]["created_at"])
    except (OSError, ValueError, KeyError, TypeError):
        return path.stat().st_mtime


def _latest_report(output_dir: Path, exclude: Path) -> Optional[Path]:
    """Newest ``BENCH_*.json`` in ``output_dir`` other than ``exclude``."""
    candidates = [
        path
        for path in sorted(
            output_dir.glob("BENCH_*.json"),
            key=_report_age,
            reverse=True,
        )
        if path.resolve() != exclude.resolve()
    ]
    return candidates[0] if candidates else None


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the quick smoke subset of scenarios",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        metavar="PATTERN",
        help="scenario names or fnmatch patterns, e.g. 'e11_*' "
        "(overrides --smoke selection)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        metavar="ENGINE",
        help="keep only scenarios exercising these delivery engines "
        "(event, batched, sharded); composes with --smoke/--scenarios",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the tracked scenarios (name, smoke membership, "
        "engine, description) and exit",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument(
        "--label",
        default=None,
        help="report label; file becomes BENCH_<label>.json "
        "(default: git short revision)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=DEFAULT_OUTPUT_DIR,
        help="where reports live (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report to compare against "
        "(default: newest other BENCH_*.json in the output dir)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fail when calibrated events/sec drops more than this "
        "fraction (default: 0.25)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the baseline comparison entirely",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip telemetry counter collection (one untimed extra run "
        "per scenario) and the --smoke overhead gate",
    )
    parser.add_argument(
        "--telemetry-overhead-threshold",
        type=float,
        default=0.03,
        help="--smoke gate: fail when an enabled telemetry recorder slows "
        "e11_flood_5000 by more than this fraction (default: 0.03)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and compare without writing a report file",
    )
    parser.add_argument(
        "--src",
        type=Path,
        default=None,
        help="measure this source tree instead of the repository's src/ "
        "(before/after comparisons with one harness)",
    )
    args = parser.parse_args(argv)

    src = (args.src or (REPO_ROOT / "src")).resolve()
    sys.path.insert(0, str(src))
    sys.path.insert(0, str(REPO_ROOT))  # for benchmarks.harness
    from benchmarks import harness

    if args.list:
        for name in harness.scenario_names():
            scenario = harness.SCENARIOS[name]
            marker = "smoke" if scenario.smoke else "     "
            print(
                f"{name:28s} [{marker}] [{scenario.engine:7s}] "
                f"{scenario.description}"
            )
        return 0

    if args.scenarios:
        # Patterns select from the tracked suite (an exact name is its own
        # pattern); a pattern matching nothing fails with the available
        # names.
        names = []
        for pattern in args.scenarios:
            matched = fnmatch.filter(harness.scenario_names(), pattern)
            if not matched:
                available = ", ".join(harness.scenario_names())
                parser.error(
                    f"--scenarios pattern {pattern!r} matches no tracked "
                    f"scenario (available: {available})"
                )
            for name in matched:
                if name not in names:
                    names.append(name)
    else:
        names = harness.scenario_names(smoke_only=args.smoke)

    if args.engines:
        known_engines = {
            harness.SCENARIOS[name].engine
            for name in harness.scenario_names()
        }
        unknown = [e for e in args.engines if e not in known_engines]
        if unknown:
            parser.error(
                f"--engines {unknown} match no tracked scenario "
                f"(tracked engines: {', '.join(sorted(known_engines))})"
            )
        names = [
            name
            for name in names
            if harness.SCENARIOS[name].engine in args.engines
        ]
        if not names:
            parser.error(
                "the --engines filter removed every selected scenario"
            )

    label = args.label or _git_label()
    print(f"# bench: scenarios={names} label={label} src={src}")
    report = harness.run_suite(
        names,
        repeats=args.repeats,
        warmup=args.warmup,
        meta={"label": label, "source_tree": str(src)},
        collect_telemetry=not args.no_telemetry,
    )

    for name in names:
        result = report["results"][name]
        print(
            f"{name:24s} {result['median_seconds'] * 1000:10.1f} ms median  "
            f"{result['events_per_second']:12,.0f} events/s  "
            f"rss {result['peak_rss_kib'] / 1024:.0f} MiB"
        )

    output_path = args.output_dir / f"BENCH_{label}.json"
    if not args.no_write:
        os.makedirs(args.output_dir, exist_ok=True)
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {output_path.relative_to(Path.cwd())}"
              if output_path.is_relative_to(Path.cwd())
              else f"# wrote {output_path}")

    # The memory-budget gate is baseline-free: budgets travel inside the
    # report, so it runs (and can fail the invocation) even under
    # --no-compare or when no baseline report exists yet.
    memory_failed = False
    memory_entries = harness.memory_gate(report)
    if memory_entries:
        print("# memory budgets:")
        for entry in memory_entries:
            marker = "!" if entry["status"] == "over" else " "
            print(
                f"{entry['name']:24s} {marker} "
                f"{entry['peak_rss_mib']:8,.0f} MiB peak rss "
                f"(budget {entry['budget_mib']:,.0f} MiB)"
            )
            if entry["status"] == "over":
                memory_failed = True
    if memory_failed:
        print("# FAIL: peak RSS above the scenario memory budget")

    # The telemetry-overhead gate proves the "zero overhead when a
    # recorder *is* attached" claim on the hot loop the docs make it
    # about.  Baseline-free (interleaved off/on runs of the same build),
    # it rides on --smoke only: the flood tier it measures is too slow
    # to run on every ad-hoc invocation.
    telemetry_failed = False
    if (args.smoke and not args.no_telemetry
            and "e11_flood_5000" in harness.SCENARIOS):
        gate = harness.telemetry_overhead("e11_flood_5000", repeats=3,
                                          warmup=args.warmup)
        threshold = args.telemetry_overhead_threshold
        over = gate["overhead"] > threshold
        print(
            f"# telemetry overhead ({gate['name']}): "
            f"{'!' if over else ' '} {gate['overhead']:+.2%} "
            f"(off {gate['off_seconds'] * 1000:.1f} ms -> "
            f"on {gate['on_seconds'] * 1000:.1f} ms, "
            f"threshold {threshold:.0%})"
        )
        if over:
            telemetry_failed = True
            print("# FAIL: enabled-telemetry overhead above threshold")

    gates_failed = memory_failed or telemetry_failed
    if args.no_compare:
        return 1 if gates_failed else 0
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = _latest_report(args.output_dir, exclude=output_path)
        if baseline_path is None:
            print("# no baseline report found; comparison skipped")
            return 1 if gates_failed else 0
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    print(f"# baseline: {baseline_path}")

    failed = False
    for entry in harness.compare_reports(
        baseline, report, max_regression=args.max_regression
    ):
        if entry["status"] == "missing":
            # Direction matters: a scenario absent from the *baseline* is
            # expected whenever a new tier lands (nothing to regress
            # against), while one absent from the *current* report usually
            # means the run was filtered or the scenario was dropped.
            if entry["baseline_eps"] is None:
                print(
                    f"{entry['name']:24s}   new scenario, no baseline "
                    f"({entry['current_eps']:,.0f} raw events/s)"
                )
            else:
                print(
                    f"{entry['name']:24s}   in baseline only; not measured "
                    "in this run"
                )
            continue
        marker = {
            "ok": " ",
            "improvement": "+",
            "regression": "!",
        }[entry["status"]]
        print(
            f"{entry['name']:24s} {marker} {entry['speedup']:.2f}x "
            f"calibrated vs baseline "
            f"({entry['baseline_eps']:,.0f} -> {entry['current_eps']:,.0f} "
            f"raw events/s)"
        )
        # Informational counter block: never a gate.  Either side may
        # predate the telemetry subsystem (or have run --no-telemetry),
        # so a missing block prints as "-" instead of failing.
        base_counters = entry["baseline_counters"]
        cur_counters = entry["current_counters"]
        if base_counters is not None or cur_counters is not None:
            def _events(counters):
                if counters is None:
                    return "-"
                return f"{counters.get('events_dispatched', 0):,}"
            print(
                f"{'':24s}   counters: events_dispatched "
                f"{_events(base_counters)} -> {_events(cur_counters)}"
            )
        if entry["status"] == "regression":
            failed = True
    if failed:
        print(
            f"# FAIL: regression beyond {args.max_regression:.0%} "
            "of calibrated events/sec"
        )
        return 1
    if gates_failed:
        return 1
    print("# OK: no scenario regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
