#!/usr/bin/env python3
"""The single entry point for declarative scenarios.

Every experiment this repository can express — the paper's E1–E12
evaluation settings and the stress scenarios beyond them — is a registered,
JSON-serializable :class:`~repro.scenarios.spec.ScenarioSpec`.  This CLI
enumerates, inspects and executes them:

    # what exists
    python scripts/scenario.py list
    python scripts/scenario.py list --tag stress

    # the full serialized spec of one scenario
    python scripts/scenario.py describe stress_node_churn

    # run one scenario (repetitions fan out over worker processes) and
    # persist the structured result, including the run digest
    python scripts/scenario.py run stress_node_churn --json-out churn.json

    # run an ad-hoc spec edited offline
    python scripts/scenario.py run --spec-file my_scenario.json

    # sweep-friendly overrides, no committed spec edits needed
    python scripts/scenario.py run stress_mixed_senders \
        --repetitions 5 --seed 99 --estimator rumor_centrality

    # swap in an active adversary model (see docs/ADVERSARIES.md)
    python scripts/scenario.py run stress_mixed_senders \
        --adversary-model adaptive

    # record runtime telemetry (docs/OBSERVABILITY.md): counters, phase
    # spans, per-shard stats, plus a Chrome-loadable trace file
    python scripts/scenario.py run e11_scale --engine sharded \
        --telemetry telemetry.json

Every run reports the anonymity metrics of the privacy subsystem
(``docs/PRIVACY.md``) next to the detection numbers; ``--no-privacy``
turns them off.

No dependencies beyond what ``repro`` itself needs.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiment import ESTIMATORS  # noqa: E402
from repro.analysis.reporting import format_table  # noqa: E402
from repro.scenarios import (  # noqa: E402
    PrivacySpec,
    ScenarioRunner,
    ScenarioSpec,
    available_scenarios,
    scenario,
)
from repro.telemetry import chrome_trace, write_json  # noqa: E402


def _cmd_list(args: argparse.Namespace) -> int:
    names = available_scenarios(tag=args.tag or "")
    if not names:
        print(f"no scenarios registered with tag {args.tag!r}")
        return 1
    rows = []
    for name in names:
        spec = scenario(name)
        topology = (
            f"{spec.topology.family}"
            f"({spec.topology.params.get('num_nodes', '?')})"
        )
        extras = []
        if spec.churn is not None:
            extras.append("churn")
        if spec.adversary.model != "static":
            extras.append(f"model={spec.adversary.model}")
        for fault in spec.faults:
            extras.append(f"fault={fault.model}")
        if spec.conditions.loss_probability > 0:
            extras.append(f"loss {spec.conditions.loss_probability:.0%}")
        if spec.workload.sender_pool:
            extras.append(f"{spec.workload.sender_pool} senders")
        rows.append([
            name,
            spec.protocol,
            topology,
            f"{spec.adversary.fraction:.0%}",
            ",".join(spec.tags),
            spec.description + (f" [{', '.join(extras)}]" if extras else ""),
        ])
    print(format_table(
        ["scenario", "protocol", "topology", "adversary", "tags",
         "description"],
        rows,
        title=f"{len(names)} registered scenarios",
    ))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    print(scenario(args.name).to_json(indent=2))
    return 0


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec_file:
        return ScenarioSpec.from_json(Path(args.spec_file).read_text())
    if not args.name:
        raise SystemExit("run: give a scenario name or --spec-file")
    return scenario(args.name)


def _cmd_run(args: argparse.Namespace) -> int:
    # Spec construction validates every registry name (estimator, adversary
    # model, fault model) and raises KeyError listing the registered
    # alternatives; surface that as a clean CLI error, not a traceback.
    try:
        spec = _load_spec(args)
        if args.seed is not None:
            spec = spec.derive(
                seeds=dataclasses.replace(spec.seeds, base_seed=args.seed)
            )
        if args.estimator is not None:
            spec = spec.derive(
                adversary=dataclasses.replace(
                    spec.adversary, estimator=args.estimator
                )
            )
        if args.adversary_model is not None:
            spec = spec.derive(
                adversary=dataclasses.replace(
                    spec.adversary, model=args.adversary_model
                )
            )
        if args.engine is not None:
            spec = spec.derive(engine=args.engine)
        if args.shards is not None:
            spec = spec.derive(shards=args.shards)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.no_privacy:
        spec = spec.derive(privacy=PrivacySpec(enabled=False))
    runner = ScenarioRunner(
        processes=args.processes, telemetry=bool(args.telemetry)
    )
    result = runner.run(spec, repetitions=args.repetitions)

    print(f"# scenario: {spec.name}  ({spec.description})")
    print(f"# protocol={spec.protocol} topology={spec.topology.family} "
          f"adversary={spec.adversary.fraction:.0%} "
          f"broadcasts={spec.workload.broadcasts} "
          f"repetitions={len(result.runs)}")
    metric_names = sorted(result.runs[0])
    rows = [
        [f"rep {rep} (seed {seed})"]
        + [run[metric] for metric in metric_names]
        for rep, (seed, run) in enumerate(zip(result.seeds, result.runs))
    ]
    rows.append(
        ["mean"] + [result.aggregate[metric] for metric in metric_names]
    )
    print(format_table(["run"] + metric_names, rows))
    print(f"# digest: {result.digest}")
    print(f"# engine: requested={spec.engine} "
          f"effective={result.aggregate['engine_effective']}")

    if args.telemetry:
        telemetry_path = Path(args.telemetry)
        write_json(telemetry_path, result.telemetry)
        trace_path = telemetry_path.with_suffix(".trace.json")
        write_json(trace_path, chrome_trace(result.telemetry))
        print(f"# wrote telemetry {telemetry_path} + trace {trace_path}")

    if args.json_out:
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {path}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="enumerate registered scenarios"
    )
    list_parser.add_argument(
        "--tag", default=None,
        help="only scenarios carrying this tag (e.g. 'paper', 'stress')",
    )
    list_parser.set_defaults(func=_cmd_list)

    describe_parser = commands.add_parser(
        "describe", help="print one scenario's full JSON spec"
    )
    describe_parser.add_argument("name")
    describe_parser.set_defaults(func=_cmd_describe)

    run_parser = commands.add_parser(
        "run", help="execute a scenario and print/persist its result"
    )
    run_parser.add_argument("name", nargs="?", default=None)
    run_parser.add_argument(
        "--spec-file", default=None,
        help="run a ScenarioSpec JSON file instead of a registered name",
    )
    run_parser.add_argument(
        "--json-out", default=None,
        help="write the structured result (spec, runs, digest) here",
    )
    run_parser.add_argument(
        "--repetitions", type=int, default=None,
        help="override the spec's repetition count",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's base seed",
    )
    run_parser.add_argument(
        "--estimator", default=None,
        help="override the spec's source estimator "
             f"({', '.join(sorted(ESTIMATORS))})",
    )
    run_parser.add_argument(
        "--adversary-model", default=None,
        help="override the spec's adversary behaviour model "
             "(see `repro.threat`; e.g. adaptive, eclipse, byzantine_dcnet)",
    )
    run_parser.add_argument(
        "--engine", default=None,
        help="override the spec's simulator engine ('event', 'batched' or "
             "'sharded'; all are seed-for-seed identical, 'batched' is "
             "faster at scale and 'sharded' spreads eligible runs over "
             "worker processes)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=None,
        help="worker-process count for --engine sharded "
             "(default: the engine's own default)",
    )
    run_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="record runtime telemetry (counters, phase spans, per-shard "
             "stats) and write the scenario-level JSON document here, plus "
             "a Chrome trace-event file next to it (PATH with a "
             "'.trace.json' suffix; load via chrome://tracing or Perfetto)",
    )
    run_parser.add_argument(
        "--no-privacy", action="store_true",
        help="skip the anonymity metrics (detection metrics only)",
    )
    run_parser.add_argument(
        "--processes", type=int, default=None,
        help="worker processes for the repetition fan-out (1 = serial)",
    )
    run_parser.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
