#!/usr/bin/env python3
"""Parameter trade-off: choosing k and d for a deployment.

The paper's pitch is flexibility: application designers pick the DC-net group
size ``k`` (cryptographic privacy floor, O(k²) message cost) and the
diffusion depth ``d`` (statistical privacy reach, added latency) to match
their use case.  This example sweeps both knobs on a 100-peer overlay and
prints the resulting cost matrix, mirroring the analysis an integrator would
run before deployment.

Each (k, d) cell is a derived scenario spec — the declarative grid the
scenario layer exists for: one base spec, ``derive()`` per grid point,
``build_session()`` into a runnable protocol session.

Run with:  python examples/parameter_tradeoff.py
"""

from repro.analysis.reporting import format_table
from repro.core import Phase
from repro.scenarios import (
    ConditionsSpec,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    build_session,
)

BASE = ScenarioSpec(
    name="parameter_tradeoff",
    description="Three-phase (k, d) cost matrix on 100 peers",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 100, "degree": 8, "seed": 5}
    ),
    conditions=ConditionsSpec(kind="ideal", delay=0.1),
    protocol="three_phase",
)


def main() -> None:
    group_sizes = [3, 5, 8]
    depths = [2, 4]

    rows = []
    for k in group_sizes:
        for d in depths:
            spec = BASE.derive(
                protocol_options={"group_size": k, "diffusion_depth": d},
                seeds=SeedPolicy(base_seed=1000 + 10 * k + d),
            )
            session = build_session(spec)
            result = session.state["system"].broadcast(
                source=0, payload=f"tradeoff probe k={k} d={d}".encode()
            )
            rows.append(
                [
                    k,
                    d,
                    result.messages_by_phase[Phase.DC_NET],
                    result.messages_by_phase[Phase.ADAPTIVE_DIFFUSION],
                    result.messages_by_phase[Phase.FLOOD],
                    result.messages_total,
                    result.completion_time,
                ]
            )

    print(
        format_table(
            ["k", "d", "dc msgs", "diffusion msgs", "flood msgs", "total", "completion"],
            rows,
            title="Cost of one broadcast on a 100-peer overlay (all runs reach 100%)",
        )
    )
    print()
    print(
        "Reading the table: k only affects the Phase-1 cost (quadratically), "
        "d shifts traffic from the cheap flood phase into the statistical "
        "diffusion phase and stretches the completion time — exactly the "
        "privacy/efficiency dial the paper proposes."
    )


if __name__ == "__main__":
    main()
