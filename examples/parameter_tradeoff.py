#!/usr/bin/env python3
"""Parameter trade-off: choosing k and d for a deployment.

The paper's pitch is flexibility: application designers pick the DC-net group
size ``k`` (cryptographic privacy floor, O(k²) message cost) and the
diffusion depth ``d`` (statistical privacy reach, added latency) to match
their use case.  This example sweeps both knobs on a 100-peer overlay and
prints the resulting cost matrix, mirroring the analysis an integrator would
run before deployment.

Run with:  python examples/parameter_tradeoff.py
"""

from repro.analysis.reporting import format_table
from repro.core import Phase, ProtocolConfig, ThreePhaseBroadcast
from repro.network.topology import random_regular_overlay


def main() -> None:
    overlay = random_regular_overlay(100, degree=8, seed=5)
    group_sizes = [3, 5, 8]
    depths = [2, 4]

    rows = []
    for k in group_sizes:
        for d in depths:
            protocol = ThreePhaseBroadcast(
                overlay, ProtocolConfig(group_size=k, diffusion_depth=d),
                seed=1000 + 10 * k + d,
            )
            result = protocol.broadcast(
                source=0, payload=f"tradeoff probe k={k} d={d}".encode()
            )
            rows.append(
                [
                    k,
                    d,
                    result.messages_by_phase[Phase.DC_NET],
                    result.messages_by_phase[Phase.ADAPTIVE_DIFFUSION],
                    result.messages_by_phase[Phase.FLOOD],
                    result.messages_total,
                    result.completion_time,
                ]
            )

    print(
        format_table(
            ["k", "d", "dc msgs", "diffusion msgs", "flood msgs", "total", "completion"],
            rows,
            title="Cost of one broadcast on a 100-peer overlay (all runs reach 100%)",
        )
    )
    print()
    print(
        "Reading the table: k only affects the Phase-1 cost (quadratically), "
        "d shifts traffic from the cheap flood phase into the statistical "
        "diffusion phase and stretches the completion time — exactly the "
        "privacy/efficiency dial the paper proposes."
    )


if __name__ == "__main__":
    main()
