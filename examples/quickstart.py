#!/usr/bin/env python3
"""Quickstart: broadcast one transaction with the three-phase protocol.

Builds a Bitcoin-like overlay of 300 peers, runs the paper's protocol
(DC-net group of k=5, adaptive diffusion of depth d=4, flood-and-prune) for a
single transaction and prints what happened in each phase.

Run with:  python examples/quickstart.py
"""

from repro.core import Phase, ProtocolConfig, ThreePhaseBroadcast
from repro.network.topology import random_regular_overlay


def main() -> None:
    overlay = random_regular_overlay(300, degree=8, seed=1)
    config = ProtocolConfig(group_size=5, diffusion_depth=4)
    protocol = ThreePhaseBroadcast(overlay, config, seed=2)

    result = protocol.broadcast(source=17, payload=b"alice pays bob 3 coins")

    print("Three-phase privacy-preserving broadcast")
    print("=" * 48)
    print(f"network size          : {overlay.number_of_nodes()} peers")
    print(f"originator (secret)   : node {result.source}")
    print(f"DC-net group          : {result.group}")
    print(f"initial virtual source: node {result.virtual_source} (hash-selected)")
    print(f"delivered fraction    : {result.delivered_fraction:.1%}")
    print(f"completion time       : {result.completion_time:.2f} simulated time units")
    print()
    print("messages per phase")
    for phase in (Phase.DC_NET, Phase.ADAPTIVE_DIFFUSION, Phase.FLOOD):
        start = result.timeline.start_of(phase)
        print(
            f"  {phase.value:<20} {result.messages_by_phase[phase]:>6} messages"
            f"   (starts at t={start:.2f})"
        )
    print(f"  {'total':<20} {result.messages_total:>6} messages")


if __name__ == "__main__":
    main()
