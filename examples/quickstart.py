#!/usr/bin/env python3
"""Quickstart: broadcast one transaction with the three-phase protocol.

The experiment is declared, not wired: the registered ``quickstart``
scenario spec (see ``scripts/scenario.py describe quickstart``) carries the
overlay (300 Bitcoin-like peers), the network conditions, the protocol and
its parameters (DC-net group of k=5, adaptive diffusion of depth d=4) and
the seed.  This example compiles the spec into a live session, runs a single
transaction and prints what happened in each phase.

Run with:  python examples/quickstart.py
"""

from repro.core import Phase
from repro.scenarios import build_session, scenario


def main() -> None:
    spec = scenario("quickstart")
    session = build_session(spec)
    # The compiled session exposes the paper's orchestrator; driving it
    # directly (instead of through the attack harness) yields the full
    # per-phase result.
    protocol = session.state["system"]

    result = protocol.broadcast(source=17, payload=b"alice pays bob 3 coins")

    print("Three-phase privacy-preserving broadcast")
    print("=" * 48)
    print(f"scenario spec         : {spec.name} ({spec.description})")
    print(f"network size          : {session.graph.number_of_nodes()} peers")
    print(f"originator (secret)   : node {result.source}")
    print(f"DC-net group          : {result.group}")
    print(f"initial virtual source: node {result.virtual_source} (hash-selected)")
    print(f"delivered fraction    : {result.delivered_fraction:.1%}")
    print(f"completion time       : {result.completion_time:.2f} simulated time units")
    print()
    print("messages per phase")
    for phase in (Phase.DC_NET, Phase.ADAPTIVE_DIFFUSION, Phase.FLOOD):
        start = result.timeline.start_of(phase)
        print(
            f"  {phase.value:<20} {result.messages_by_phase[phase]:>6} messages"
            f"   (starts at t={start:.2f})"
        )
    print(f"  {'total':<20} {result.messages_total:>6} messages")


if __name__ == "__main__":
    main()
