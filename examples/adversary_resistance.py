#!/usr/bin/env python3
"""Adversary resistance: botnet deanonymisation across protocols.

Deploys an honest-but-curious botnet controlling 5-30 % of a 200-peer overlay
and measures how often the first-spy estimator identifies the true originator
of a transaction when it is broadcast with plain flooding, Dandelion, and the
paper's three-phase protocol.  This is the measured version of the paper's
Fig. 1 landscape and Section III motivation.

Run with:  python examples/adversary_resistance.py
"""

from repro.analysis.experiment import attack_experiment
from repro.analysis.reporting import format_table
from repro.core import ProtocolConfig
from repro.network.topology import random_regular_overlay


def main() -> None:
    overlay = random_regular_overlay(200, degree=8, seed=3)
    fractions = [0.05, 0.15, 0.30]
    broadcasts = 10
    config = ProtocolConfig(group_size=5, diffusion_depth=3)

    rows = []
    for index, fraction in enumerate(fractions):
        flood = attack_experiment(
            overlay, "flood", fraction, broadcasts=broadcasts, seed=50 + index
        )
        dandelion = attack_experiment(
            overlay, "dandelion", fraction, broadcasts=broadcasts, seed=60 + index
        )
        three_phase = attack_experiment(
            overlay, "three_phase", fraction, broadcasts=broadcasts,
            seed=70 + index, config=config,
        )
        rows.append(
            [
                f"{fraction:.0%}",
                flood.detection.detection_probability,
                dandelion.detection.detection_probability,
                three_phase.detection.detection_probability,
            ]
        )

    print(
        format_table(
            ["adversary", "flood", "dandelion", "three-phase (this paper)"],
            rows,
            title=(
                "Probability that a botnet first-spy attack identifies the "
                f"originator ({broadcasts} transactions per cell)"
            ),
        )
    )
    print()
    print(
        "The three-phase protocol additionally guarantees sender "
        f"{config.group_size}-anonymity against arbitrarily large observer "
        "coalitions (the cryptographic floor of Phase 1); the topological "
        "protocols provide no such floor."
    )


if __name__ == "__main__":
    main()
