#!/usr/bin/env python3
"""Adversary resistance: botnet deanonymisation across protocols.

Deploys an honest-but-curious botnet controlling 5-30 % of a 200-peer overlay
and measures how often the first-spy estimator identifies the true originator
of a transaction when it is broadcast with plain flooding, Dandelion, and the
paper's three-phase protocol.  This is the measured version of the paper's
Fig. 1 landscape and Section III motivation.

The whole sweep is declared through the scenario layer: one base
:class:`~repro.scenarios.spec.ScenarioSpec` fixes the overlay and workload,
and every cell of the table derives protocol, conditions, adversary fraction
and seed from it — no imperative simulator wiring anywhere.

Run with:  python examples/adversary_resistance.py
"""

from repro.analysis.reporting import format_table
from repro.scenarios import (
    AdversarySpec,
    ConditionsSpec,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    WorkloadSpec,
    run_scenario_once,
)

BASE = ScenarioSpec(
    name="adversary_resistance",
    description="First-spy botnet attack on a 200-peer overlay",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 200, "degree": 8, "seed": 3}
    ),
    workload=WorkloadSpec(broadcasts=10),
)

#: (protocol, options, conditions, seed base) per column — the historical
#: environments: baselines on internet-like per-edge latency, the
#: three-phase protocol on constant 0.1 latency.
COLUMNS = [
    ("flood", {}, ConditionsSpec(), 50),
    ("dandelion", {}, ConditionsSpec(), 60),
    ("three_phase", {"group_size": 5, "diffusion_depth": 3},
     ConditionsSpec(kind="ideal", delay=0.1), 70),
]


def main() -> None:
    fractions = [0.05, 0.15, 0.30]
    group_size = COLUMNS[-1][1]["group_size"]

    rows = []
    for index, fraction in enumerate(fractions):
        row = [f"{fraction:.0%}"]
        for protocol, options, conditions, seed_base in COLUMNS:
            result = run_scenario_once(
                BASE.derive(
                    protocol=protocol,
                    protocol_options=options,
                    conditions=conditions,
                    adversary=AdversarySpec(fraction=fraction),
                    seeds=SeedPolicy(base_seed=seed_base + index),
                )
            )
            row.append(result.detection.detection_probability)
        rows.append(row)

    print(
        format_table(
            ["adversary", "flood", "dandelion", "three-phase (this paper)"],
            rows,
            title=(
                "Probability that a botnet first-spy attack identifies the "
                f"originator ({BASE.workload.broadcasts} transactions per cell)"
            ),
        )
    )
    print()
    print(
        "The three-phase protocol additionally guarantees sender "
        f"{group_size}-anonymity against arbitrarily large observer "
        "coalitions (the cryptographic floor of Phase 1); the topological "
        "protocols provide no such floor."
    )


if __name__ == "__main__":
    main()
