#!/usr/bin/env python3
"""Protocol face-off: all five protocols under identical network conditions.

The comparative claims of the paper are only meaningful when every protocol
faces the same environment.  This example runs every protocol in the
registry — three_phase, flood, dandelion, gossip and adaptive_diffusion —
through the one experiment harness, twice: under clean internet-like
conditions and under the same conditions with 10 % link loss.  Each cell of
the tables is the same overlay, the same per-edge latency distribution, the
same adversary model and the same seeds; only the protocol differs.

Run with:  python examples/protocol_faceoff.py
"""

from repro.analysis.experiment import run_attack_experiment
from repro.analysis.reporting import format_table
from repro.core import ProtocolConfig
from repro.diffusion.adaptive import AdaptiveDiffusionConfig
from repro.network import NetworkConditions
from repro.network.topology import random_regular_overlay
from repro.protocols import available_protocols, create_protocol

ADVERSARY_FRACTION = 0.2
BROADCASTS = 8


def build_protocol(name):
    """Instantiate each registered protocol with sensible face-off options."""
    if name == "three_phase":
        return create_protocol(
            name, config=ProtocolConfig(group_size=5, diffusion_depth=3)
        )
    if name == "adaptive_diffusion":
        # Bound the otherwise unterminated diffusion so lossy runs finish.
        return create_protocol(
            name,
            config=AdaptiveDiffusionConfig(max_rounds=10),
            max_time=500.0,
        )
    return create_protocol(name)


def faceoff(overlay, conditions):
    rows = []
    for name in available_protocols():
        result = run_attack_experiment(
            overlay,
            build_protocol(name),
            ADVERSARY_FRACTION,
            broadcasts=BROADCASTS,
            seed=90,
            conditions=conditions,
        )
        rows.append(
            [
                name,
                result.detection.detection_probability,
                result.messages_per_broadcast,
                result.mean_reach,
                result.anonymity_floor,
            ]
        )
    return rows


def main() -> None:
    overlay = random_regular_overlay(150, degree=8, seed=21)
    headers = [
        "protocol", "detection prob.", "messages/broadcast", "mean reach",
        "anonymity floor",
    ]

    clean = NetworkConditions.internet_like()
    print(
        format_table(
            headers,
            faceoff(overlay, clean),
            title=(
                f"All registered protocols, identical clean conditions "
                f"({ADVERSARY_FRACTION:.0%} first-spy adversary, "
                f"{BROADCASTS} broadcasts)"
            ),
        )
    )
    print()

    lossy = NetworkConditions.internet_like(loss_probability=0.1)
    print(
        format_table(
            headers,
            faceoff(overlay, lossy),
            title="Same face-off with 10% per-link message loss",
        )
    )
    print()
    print(
        "Every row ran through the same registry entry point "
        "(repro.protocols.create_protocol + run_attack_experiment) under the "
        "same NetworkConditions; swap estimator='rumor_centrality' to attack "
        "with the snapshot adversary instead of first-spy."
    )


if __name__ == "__main__":
    main()
