#!/usr/bin/env python3
"""Protocol face-off: all five protocols under identical network conditions.

The comparative claims of the paper are only meaningful when every protocol
faces the same environment.  This example runs every protocol in the
registry — three_phase, flood, dandelion, gossip and adaptive_diffusion —
through the one experiment harness, twice: under clean internet-like
conditions and under the same conditions with 10 % link loss.  Each cell of
the tables is one derived scenario spec sharing the base spec's overlay,
per-edge latency distribution, adversary model and seeds; only the protocol
(and, between the tables, the loss rate) differs.

Run with:  python examples/protocol_faceoff.py
"""

from repro.analysis.reporting import format_table
from repro.protocols import available_protocols
from repro.scenarios import (
    AdversarySpec,
    ConditionsSpec,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    WorkloadSpec,
    run_scenario_once,
)

BASE = ScenarioSpec(
    name="protocol_faceoff",
    description="Every registered protocol under identical conditions",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 150, "degree": 8, "seed": 21}
    ),
    conditions=ConditionsSpec(),  # clean internet-like
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=90),
)

#: Per-protocol options (bound adaptive diffusion so lossy runs terminate).
PROTOCOL_OPTIONS = {
    "three_phase": {"group_size": 5, "diffusion_depth": 3},
    "adaptive_diffusion": {"max_rounds": 10, "max_time": 500.0},
}


def faceoff(conditions):
    rows = []
    for name in available_protocols():
        result = run_scenario_once(
            BASE.derive(
                protocol=name,
                protocol_options=PROTOCOL_OPTIONS.get(name, {}),
                conditions=conditions,
            )
        )
        rows.append(
            [
                name,
                result.detection.detection_probability,
                result.messages_per_broadcast,
                result.mean_reach,
                result.anonymity_floor,
            ]
        )
    return rows


def main() -> None:
    headers = [
        "protocol", "detection prob.", "messages/broadcast", "mean reach",
        "anonymity floor",
    ]

    print(
        format_table(
            headers,
            faceoff(BASE.conditions),
            title=(
                f"All registered protocols, identical clean conditions "
                f"({BASE.adversary.fraction:.0%} first-spy adversary, "
                f"{BASE.workload.broadcasts} broadcasts)"
            ),
        )
    )
    print()

    lossy = ConditionsSpec(loss_probability=0.1)
    print(
        format_table(
            headers,
            faceoff(lossy),
            title="Same face-off with 10% per-link message loss",
        )
    )
    print()
    print(
        "Every row ran through the same declarative entry point "
        "(ScenarioSpec.derive + run_scenario_once) under the same "
        "conditions spec; set estimator='rumor_centrality' in the "
        "AdversarySpec to attack with the snapshot adversary instead of "
        "first-spy."
    )


if __name__ == "__main__":
    main()
