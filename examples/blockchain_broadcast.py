#!/usr/bin/env python3
"""Blockchain scenario: private transaction broadcast feeding a miner.

Reproduces the setting of Section II of the paper end to end: wallets create
transactions, the three-phase protocol broadcasts them through the
peer-to-peer network without revealing which peer originated them, every peer
adds received transactions to its mempool, and a miner includes them in
proof-of-work blocks and earns the fees.

The network side — overlay, conditions, protocol, seed — is one declarative
scenario spec compiled into a session; the blockchain side drives that
session with real transaction payloads.

Run with:  python examples/blockchain_broadcast.py
"""

import random

from repro.blockchain import Blockchain, Mempool, Miner, Transaction, Wallet
from repro.scenarios import (
    ConditionsSpec,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    build_session,
)

SPEC = ScenarioSpec(
    name="blockchain_broadcast",
    description="Three-phase broadcasts feeding a proof-of-work miner",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 200, "degree": 8, "seed": 7}
    ),
    conditions=ConditionsSpec(kind="ideal", delay=0.1),
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    seeds=SeedPolicy(base_seed=8),
)


def main() -> None:
    rng = random.Random(7)
    session = build_session(SPEC)
    protocol = session.state["system"]

    # Wallets live at specific peers; the peer id is what the adversary would
    # like to link to the wallet address.
    alice, bob, carol = (Wallet(rng, label=name) for name in ("alice", "bob", "carol"))
    wallet_location = {alice.address: 12, bob.address: 57, carol.address: 140}

    transactions = [
        alice.create_transaction(bob, amount=30, fee=3),
        bob.create_transaction(carol, amount=12, fee=1),
        carol.create_transaction(alice, amount=5, fee=2),
        alice.create_transaction(carol, amount=9, fee=5),
    ]

    # Broadcast every transaction from the peer hosting the paying wallet.
    mempool = Mempool()
    print("Broadcasting transactions through the three-phase protocol")
    print("=" * 60)
    for tx in transactions:
        source_peer = wallet_location[tx.sender]
        result = protocol.broadcast(
            source=source_peer, payload=tx.serialize(), payload_id=tx.tx_id
        )
        mempool.add(tx)
        print(
            f"tx {tx.tx_id[:12]}…  fee={tx.fee}  "
            f"origin peer hidden among group {result.group} "
            f"(reached {result.delivered_fraction:.0%} of peers, "
            f"{result.messages_total} messages)"
        )

    # A miner (any peer that received the transactions) builds a block.
    chain = Blockchain(difficulty_bits=6)
    miner = Miner("miner-peer-99", chain, mempool, block_size=3, rng=rng)
    block = miner.mine_block()
    assert block is not None

    print()
    print("Mined block")
    print("=" * 60)
    print(f"height          : {block.height}")
    print(f"block hash      : {block.block_hash[:16]}…")
    print(f"transactions    : {len(block.transactions)} (highest fees first)")
    print(f"fees earned     : {miner.earned_fees}")
    print(f"chain valid     : {chain.validate()}")
    print(f"mempool leftover: {len(mempool)} transaction(s)")

    # Round-trip check: a payload delivered by the broadcast decodes back
    # into the exact transaction the wallet created.
    recovered = Transaction.deserialize(transactions[0].serialize())
    print(f"payload decodes : {recovered == transactions[0]}")


if __name__ == "__main__":
    main()
