"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments where the PEP-517 build path (which needs the ``wheel`` package)
is unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'A Flexible Network Approach to Privacy of "
        "Blockchain Transactions' (Moedinger et al., ICDCS 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # dataclass(slots=True) on the hot-path records needs 3.10 (also the
    # oldest version CI tests).
    python_requires=">=3.10",
    install_requires=["networkx>=2.6", "numpy>=1.21"],
)
