"""Tests for overlapping-group probability analysis."""

import random

import pytest

from repro.groups.overlap import (
    origin_probabilities,
    smooth_group_assignment,
    uniformity_error,
)


class TestOriginProbabilities:
    def test_paper_example_half_instead_of_third(self):
        # Group 0 = {A, B, C}; B and C also belong to group 1. A message seen
        # in group 0 has probability 1/2 of coming from A (paper, IV-C).
        groups = [["A", "B", "C"], ["B", "C", "D"]]
        posterior = origin_probabilities(groups, observed_group=0)
        assert posterior["A"] == pytest.approx(0.5)
        assert posterior["B"] == pytest.approx(0.25)
        assert posterior["C"] == pytest.approx(0.25)

    def test_disjoint_groups_are_uniform(self):
        groups = [["A", "B", "C"], ["D", "E", "F"]]
        posterior = origin_probabilities(groups, observed_group=0)
        assert all(p == pytest.approx(1 / 3) for p in posterior.values())

    def test_probabilities_sum_to_one(self):
        groups = [["A", "B", "C", "D"], ["B", "D", "E"], ["A", "E", "F"]]
        posterior = origin_probabilities(groups, observed_group=1)
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_out_of_range_group_rejected(self):
        with pytest.raises(IndexError):
            origin_probabilities([["A"]], observed_group=5)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            origin_probabilities([[]], observed_group=0)


class TestUniformityError:
    def test_zero_for_uniform(self):
        assert uniformity_error({"a": 0.5, "b": 0.5}) == pytest.approx(0.0)

    def test_paper_example_error(self):
        groups = [["A", "B", "C"], ["B", "C", "D"]]
        posterior = origin_probabilities(groups, observed_group=0)
        assert uniformity_error(posterior) == pytest.approx(1 / 2 - 1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity_error({})


class TestSmoothAssignment:
    def test_every_node_in_exactly_requested_number_of_groups(self):
        nodes = list(range(12))
        groups = smooth_group_assignment(nodes, group_size=4, groups_per_node=2,
                                         rng=random.Random(0))
        counts = {node: 0 for node in nodes}
        for group in groups:
            for member in group:
                counts[member] += 1
        assert all(count == 2 for count in counts.values())

    def test_all_groups_have_requested_size(self):
        groups = smooth_group_assignment(
            list(range(20)), group_size=5, groups_per_node=3, rng=random.Random(1)
        )
        assert all(len(group) == 5 for group in groups)
        assert all(len(set(group)) == 5 for group in groups)

    def test_smoothed_assignment_restores_uniformity(self):
        groups = smooth_group_assignment(
            list(range(12)), group_size=4, groups_per_node=2, rng=random.Random(2)
        )
        for index in range(len(groups)):
            posterior = origin_probabilities(groups, observed_group=index)
            assert uniformity_error(posterior) == pytest.approx(0.0)

    def test_invalid_parameters_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            smooth_group_assignment(list(range(10)), 1, 1, rng)
        with pytest.raises(ValueError):
            smooth_group_assignment(list(range(10)), 4, 0, rng)
        with pytest.raises(ValueError):
            smooth_group_assignment(list(range(3)), 4, 1, rng)
        with pytest.raises(ValueError):
            smooth_group_assignment(list(range(10)), 4, 1, rng)  # 10 % 4 != 0
