"""Tests for the Reiter-style membership protocol and the group directory."""

import random

import pytest

from repro.groups.directory import GroupDirectory
from repro.groups.reiter import ReiterGroupMembership


class TestReiterMembership:
    def test_manager_must_be_member(self):
        with pytest.raises(ValueError):
            ReiterGroupMembership("m", ["a", "b"])

    def test_honest_join_installs_new_view(self):
        group = ReiterGroupMembership("m", ["m", "a", "b"])
        assert group.propose_join("c")
        assert "c" in group.members
        assert group.view_number == 1

    def test_honest_leave_installs_new_view(self):
        group = ReiterGroupMembership("m", ["m", "a", "b", "c"])
        assert group.propose_leave("c")
        assert "c" not in group.members

    def test_duplicate_join_rejected(self):
        group = ReiterGroupMembership("m", ["m", "a"])
        with pytest.raises(ValueError):
            group.propose_join("a")

    def test_leaving_non_member_rejected(self):
        group = ReiterGroupMembership("m", ["m", "a"])
        with pytest.raises(ValueError):
            group.propose_leave("z")

    def test_manager_cannot_leave(self):
        group = ReiterGroupMembership("m", ["m", "a"])
        with pytest.raises(ValueError):
            group.propose_leave("m")

    def test_minority_of_faulty_members_cannot_block(self):
        faulty = {"f1"}
        group = ReiterGroupMembership(
            "m",
            ["m", "a", "b", "f1"],
            vote=lambda member, event: member not in faulty,
        )
        assert group.fault_tolerance() == 1
        assert group.propose_join("c")

    def test_more_than_a_third_faulty_blocks_changes(self):
        faulty = {"f1", "f2"}
        group = ReiterGroupMembership(
            "m",
            ["m", "a", "f1", "f2"],
            vote=lambda member, event: member not in faulty,
        )
        assert not group.propose_join("c")
        assert "c" not in group.members
        assert len(group.rejected_events) == 1

    def test_history_records_views(self):
        group = ReiterGroupMembership("m", ["m", "a", "b"])
        group.propose_join("c")
        group.propose_leave("a")
        assert len(group.history) == 3
        assert group.history[0] == ["a", "b", "m"]


class TestGroupDirectory:
    def test_population_too_small_rejected(self):
        with pytest.raises(ValueError):
            GroupDirectory([1, 2], min_size=5)

    def test_every_node_assigned(self):
        directory = GroupDirectory(list(range(40)), min_size=4, rng=random.Random(0))
        for node in range(40):
            assert node in directory.members_of(node)

    def test_group_sizes_within_bounds(self):
        directory = GroupDirectory(list(range(53)), min_size=4, rng=random.Random(1))
        for size in directory.group_sizes():
            assert 4 <= size <= 7
        assert directory.all_groups_private()

    def test_unknown_node_rejected(self):
        directory = GroupDirectory(list(range(10)), min_size=3, rng=random.Random(2))
        with pytest.raises(KeyError):
            directory.group_of("ghost")

    def test_members_of_is_consistent_with_group_of(self):
        directory = GroupDirectory(list(range(20)), min_size=3, rng=random.Random(3))
        for node in range(20):
            assert directory.members_of(node) == directory.group_of(node).members
