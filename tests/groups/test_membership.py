"""Tests for group join/leave/split management."""

import random

import pytest

from repro.groups.membership import Group, GroupManager


class TestGroup:
    def test_size_and_limits(self):
        group = Group(group_id=1, members=["a", "b", "c"], min_size=3)
        assert group.size == 3
        assert group.max_size == 5
        assert group.provides_privacy

    def test_below_minimum_flagged(self):
        group = Group(group_id=1, members=["a"], min_size=3)
        assert not group.provides_privacy

    def test_members_deduplicated_and_sorted(self):
        group = Group(group_id=1, members=["b", "a", "b"], min_size=2)
        assert group.members == ["a", "b"]
        assert group.contains("a")
        assert not group.contains("z")


class TestGroupManager:
    def test_minimum_size_validated(self):
        with pytest.raises(ValueError):
            GroupManager(1)

    def test_join_creates_first_group(self):
        manager = GroupManager(3, random.Random(0))
        group = manager.join("a")
        assert group.contains("a")
        assert manager.group_of("a") is group

    def test_double_join_rejected(self):
        manager = GroupManager(3, random.Random(0))
        manager.join("a")
        with pytest.raises(ValueError):
            manager.join("a")

    def test_group_splits_at_2k(self):
        manager = GroupManager(3, random.Random(0))
        for node in range(6):
            manager.join(node)
        sizes = sorted(group.size for group in manager.groups)
        assert sizes == [3, 3]

    def test_sizes_stay_in_k_to_2k_minus_1(self):
        manager = GroupManager(4, random.Random(1))
        manager.assign_population(list(range(100)))
        for group in manager.groups:
            assert 4 <= group.size <= 7

    def test_every_node_in_exactly_one_group(self):
        manager = GroupManager(4, random.Random(2))
        manager.assign_population(list(range(50)))
        seen = [m for group in manager.groups for m in group.members]
        assert sorted(seen) == list(range(50))

    def test_leave_unknown_node_rejected(self):
        manager = GroupManager(3, random.Random(0))
        with pytest.raises(ValueError):
            manager.leave("ghost")

    def test_leave_last_node_removes_group(self):
        manager = GroupManager(3, random.Random(0))
        manager.join("a")
        assert manager.leave("a") is None
        assert manager.groups == []

    def test_leave_triggers_merge_when_too_small(self):
        manager = GroupManager(3, random.Random(3))
        manager.assign_population(list(range(12)))
        # Remove members until some group drops below k and gets merged.
        for node in range(5):
            if manager.group_of(node) is not None:
                manager.leave(node)
        remaining = [m for group in manager.groups for m in group.members]
        assert sorted(remaining) == list(range(5, 12))
        for group in manager.groups:
            assert group.size >= 3

    def test_all_groups_private_reports_small_population(self):
        manager = GroupManager(5, random.Random(0))
        manager.join("only")
        assert not manager.all_groups_private()

    def test_nodes_listing(self):
        manager = GroupManager(3, random.Random(0))
        manager.assign_population(["x", "y", "z"])
        assert manager.nodes() == ["x", "y", "z"]

    def test_assignment_is_seed_dependent_but_valid(self):
        a = GroupManager(3, random.Random(10))
        b = GroupManager(3, random.Random(11))
        a.assign_population(list(range(30)))
        b.assign_population(list(range(30)))
        assert a.all_groups_private() and b.all_groups_private()
