"""Behaviour of the built-in adversary and fault models."""

import random

import pytest

from repro.adversary.botnet import deploy_botnet
from repro.network.simulator import Simulator
from repro.network.topology import line_overlay, random_regular_overlay
from repro.protocols import create_protocol
from repro.threat import (
    AdaptiveMonitoringAdversary,
    ByzantineDCNetAdversary,
    EclipseAdversary,
    FlakyLinksFault,
    RegionalOutageFault,
    StaticBotnetAdversary,
)

GRAPH = random_regular_overlay(num_nodes=60, degree=6, seed=7)


class TestStaticModel:
    def test_place_matches_deploy_botnet_draw_for_draw(self):
        placed = StaticBotnetAdversary().place(
            GRAPH, 0.2, random.Random(3), protected={0}
        )
        reference = deploy_botnet(
            GRAPH, 0.2, random.Random(3), protected={0}
        ).observers
        assert placed == reference

    def test_no_adaptation_and_no_metrics(self):
        model = StaticBotnetAdversary()
        assert model.after_broadcast("tx", 1, {2: 1.0}, GRAPH, set()) is None
        assert model.metrics() == {}


class TestAdaptiveModel:
    def test_disabled_is_static_draw_for_draw(self):
        model = AdaptiveMonitoringAdversary(enabled=False)
        placed = model.place(GRAPH, 0.2, random.Random(3), protected={0})
        reference = deploy_botnet(
            GRAPH, 0.2, random.Random(3), protected={0}
        ).observers
        assert placed == reference
        assert model.after_broadcast("tx", 1, {2: 1.0}, GRAPH, {0}) is None

    def test_repositions_onto_top_suspects(self):
        model = AdaptiveMonitoringAdversary(warmup=1)
        model.place(GRAPH, 0.1, random.Random(3), protected=set())
        suspects = {node: float(60 - node) for node in range(10)}
        monitored = model.after_broadcast("tx", 0, suspects, GRAPH, set())
        assert monitored is not None
        assert 0 in monitored  # the prime suspect is watched
        assert len(monitored) <= model._budget

    def test_monitored_sets_respect_protected(self):
        model = AdaptiveMonitoringAdversary(warmup=1)
        model.place(GRAPH, 0.1, random.Random(3), protected={0})
        monitored = model.after_broadcast(
            "tx", 0, {0: 5.0, 1: 1.0}, GRAPH, {0}
        )
        assert monitored is not None and 0 not in monitored

    def test_warmup_delays_repositioning(self):
        model = AdaptiveMonitoringAdversary(warmup=3)
        model.place(GRAPH, 0.1, random.Random(3), protected=set())
        assert model.after_broadcast("a", 0, {1: 1.0}, GRAPH, set()) is None
        assert model.after_broadcast("b", 0, {1: 1.0}, GRAPH, set()) is None
        assert model.after_broadcast("c", 0, {1: 1.0}, GRAPH, set()) is not None

    def test_adapted_placement_refills_to_budget(self):
        model = AdaptiveMonitoringAdversary(warmup=1)
        model.place(GRAPH, 0.2, random.Random(3), protected=set())
        budget = model._budget
        model.after_broadcast("tx", 0, {5: 1.0}, GRAPH, set())
        # Next session protects the lone suspect: the set refills from the
        # uniform draw instead of collapsing to nothing.
        placed = model.place(GRAPH, 0.2, random.Random(4), protected={5})
        assert 5 not in placed
        assert len(placed) == budget

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveMonitoringAdversary(warmup=-1)
        with pytest.raises(ValueError):
            AdaptiveMonitoringAdversary(decay=0.0)


class TestEclipseModel:
    def _session(self, graph=None):
        proto = create_protocol("flood")
        return proto.build(graph if graph is not None else line_overlay(4))

    def test_severs_the_victims_links(self):
        session = self._session()
        model = EclipseAdversary(victim=1, start=0.0)
        model.begin_session(session)
        session.simulator.run_until_idle()
        assert session.simulator.severed_links == frozenset(
            {frozenset({1, 0}), frozenset({1, 2})}
        )
        assert model.metrics()["eclipse_severed_links"] == 2.0

    def test_partial_eclipse_severs_a_fraction(self):
        session = self._session(random_regular_overlay(
            num_nodes=20, degree=6, seed=1
        ))
        model = EclipseAdversary(victim=0, start=0.0, link_fraction=0.5)
        model.begin_session(session)
        session.simulator.run_until_idle()
        assert len(session.simulator.severed_links) == 3

    def test_duration_restores_links(self):
        session = self._session()
        EclipseAdversary(victim=1, start=0.0, duration=1.0).begin_session(
            session
        )
        session.simulator.run_until_idle()
        assert not session.simulator.severed_links

    def test_unknown_victim_rejected(self):
        session = self._session()
        with pytest.raises(ValueError):
            EclipseAdversary(victim=99).begin_session(session)


class TestByzantineModel:
    def _session(self):
        proto = create_protocol("three_phase")
        graph = random_regular_overlay(num_nodes=40, degree=6, seed=2)
        return proto.build(graph, seed=5), graph

    def test_flip_tamper_blames_exactly_the_disruptor(self):
        session, graph = self._session()
        model = ByzantineDCNetAdversary(tamper="flip", policy="expel")
        model.begin_session(session)
        model.after_broadcast("tx", 0, {}, graph, set())
        verdict = model.last_verdict
        assert verdict is not None
        assert len(verdict.blamed) == 1
        assert verdict.blamed[0] != 0  # the honest sender is never blamed
        assert not verdict.dissolve_recommended
        assert model.metrics()["blame_correct_attributions"] == 1.0
        assert model.metrics()["blame_expelled"] == 1.0

    def test_withhold_tamper_recommends_dissolution(self):
        session, graph = self._session()
        model = ByzantineDCNetAdversary(tamper="withhold", policy="dissolve")
        model.begin_session(session)
        model.after_broadcast("tx", 0, {}, graph, set())
        verdict = model.last_verdict
        assert verdict is not None
        assert verdict.blamed == []
        assert verdict.dissolve_recommended
        assert model.metrics()["blame_dissolved"] == 1.0

    def test_expel_policy_removes_the_disruptor_from_later_rounds(self):
        session, graph = self._session()
        model = ByzantineDCNetAdversary(tamper="flip", policy="expel")
        model.begin_session(session)
        model.after_broadcast("tx-0", 0, {}, graph, set())
        expelled = set(model._expelled)
        model.after_broadcast("tx-1", 0, {}, graph, set())
        # The next disruptor (if any) is a different member.
        assert not (set(model.last_verdict.blamed) & expelled)

    def test_non_group_protocol_is_a_noop(self):
        proto = create_protocol("flood")
        session = proto.build(line_overlay(4))
        model = ByzantineDCNetAdversary()
        model.begin_session(session)
        assert model.after_broadcast("tx", 0, {}, session.graph, set()) is None
        assert model.metrics()["blame_rounds"] == 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ByzantineDCNetAdversary(tamper="bribe")
        with pytest.raises(ValueError):
            ByzantineDCNetAdversary(policy="forgive")
        with pytest.raises(ValueError):
            ByzantineDCNetAdversary(frame_length=0)


class TestFaultModels:
    def test_regional_outage_fails_the_bfs_region(self):
        graph = line_overlay(7)
        fault = RegionalOutageFault(epicenter=3, radius=1, start=0.5)
        schedule = fault.schedule(graph, random.Random(0))
        assert sorted(e.node for e in schedule.events) == [2, 3, 4]
        assert all(e.action == "leave" for e in schedule.events)

    def test_regional_outage_duration_adds_rejoins(self):
        graph = line_overlay(7)
        fault = RegionalOutageFault(epicenter=3, radius=1, start=0.5,
                                    duration=1.0)
        schedule = fault.schedule(graph, random.Random(0))
        rejoins = [e for e in schedule.events if e.action == "rejoin"]
        assert sorted(e.node for e in rejoins) == [2, 3, 4]
        assert all(e.time == 1.5 for e in rejoins)

    def test_regional_outage_is_deterministic_per_rng(self):
        graph = random_regular_overlay(num_nodes=30, degree=4, seed=3)
        fault = RegionalOutageFault(radius=1)  # epicenter drawn from rng
        a = fault.schedule(graph, random.Random(9)).events
        b = fault.schedule(graph, random.Random(9)).events
        assert a == b

    def test_regional_outage_rejects_unknown_epicenter(self):
        with pytest.raises(ValueError):
            RegionalOutageFault(epicenter=99).schedule(
                line_overlay(5), random.Random(0)
            )

    def test_flaky_links_emits_paired_sever_restore_bursts(self):
        graph = random_regular_overlay(num_nodes=30, degree=4, seed=3)
        fault = FlakyLinksFault(links=4, bursts=3, start=0.1, period=0.5,
                                down_time=0.2)
        schedule = fault.schedule(graph, random.Random(1))
        assert len(schedule.events) == 4 * 3 * 2
        severs = [e for e in schedule.events if e.action == "sever"]
        restores = [e for e in schedule.events if e.action == "restore"]
        assert {(e.a, e.b, round(e.time + 0.2, 9)) for e in severs} == {
            (e.a, e.b, round(e.time, 9)) for e in restores
        }

    def test_flaky_links_schedule_applies_cleanly(self):
        graph = random_regular_overlay(num_nodes=30, degree=4, seed=3)
        simulator = Simulator(graph, seed=0)
        fault = FlakyLinksFault(links=4, bursts=2)
        fault.schedule(graph, random.Random(1)).apply(simulator)
        simulator.run_until_idle()
        assert not simulator.severed_links  # every burst restored
