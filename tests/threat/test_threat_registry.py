"""Registries of the adversary & fault library: lookup, errors, creation."""

import pytest

from repro.threat import (
    AdversaryModel,
    FaultModel,
    available_adversary_models,
    available_fault_models,
    create_adversary_model,
    create_fault_model,
    register_adversary_model,
    register_fault_model,
    validate_adversary_model,
    validate_fault_model,
)


class TestAdversaryRegistry:
    def test_builtins_are_registered(self):
        names = available_adversary_models()
        for expected in ("static", "adaptive", "eclipse", "byzantine_dcnet"):
            assert expected in names

    def test_unknown_name_raises_keyerror_listing_registered(self):
        with pytest.raises(KeyError) as excinfo:
            validate_adversary_model("quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        for name in available_adversary_models():
            assert name in message

    def test_create_instantiates_with_params(self):
        model = create_adversary_model("adaptive", {"warmup": 4})
        assert model.warmup == 4

    def test_create_rejects_unknown_params(self):
        with pytest.raises(TypeError):
            create_adversary_model("adaptive", {"telepathy": True})

    def test_duplicate_registration_rejected(self):
        class Dup(AdversaryModel):
            name = "static"

        with pytest.raises(ValueError):
            register_adversary_model(Dup)

    def test_nameless_registration_rejected(self):
        class NoName(AdversaryModel):
            name = ""

        with pytest.raises(ValueError):
            register_adversary_model(NoName)


class TestFaultRegistry:
    def test_builtins_are_registered(self):
        names = available_fault_models()
        assert "regional_outage" in names
        assert "flaky_links" in names

    def test_unknown_name_raises_keyerror_listing_registered(self):
        with pytest.raises(KeyError) as excinfo:
            validate_fault_model("solar_flare")
        message = str(excinfo.value)
        assert "solar_flare" in message
        assert "regional_outage" in message

    def test_create_instantiates_with_params(self):
        fault = create_fault_model("regional_outage", {"radius": 2})
        assert fault.radius == 2

    def test_duplicate_registration_rejected(self):
        class Dup(FaultModel):
            name = "flaky_links"

        with pytest.raises(ValueError):
            register_fault_model(Dup)
