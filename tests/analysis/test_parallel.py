"""Determinism tests for the parallel sweep engine.

The contract under test: for identical ``(values, runner, repetitions,
base_seed)`` inputs, ``ParallelSweep``/``run_parallel`` return exactly what
the serial ``sweep()`` returns — same derived seeds, same aggregation, same
ordering — regardless of how many worker processes execute the runs.
"""

import random

import pytest

from repro.analysis.parallel import ParallelSweep, run_parallel
from repro.analysis.sweep import derive_seed, sweep
from repro.broadcast.flood import run_flood
from repro.network.topology import random_regular_overlay


def seeded_runner(value, seed):
    """A seed-sensitive runner: different seeds give different metrics."""
    rng = random.Random(seed)
    return {
        "metric": float(value) * 10.0 + rng.random(),
        "noise": rng.uniform(-1.0, 1.0),
    }


class TestParallelMatchesSerial:
    def test_seed_for_seed_equality(self):
        values = [1, 2, 3]
        serial = sweep(values, seeded_runner, repetitions=4, base_seed=17)
        parallel = run_parallel(values, seeded_runner, repetitions=4, base_seed=17)
        assert parallel == serial

    def test_closure_runner_supported(self):
        scale = 3.5

        def closure_runner(value, seed):
            return {"m": scale * value + random.Random(seed).random()}

        serial = sweep([2, 4], closure_runner, repetitions=2, base_seed=3)
        parallel = run_parallel([2, 4], closure_runner, repetitions=2, base_seed=3)
        assert parallel == serial

    def test_non_numeric_values(self):
        def named_runner(value, seed):
            return {"length": float(len(value)) + seed * 0.001}

        values = ["flood", "dandelion"]
        serial = sweep(values, named_runner, repetitions=2, base_seed=9)
        parallel = run_parallel(values, named_runner, repetitions=2, base_seed=9)
        assert parallel == serial
        assert "value" not in parallel[0]

    def test_single_process_path(self):
        engine = ParallelSweep(repetitions=3, base_seed=5, processes=1)
        assert engine.run([1, 2], seeded_runner) == sweep(
            [1, 2], seeded_runner, repetitions=3, base_seed=5
        )

    def test_forced_pool_path(self):
        # processes is pinned above 1 so the multiprocessing pool runs even
        # on single-core machines, where the default would degrade to the
        # serial path and leave the pool untested.
        engine = ParallelSweep(repetitions=3, base_seed=5, processes=4)
        assert engine.run([1, 2], seeded_runner) == sweep(
            [1, 2], seeded_runner, repetitions=3, base_seed=5
        )

    def test_worker_exception_propagates(self):
        def failing_runner(value, seed):
            raise RuntimeError(f"boom at value={value}")

        with pytest.raises(RuntimeError, match="boom at value=1"):
            ParallelSweep(repetitions=2, processes=4).run([1], failing_runner)

    def test_parallel_runs_are_repeatable(self):
        first = run_parallel([1, 2], seeded_runner, repetitions=3, base_seed=0)
        second = run_parallel([1, 2], seeded_runner, repetitions=3, base_seed=0)
        assert first == second

    def test_simulation_runner(self):
        """End to end with a real (small) simulation inside each worker."""

        def flood_runner(size, seed):
            overlay = random_regular_overlay(int(size), degree=4, seed=seed)
            result = run_flood(overlay, source=0, seed=seed)
            return {
                "messages": float(result.messages),
                "reach": float(result.reach),
            }

        values = [20, 40]
        serial = sweep(values, flood_runner, repetitions=2, base_seed=1)
        parallel = run_parallel(values, flood_runner, repetitions=2, base_seed=1)
        assert parallel == serial
        assert parallel[0]["reach"] == 20.0
        assert parallel[1]["reach"] == 40.0


class TestContract:
    def test_invalid_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_parallel([1], seeded_runner, repetitions=0)
        with pytest.raises(ValueError):
            ParallelSweep(repetitions=-1).run([1], seeded_runner)

    def test_empty_values(self):
        assert run_parallel([], seeded_runner) == []

    def test_seed_derivation_matches_sweep_schedule(self):
        seen = []

        def recording_runner(value, seed):
            seen.append(seed)
            return {"m": 0.0}

        sweep([0, 1], recording_runner, repetitions=3, base_seed=50)
        expected = [
            derive_seed(value_index, repetition, 3, 50)
            for value_index in range(2)
            for repetition in range(3)
        ]
        assert seen == expected

    def test_worker_count_capped_by_tasks(self):
        engine = ParallelSweep(repetitions=2, processes=64)
        assert engine._worker_count(4) == 4
        assert engine._worker_count(100) == 64
        assert ParallelSweep(processes=None)._worker_count(1) == 1


class TestDegradeReporting:
    def test_effective_processes_serial(self):
        engine = ParallelSweep(repetitions=2, base_seed=1, processes=1)
        assert engine.effective_processes is None
        engine.run([1, 2], seeded_runner)
        assert engine.effective_processes == 1

    def test_effective_processes_pool(self):
        engine = ParallelSweep(repetitions=2, base_seed=1, processes=4)
        try:
            engine.run([1, 2], seeded_runner)
        finally:
            engine.close()
        assert engine.effective_processes == 4

    def test_explicit_serial_is_silent(self, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.analysis.parallel"):
            ParallelSweep(repetitions=2, processes=1).run([1], seeded_runner)
        assert caplog.records == []

    def test_platform_degrade_warns(self, caplog, monkeypatch):
        import logging

        import repro.analysis.parallel as parallel_mod

        # Simulate a platform without dependable fork: requested
        # parallelism must degrade with a warning, not silently.
        monkeypatch.setattr(parallel_mod.sys, "platform", "darwin")
        engine = ParallelSweep(repetitions=2, base_seed=1, processes=4)
        with caplog.at_level(logging.WARNING, logger="repro.analysis.parallel"):
            results = engine.run([1, 2], seeded_runner)
        assert engine.effective_processes == 1
        assert results == sweep([1, 2], seeded_runner, repetitions=2, base_seed=1)
        assert any(
            "degrading" in record.getMessage() for record in caplog.records
        )
