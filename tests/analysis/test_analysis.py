"""Tests for the analysis harness (stats, tables, sweeps, experiments)."""

import pytest

from repro.analysis.experiment import attack_experiment
from repro.analysis.reporting import format_table
from repro.analysis.stats import confidence_interval, summarize
from repro.analysis.sweep import sweep
from repro.network.topology import random_regular_overlay


class TestStats:
    def test_summary_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(1.118, abs=1e-3)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0])
        assert low <= 2.0 <= high

    def test_single_sample_interval_degenerate(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)


class TestReporting:
    def test_table_contains_headers_and_rows(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in table
        assert "a" in table and "b" in table
        assert "2.500" in table
        assert "x" in table

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestSweep:
    def test_aggregates_means(self):
        results = sweep([1, 2], lambda value, seed: {"metric": float(value * 10)},
                        repetitions=3)
        assert results[0]["metric"] == 10.0
        assert results[1]["metric"] == 20.0
        assert results[0]["value"] == 1.0
        assert results[0]["repetitions"] == 3.0

    def test_seeds_differ_across_repetitions(self):
        seen = []
        sweep([0], lambda value, seed: (seen.append(seed), {"m": 0.0})[1],
              repetitions=4, base_seed=100)
        assert len(set(seen)) == 4

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            sweep([1], lambda v, s: {"m": 0.0}, repetitions=0)


class TestAttackExperiment:
    @pytest.fixture(scope="class")
    def overlay(self):
        return random_regular_overlay(60, degree=6, seed=1)

    def test_flood_is_vulnerable(self, overlay):
        result = attack_experiment(overlay, "flood", adversary_fraction=0.3,
                                   broadcasts=6, seed=0)
        assert result.protocol == "flood"
        assert result.detection.total == 6
        assert result.detection.recall > 0.3
        assert result.anonymity_floor == 1

    def test_dandelion_runs(self, overlay):
        result = attack_experiment(overlay, "dandelion", adversary_fraction=0.2,
                                   broadcasts=5, seed=1)
        assert result.detection.total == 5
        assert result.messages_per_broadcast > 0

    def test_three_phase_runs_and_has_group_floor(self, overlay):
        from repro.core.config import ProtocolConfig

        result = attack_experiment(
            overlay,
            "three_phase",
            adversary_fraction=0.2,
            broadcasts=4,
            seed=2,
            config=ProtocolConfig(group_size=4, diffusion_depth=2),
        )
        assert result.anonymity_floor == 4
        assert result.detection.total == 4

    def test_unknown_protocol_rejected(self, overlay):
        with pytest.raises(ValueError):
            attack_experiment(overlay, "carrier-pigeon", 0.1)

    def test_zero_broadcasts_rejected(self, overlay):
        # Used to die with ZeroDivisionError on the messages mean.
        from repro.analysis.experiment import run_attack_experiment

        with pytest.raises(ValueError, match="broadcasts"):
            run_attack_experiment(overlay, "flood", 0.2, broadcasts=0)
        with pytest.raises(ValueError, match="broadcasts"):
            attack_experiment(overlay, "flood", 0.2, broadcasts=-3)

    def test_experiment_reports_privacy_block(self, overlay):
        result = attack_experiment(
            overlay, "flood", adversary_fraction=0.3, broadcasts=3, seed=0
        )
        assert result.privacy is not None
        assert result.privacy.broadcasts == 3
        assert result.privacy.population == overlay.number_of_nodes()
        assert result.privacy.intersection is not None
