"""Tests for the tracked benchmark harness (``benchmarks/harness.py``).

The harness is plain library code (no pytest-benchmark involved), so its
contracts — deterministic event counts, report shape, calibrated regression
detection — are tested here at toy sizes.  Run from the repository root
(the tier-1 invocation), ``benchmarks`` resolves as a namespace package.
"""

import pytest

from benchmarks import harness


def tiny_flood():
    return harness.flood_scenario(
        "tiny_flood", size=40, degree=4, overlay_seed=1, run_seed=2
    )


class TestRunScenario:
    def test_report_shape_and_determinism(self):
        result = harness.run_scenario(tiny_flood(), repeats=2, warmup=1)
        assert result["events"] > 40  # a flood delivers more than n messages
        assert result["median_seconds"] > 0
        assert result["events_per_second"] > 0
        assert result["peak_rss_kib"] > 0
        assert len(result["description"]) > 0

    def test_dcnet_scenario_counts_share_messages(self):
        scenario = harness.dcnet_round_scenario(
            "tiny_dcnet", frame_length=64, group_size=4, rounds=2
        )
        result = harness.run_scenario(scenario, repeats=1, warmup=0)
        # 3·k·(k−1) per round, two rounds.
        assert result["events"] == 2 * 3 * 4 * 3

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            harness.run_scenario(tiny_flood(), repeats=0)

    def test_nondeterministic_scenario_fails_loudly(self):
        counter = iter(range(100))
        scenario = harness.Scenario(
            name="drifting",
            description="returns a different event count every run",
            setup=lambda: None,
            run=lambda _context: next(counter),
        )
        with pytest.raises(RuntimeError, match="not deterministic"):
            harness.run_scenario(scenario, repeats=2, warmup=0)


class TestSuite:
    def test_smoke_subset_is_nonempty_and_tracked(self):
        smoke = harness.scenario_names(smoke_only=True)
        assert smoke
        assert set(smoke) <= set(harness.scenario_names())
        # The two acceptance-tracked scenario families stay present.
        assert any(name.startswith("e6_") for name in harness.SCENARIOS)
        assert any(name.startswith("e11_") for name in harness.SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            harness.run_suite(["no_such_scenario"], repeats=1)


def _report(eps_by_name, calibration=1_000_000.0):
    return {
        "meta": {"calibration_ops_per_second": calibration},
        "results": {
            name: {"events_per_second": eps}
            for name, eps in eps_by_name.items()
        },
    }


class TestCompareReports:
    def test_regression_detected(self):
        baseline = _report({"a": 100.0, "b": 100.0})
        current = _report({"a": 70.0, "b": 99.0})
        entries = {
            entry["name"]: entry
            for entry in harness.compare_reports(
                baseline, current, max_regression=0.25
            )
        }
        assert entries["a"]["status"] == "regression"
        assert entries["b"]["status"] == "ok"

    def test_calibration_normalises_machine_speed(self):
        # Same engine measured on a machine twice as fast: raw events/sec
        # doubles, calibration doubles, verdict stays "ok".
        baseline = _report({"a": 100.0}, calibration=1_000_000.0)
        current = _report({"a": 200.0}, calibration=2_000_000.0)
        (entry,) = harness.compare_reports(baseline, current)
        assert entry["status"] == "ok"
        assert entry["speedup"] == pytest.approx(1.0)

    def test_improvement_reported(self):
        baseline = _report({"a": 100.0})
        current = _report({"a": 300.0})
        (entry,) = harness.compare_reports(baseline, current)
        assert entry["status"] == "improvement"
        assert entry["speedup"] == pytest.approx(3.0)

    def test_missing_scenarios_never_fail(self):
        baseline = _report({"a": 100.0, "gone": 50.0})
        current = _report({"a": 100.0, "new": 10.0})
        statuses = {
            entry["name"]: entry["status"]
            for entry in harness.compare_reports(baseline, current)
        }
        assert statuses == {"a": "ok", "gone": "missing", "new": "missing"}

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            harness.compare_reports(
                _report({"a": 1.0}), _report({"a": 1.0}), max_regression=1.0
            )
