"""Golden pins for every registered scenario preset.

Two layers of pinning:

* **observation-log digests** — for each named preset, one seeded broadcast
  is run through :meth:`ScenarioRunner.observation_digest` and its full
  delivery log hashed.  The digest is sensitive to every layer a spec
  configures (topology generation, conditions, protocol options, churn
  schedule, engine event ordering), so any behavioural drift in any of them
  fails loudly here.
* **committed run results** — the stress presets' full CLI runs
  (``scripts/scenario.py run <name> --json-out``) are committed under
  ``benchmarks/results/scenarios/``; re-running the scenario must reproduce
  the committed run digest exactly.

When a change *intentionally* alters behaviour (new RNG stream, protocol
fix), regenerate with::

    PYTHONPATH=src python -m pytest tests/scenarios/test_presets_golden.py -q
    python scripts/scenario.py run <name> \
        --json-out benchmarks/results/scenarios/SCENARIO_<name>.json

and document the change in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioRunner, available_scenarios, scenario

RESULTS_DIR = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks" / "results" / "scenarios"
)

#: Golden observation-log digest per registered preset (one seeded
#: broadcast from the overlay's first node; see ScenarioRunner.observation_digest).
GOLDEN_OBSERVATION_DIGESTS = {
    "e1_message_overhead":
        "f769201aaea920d372ffda8bbb070aea1da3178a906f85ad4814c6ac1e612c26",
    "e2_dcnet_cost":
        "9e9b4b0a8b6e6886c7114efe5d6039cc0233b22ebc198186823744a1d98a4444",
    "e3_privacy_performance_landscape":
        "3e614ae230ba2c1a7f95fb26af3ac88f10392a324944eb469b76692da5a1c8b9",
    "e4_broadcast_deanonymization":
        "54eef9be8179dc6045befbe4d2dc4e7f4d2c49c6ce0a26b001947302ec2fc33a",
    "e5_dandelion_baseline":
        "a62d983ddb331c75ab81031312b9aef5e1c396bcb2414db2fe47901de917a1a6",
    "e6_dcnet_round":
        "e9e30a0086ccbf15940ed6db2ff9949e1f9e27deef99e8a476cf4350e4f46597",
    "e7_three_phase_end_to_end":
        "de455fd9d8cbff4d1613a97b50622d6a0e82e42852712bdaa27057c844564efe",
    "e8_privacy_bounds":
        "48af8174d764c120e46323aaaecde5387bcc4d4292d2e41f001adab64ec1b6f4",
    "e9_group_overlap":
        "839c82b8d82a5b69821e90b3392b2278579c35af3e47e6de31797059b78112f7",
    "e10_latency_tradeoff":
        "cc02b8ceef9aa32f5f0d6bc028078ebc162fc0272cae11b5dae93c338c2b5c4e",
    "e11_scale":
        "bb8b05121b112121c66107cbbe8e2a728fd132ce9bc0630a69f007e47aef3c96",
    "e12_protocol_faceoff":
        "f361b090d772539263a7471fd2c2293246a9d575c8c0a5df324900bba3160e4e",
    "e13_anonymity_curves":
        "be09d221bb206bef321e072b0cfa2e40ea55d82cf247898db9b634edc5994ac5",
    "quickstart":
        "18c27ecc965ace0e5cfa09c2168db4f64003fbed0b5cc74dae72f734833c34bf",
    "stress_lossy_wan":
        "357864e3dca1e8d03ba868559ed27528fe95bce9026410453bc93b983975b724",
    "stress_supernode_hub":
        "b3fa2aa4ae12fc254a67c34a17f4c1f8fc56ef5444be497be05f42cc4df3c62b",
    "stress_node_churn":
        "070b8f451d8b677dac48012871cceae9cb13f9623bd288b5e9e15eeaa673e83d",
    "stress_churn_rejoin":
        "2b6f79790b71652535ecf1ccc64c8dba0a97a1cee24464dc5417fbef299b9eb2",
    "stress_mixed_senders":
        "c716c2226f20e2bb034c1a7915648e383ac5c93a1ffcc19342de1cf30682c6d7",
    "adv_adaptive_mixed_senders":
        "7c4f7e7ea74259de63b519899b9a2a4eca4d77bff75d9f791eea11ea889721ac",
    "adv_byzantine_blame_dissolve":
        "be64da60ab900b5da1528f5ce4f5bf54020833d5bd8454bf1cc6f4c914f75191",
    "adv_byzantine_blame_expel":
        "5dd81cfc37dca87ffea675edc3cd5b9a2547a6d6b03abb9a8b49cd40bbfce1df",
    "adv_eclipse_victim":
        "c503975ad0650c479a3fa6ee2a5800690d08630571a8a5134e114dd07786d9be",
    "fault_flaky_links":
        "7f7c4166dcf4a958cb6d56ca47fca85983712e1109fcfc08f7db68d8b852aac0",
    "fault_regional_outage":
        "c87402a936da9d87b4ef49bdc64e7612aefa892b57c5e49b9c6c579d53f832c4",
}

#: Presets whose full CLI runs are committed under benchmarks/results/.
COMMITTED_TAGS = ("stress", "adversary", "fault")


def committed_preset_names():
    names = set()
    for tag in COMMITTED_TAGS:
        names.update(available_scenarios(tag=tag))
    return sorted(names)


def test_every_registered_preset_has_a_golden_digest():
    assert set(GOLDEN_OBSERVATION_DIGESTS) == set(available_scenarios())


@pytest.mark.parametrize("name", sorted(GOLDEN_OBSERVATION_DIGESTS))
def test_preset_observation_log_unchanged(name):
    runner = ScenarioRunner(processes=1)
    assert (
        runner.observation_digest(scenario(name))
        == GOLDEN_OBSERVATION_DIGESTS[name]
    ), (
        f"preset {name!r} produced a different observation log; if the "
        "change is intentional, regenerate the golden digests (see module "
        "docstring)"
    )


class TestCommittedStressResults:
    """The committed CLI results reproduce run digest for run digest."""

    @pytest.mark.parametrize("name", committed_preset_names())
    def test_committed_result_reproduces(self, name):
        path = RESULTS_DIR / f"SCENARIO_{name}.json"
        assert path.exists(), (
            f"missing committed result for {name}; generate it with "
            f"scripts/scenario.py run {name} --json-out {path}"
        )
        committed = json.loads(path.read_text())
        result = ScenarioRunner(processes=1).run(scenario(name))
        assert result.digest == committed["digest"]
        assert result.runs == committed["runs"]

    def test_churn_scenarios_degrade_reach(self):
        # The stress point of the churn presets: delivery is genuinely
        # incomplete while nodes are gone.
        for name in ("stress_node_churn", "stress_churn_rejoin"):
            committed = json.loads(
                (RESULTS_DIR / f"SCENARIO_{name}.json").read_text()
            )
            assert committed["aggregate"]["mean_reach"] < 0.95

    def test_adaptive_attacker_lowers_entropy_vs_static(self):
        # The point of the adaptive model: acting on the posteriors must
        # make the attacker measurably *more certain* than the static
        # first-spy botnet on the identical workload (same overlay, seeds,
        # wallet-host sender pool).  Pinned on the committed aggregates so
        # any strategy or estimator drift that erases the advantage fails
        # here.
        adaptive = json.loads(
            (RESULTS_DIR / "SCENARIO_adv_adaptive_mixed_senders.json")
            .read_text()
        )["aggregate"]
        static = json.loads(
            (RESULTS_DIR / "SCENARIO_stress_mixed_senders.json").read_text()
        )["aggregate"]
        assert (
            adaptive["privacy_entropy"] < static["privacy_entropy"] - 0.25
        )
        assert adaptive["adversary_adaptive_repositions"] > 0

    def test_blame_presets_reach_both_policies(self):
        # dcnet/blame.py end-to-end from registered presets: the flip
        # tamper is attributable (every round blames exactly the disruptor,
        # the expel policy removes it), the withhold tamper is not (every
        # round ends in a dissolve recommendation).
        expel = json.loads(
            (RESULTS_DIR / "SCENARIO_adv_byzantine_blame_expel.json")
            .read_text()
        )["aggregate"]
        assert expel["adversary_blame_rounds"] > 0
        assert (
            expel["adversary_blame_correct_attributions"]
            == expel["adversary_blame_rounds"]
        )
        assert expel["adversary_blame_expelled"] > 0
        assert expel["adversary_blame_dissolved"] == 0

        dissolve = json.loads(
            (RESULTS_DIR / "SCENARIO_adv_byzantine_blame_dissolve.json")
            .read_text()
        )["aggregate"]
        assert dissolve["adversary_blame_rounds"] > 0
        assert (
            dissolve["adversary_blame_dissolved"]
            == dissolve["adversary_blame_rounds"]
        )
        assert dissolve["adversary_blame_blamed_total"] == 0
