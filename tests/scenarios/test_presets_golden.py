"""Golden pins for every registered scenario preset.

Two layers of pinning:

* **observation-log digests** — for each named preset, one seeded broadcast
  is run through :meth:`ScenarioRunner.observation_digest` and its full
  delivery log hashed.  The digest is sensitive to every layer a spec
  configures (topology generation, conditions, protocol options, churn
  schedule, engine event ordering), so any behavioural drift in any of them
  fails loudly here.
* **committed run results** — the stress presets' full CLI runs
  (``scripts/scenario.py run <name> --json-out``) are committed under
  ``benchmarks/results/scenarios/``; re-running the scenario must reproduce
  the committed run digest exactly.

When a change *intentionally* alters behaviour (new RNG stream, protocol
fix), regenerate with::

    PYTHONPATH=src python -m pytest tests/scenarios/test_presets_golden.py -q
    python scripts/scenario.py run <name> \
        --json-out benchmarks/results/scenarios/SCENARIO_<name>.json

and document the change in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioRunner, available_scenarios, scenario

RESULTS_DIR = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks" / "results" / "scenarios"
)

#: Golden observation-log digest per registered preset (one seeded
#: broadcast from the overlay's first node; see ScenarioRunner.observation_digest).
GOLDEN_OBSERVATION_DIGESTS = {
    "e1_message_overhead":
        "f769201aaea920d372ffda8bbb070aea1da3178a906f85ad4814c6ac1e612c26",
    "e2_dcnet_cost":
        "9e9b4b0a8b6e6886c7114efe5d6039cc0233b22ebc198186823744a1d98a4444",
    "e3_privacy_performance_landscape":
        "3e614ae230ba2c1a7f95fb26af3ac88f10392a324944eb469b76692da5a1c8b9",
    "e4_broadcast_deanonymization":
        "54eef9be8179dc6045befbe4d2dc4e7f4d2c49c6ce0a26b001947302ec2fc33a",
    "e5_dandelion_baseline":
        "a62d983ddb331c75ab81031312b9aef5e1c396bcb2414db2fe47901de917a1a6",
    "e6_dcnet_round":
        "e9e30a0086ccbf15940ed6db2ff9949e1f9e27deef99e8a476cf4350e4f46597",
    "e7_three_phase_end_to_end":
        "de455fd9d8cbff4d1613a97b50622d6a0e82e42852712bdaa27057c844564efe",
    "e8_privacy_bounds":
        "48af8174d764c120e46323aaaecde5387bcc4d4292d2e41f001adab64ec1b6f4",
    "e9_group_overlap":
        "839c82b8d82a5b69821e90b3392b2278579c35af3e47e6de31797059b78112f7",
    "e10_latency_tradeoff":
        "cc02b8ceef9aa32f5f0d6bc028078ebc162fc0272cae11b5dae93c338c2b5c4e",
    "e11_scale":
        "bb8b05121b112121c66107cbbe8e2a728fd132ce9bc0630a69f007e47aef3c96",
    "e12_protocol_faceoff":
        "f361b090d772539263a7471fd2c2293246a9d575c8c0a5df324900bba3160e4e",
    "e13_anonymity_curves":
        "be09d221bb206bef321e072b0cfa2e40ea55d82cf247898db9b634edc5994ac5",
    "quickstart":
        "18c27ecc965ace0e5cfa09c2168db4f64003fbed0b5cc74dae72f734833c34bf",
    "stress_lossy_wan":
        "357864e3dca1e8d03ba868559ed27528fe95bce9026410453bc93b983975b724",
    "stress_supernode_hub":
        "b3fa2aa4ae12fc254a67c34a17f4c1f8fc56ef5444be497be05f42cc4df3c62b",
    "stress_node_churn":
        "070b8f451d8b677dac48012871cceae9cb13f9623bd288b5e9e15eeaa673e83d",
    "stress_churn_rejoin":
        "2b6f79790b71652535ecf1ccc64c8dba0a97a1cee24464dc5417fbef299b9eb2",
    "stress_mixed_senders":
        "c716c2226f20e2bb034c1a7915648e383ac5c93a1ffcc19342de1cf30682c6d7",
}


def test_every_registered_preset_has_a_golden_digest():
    assert set(GOLDEN_OBSERVATION_DIGESTS) == set(available_scenarios())


@pytest.mark.parametrize("name", sorted(GOLDEN_OBSERVATION_DIGESTS))
def test_preset_observation_log_unchanged(name):
    runner = ScenarioRunner(processes=1)
    assert (
        runner.observation_digest(scenario(name))
        == GOLDEN_OBSERVATION_DIGESTS[name]
    ), (
        f"preset {name!r} produced a different observation log; if the "
        "change is intentional, regenerate the golden digests (see module "
        "docstring)"
    )


class TestCommittedStressResults:
    """The committed CLI results reproduce run digest for run digest."""

    @pytest.mark.parametrize(
        "name", sorted(available_scenarios(tag="stress"))
    )
    def test_committed_result_reproduces(self, name):
        path = RESULTS_DIR / f"SCENARIO_{name}.json"
        assert path.exists(), (
            f"missing committed result for {name}; generate it with "
            f"scripts/scenario.py run {name} --json-out {path}"
        )
        committed = json.loads(path.read_text())
        result = ScenarioRunner(processes=1).run(scenario(name))
        assert result.digest == committed["digest"]
        assert result.runs == committed["runs"]

    def test_churn_scenarios_degrade_reach(self):
        # The stress point of the churn presets: delivery is genuinely
        # incomplete while nodes are gone.
        for name in ("stress_node_churn", "stress_churn_rejoin"):
            committed = json.loads(
                (RESULTS_DIR / f"SCENARIO_{name}.json").read_text()
            )
            assert committed["aggregate"]["mean_reach"] < 0.95
