"""Spec serialization: JSON round-trips and identical run digests."""

import random

import pytest

from repro.network.churn import ChurnEvent
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency, PerEdgeLatency
from repro.scenarios import (
    AdversarySpec,
    ChurnSpec,
    ConditionsSpec,
    PrivacySpec,
    ScenarioRunner,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    WorkloadSpec,
    available_scenarios,
    scenario,
)

#: A cheap but fully loaded spec: every field away from its default,
#: including churn with both a random part and explicit pinned events.
FULL_SPEC = ScenarioSpec(
    name="roundtrip_probe",
    description="every field populated",
    topology=TopologySpec(
        "small_world",
        {"num_nodes": 40, "neighbours": 6,
         "shortcut_probability": 0.2, "seed": 3},
    ),
    conditions=ConditionsSpec(
        kind="internet_like", low=0.02, high=0.2,
        loss_probability=0.05, jitter=0.01,
    ),
    protocol="gossip",
    protocol_options={"fanout": 3},
    adversary=AdversarySpec(fraction=0.15, estimator="rumor_centrality"),
    workload=WorkloadSpec(broadcasts=4, sender_pool=3),
    seeds=SeedPolicy(base_seed=77, repetitions=2),
    churn=ChurnSpec(
        leave_fraction=0.1, leave_time=0.2, rejoin_after=1.5,
        events=(ChurnEvent(0.9, 7, "leave"),),
    ),
    privacy=PrivacySpec(top_k=(1, 2, 4), intersection=False),
    tags=("test", "full"),
)


class TestRoundTrip:
    def test_full_spec_round_trips(self):
        assert ScenarioSpec.from_json(FULL_SPEC.to_json()) == FULL_SPEC

    def test_round_trip_is_stable_text(self):
        # Serializing the deserialized spec yields byte-identical JSON.
        once = FULL_SPEC.to_json()
        assert ScenarioSpec.from_json(once).to_json() == once

    @pytest.mark.parametrize("name", available_scenarios())
    def test_every_registered_preset_round_trips(self, name):
        spec = scenario(name)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_tripped_spec_runs_to_identical_digest(self):
        runner = ScenarioRunner(processes=1)
        original = runner.run(FULL_SPEC)
        reloaded = runner.run(ScenarioSpec.from_json(FULL_SPEC.to_json()))
        assert original.digest == reloaded.digest
        assert original.runs == reloaded.runs


class TestConditionsSpec:
    def test_ideal_builds_constant_latency(self):
        conditions = ConditionsSpec(kind="ideal", delay=0.5).build()
        assert isinstance(conditions, NetworkConditions)
        assert isinstance(conditions.latency, ConstantLatency)
        assert conditions.latency.delay(0, 1) == 0.5

    def test_internet_like_builds_per_edge_latency(self):
        conditions = ConditionsSpec(
            kind="internet_like", low=0.1, high=0.2
        ).build()
        model = conditions.build_latency(random.Random(0))
        assert isinstance(model, PerEdgeLatency)
        assert 0.1 <= model.delay(0, 1) <= 0.2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ConditionsSpec(kind="quantum")

    def test_internet_like_matches_default_conditions_draws(self):
        # The spec's "internet_like" must be draw-for-draw equal to the
        # historical NetworkConditions() default — that equivalence is what
        # lets the refactored benchmarks keep their golden numbers.
        spec_model = ConditionsSpec().build().build_latency(random.Random(9))
        default_model = NetworkConditions().build_latency(random.Random(9))
        for edge in [(0, 1), (3, 2), (5, 5)]:
            assert spec_model.delay(*edge) == default_model.delay(*edge)


class TestSpecValidation:
    def test_unknown_topology_family_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec("torus", {})

    def test_adversary_fraction_bounds(self):
        with pytest.raises(ValueError):
            AdversarySpec(fraction=1.0)

    def test_workload_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(broadcasts=0)
        with pytest.raises(ValueError):
            WorkloadSpec(broadcasts=2, sender_pool=0)

    def test_seed_policy_bounds(self):
        with pytest.raises(ValueError):
            SeedPolicy(repetitions=0)

    def test_churn_bounds(self):
        with pytest.raises(ValueError):
            ChurnSpec(leave_fraction=1.2)
        with pytest.raises(ValueError):
            ChurnSpec(leave_fraction=0.1, rejoin_after=-1.0)

    def test_privacy_bounds(self):
        with pytest.raises(ValueError):
            PrivacySpec(top_k=())
        with pytest.raises(ValueError):
            PrivacySpec(top_k=(3, 1))

    def test_privacy_top_k_normalised_to_tuple(self):
        # JSON delivers lists; the spec stores (and compares) tuples.
        assert PrivacySpec(top_k=[1, 2]).top_k == (1, 2)
        assert PrivacySpec(top_k=[1, 2]) == PrivacySpec(top_k=(1, 2))

    def test_privacy_build(self):
        assert PrivacySpec(enabled=False).build() is None
        config = PrivacySpec(top_k=(2,), intersection=False).build()
        assert config is not None
        assert config.top_k == (2,)
        assert config.intersection is False

    def test_derive_replaces_fields(self):
        derived = FULL_SPEC.derive(protocol="flood", protocol_options={})
        assert derived.protocol == "flood"
        assert derived.topology == FULL_SPEC.topology
        assert FULL_SPEC.protocol == "gossip"  # original untouched
