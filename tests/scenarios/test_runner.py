"""ScenarioRunner semantics: equivalence, fan-out determinism, compilation."""

import pytest

from repro.analysis.experiment import run_attack_experiment
from repro.core.config import ProtocolConfig
from repro.network.conditions import NetworkConditions
from repro.protocols.adapters import ThreePhaseProtocol
from repro.scenarios import (
    AdversarySpec,
    ChurnSpec,
    ScenarioRunner,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    WorkloadSpec,
    build_protocol,
    build_session,
    compile_scenario,
    run_scenario_once,
    scenario,
)

CHEAP = ScenarioSpec(
    name="cheap_probe",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 60, "degree": 6, "seed": 1}
    ),
    protocol="flood",
    adversary=AdversarySpec(fraction=0.3),
    workload=WorkloadSpec(broadcasts=4),
    seeds=SeedPolicy(base_seed=5, repetitions=3),
)


class TestEquivalence:
    def test_run_once_equals_direct_harness_call(self):
        # The runner is a declarative veneer over run_attack_experiment —
        # same overlay seed, same conditions, same numbers.
        spec_result = run_scenario_once(CHEAP)
        direct = run_attack_experiment(
            CHEAP.topology.build(),
            "flood",
            0.3,
            broadcasts=4,
            seed=5,
            conditions=NetworkConditions(),
            estimator="first_spy",
        )
        assert spec_result.detection == direct.detection
        assert spec_result.messages_per_broadcast == direct.messages_per_broadcast
        assert spec_result.mean_reach == direct.mean_reach

    def test_preset_equals_benchmark_wiring(self):
        # e12's preset must reproduce what the face-off benchmark historically
        # hand-assembled for the three-phase cell.
        spec = scenario("e12_protocol_faceoff")
        from repro.protocols import create_protocol

        direct = run_attack_experiment(
            spec.topology.build(),
            create_protocol(
                "three_phase",
                config=ProtocolConfig(group_size=5, diffusion_depth=3),
            ),
            0.2,
            broadcasts=6,
            seed=12,
            conditions=NetworkConditions.internet_like(),
        )
        result = run_scenario_once(spec)
        assert result.detection == direct.detection
        assert result.messages_per_broadcast == direct.messages_per_broadcast


class TestRepetitionFanOut:
    def test_parallel_equals_serial(self):
        serial = ScenarioRunner(processes=1).run(CHEAP)
        parallel = ScenarioRunner(processes=3).run(CHEAP)
        assert serial.runs == parallel.runs
        assert serial.digest == parallel.digest

    def test_seed_schedule(self):
        result = ScenarioRunner(processes=1).run(CHEAP)
        assert result.seeds == [5, 6, 7]
        # Each repetition is exactly run_scenario_once at its seed.
        from repro.scenarios import experiment_metrics

        for seed, run in zip(result.seeds, result.runs):
            assert run == experiment_metrics(
                run_scenario_once(CHEAP, seed=seed)
            )

    def test_aggregate_is_mean_over_runs(self):
        result = ScenarioRunner(processes=1).run(CHEAP)
        for key in result.runs[0]:
            expected = sum(run[key] for run in result.runs) / len(result.runs)
            assert result.aggregate[key] == pytest.approx(expected)
        assert result.aggregate["repetitions"] == 3.0

    def test_repetition_override(self):
        result = ScenarioRunner(processes=1).run(CHEAP, repetitions=1)
        assert len(result.runs) == 1

    def test_result_to_dict_round_trips_spec(self):
        result = ScenarioRunner(processes=1).run(CHEAP, repetitions=1)
        document = result.to_dict()
        assert ScenarioSpec.from_dict(document["spec"]) == CHEAP
        assert document["digest"] == result.digest


class TestCompilation:
    def test_compile_builds_all_layers(self):
        compiled = compile_scenario(scenario("stress_node_churn"))
        assert compiled.graph.number_of_nodes() == 150
        assert compiled.protocol.name == "flood"
        assert compiled.session_hook is not None

    def test_no_churn_means_no_hook(self):
        assert compile_scenario(CHEAP).session_hook is None

    def test_build_protocol_translates_options(self):
        protocol = build_protocol(
            "three_phase", {"group_size": 7, "diffusion_depth": 2}
        )
        assert isinstance(protocol, ThreePhaseProtocol)
        assert protocol.config.group_size == 7
        assert protocol.anonymity_floor() == 7

    def test_build_protocol_adaptive_diffusion_max_time(self):
        protocol = build_protocol(
            "adaptive_diffusion", {"max_rounds": 5, "max_time": 100.0}
        )
        assert protocol.max_time == 100.0
        assert protocol.config.max_rounds == 5

    def test_build_protocol_flat_options_without_config_class(self):
        protocol = build_protocol("flood", {"payload_size_bytes": 128})
        assert protocol.payload_size_bytes == 128

    def test_from_options_is_the_adapter_seam(self):
        # A third-party adapter declaring config_class works through the
        # scenario layer with no scenario-layer changes.
        from repro.broadcast.gossip import GossipConfig
        from repro.protocols.adapters import GossipProtocol

        protocol = GossipProtocol.from_options(fanout=2)
        assert isinstance(protocol.config, GossipConfig)
        assert protocol.config.fanout == 2

    def test_build_protocol_unknown_name(self):
        with pytest.raises(ValueError):
            build_protocol("carrier_pigeon", {})

    def test_build_protocol_bad_option(self):
        with pytest.raises(TypeError):
            build_protocol("three_phase", {"group_sizes": 5})


class TestChurnScenarios:
    def test_churn_spec_installs_simulator_events(self):
        spec = scenario("stress_node_churn")
        session = build_session(spec)
        # 20% of 150 nodes leave: 30 pending leave events before the run.
        assert session.simulator.pending_events == 30

    def test_churn_reduces_reach_end_to_end(self):
        result = run_scenario_once(scenario("stress_node_churn"))
        assert result.mean_reach < 0.95
        no_churn = run_scenario_once(
            scenario("stress_node_churn").derive(churn=None)
        )
        assert no_churn.mean_reach == 1.0

    def test_churn_differs_per_repetition_but_is_reproducible(self):
        spec = scenario("stress_churn_rejoin")
        first = ScenarioRunner(processes=1).run(spec)
        second = ScenarioRunner(processes=1).run(spec)
        assert first.runs == second.runs
        # Different repetition seeds churn different node sets, so the
        # degraded reach varies across repetitions.
        reaches = {run["mean_reach"] for run in first.runs}
        assert len(reaches) > 1


class TestSenderPool:
    def test_sender_pool_limits_sources(self):
        spec = CHEAP.derive(
            workload=WorkloadSpec(broadcasts=12, sender_pool=2),
            adversary=AdversarySpec(fraction=0.0),
        )
        from repro.analysis.experiment import _pick_sources
        import random

        sources = _pick_sources(
            spec.topology.build(), 12, random.Random(5), sender_pool=2
        )
        assert len(set(sources)) <= 2
        # And the full run works end to end.
        result = run_scenario_once(spec)
        assert result.detection.total == 12

    def test_sender_pool_bounds(self):
        from repro.analysis.experiment import _pick_sources
        import random

        graph = CHEAP.topology.build()
        with pytest.raises(ValueError):
            _pick_sources(graph, 3, random.Random(0), sender_pool=0)
        with pytest.raises(ValueError):
            _pick_sources(graph, 3, random.Random(0), sender_pool=61)
