"""The ``engine``/``shards`` knobs on ScenarioSpec and the scenario CLI.

The spec fields must be digest-neutral at their defaults (pre-existing
spec serializations and run digests cannot change), validated like every
other registry name (KeyError listing the alternatives), and — the whole
point — behaviour-neutral: a preset runs to the identical observation
digest on every engine, at any shard count.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import ScenarioRunner, ScenarioSpec, scenario
from repro.scenarios.spec import TopologySpec

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "scenario.py"


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def _small_spec(engine="event", shards=None):
    return ScenarioSpec(
        name="engine-probe",
        topology=TopologySpec(
            "random_regular", {"num_nodes": 60, "degree": 6, "seed": 5}
        ),
        protocol="flood",
        engine=engine,
        shards=shards,
    )


class TestSpecField:
    def test_default_engine_omitted_from_serialization(self):
        spec = _small_spec()
        assert "engine" not in spec.to_dict()
        assert ScenarioSpec.from_dict(spec.to_dict()).engine == "event"

    def test_batched_engine_round_trips(self):
        spec = _small_spec(engine="batched")
        data = spec.to_dict()
        assert data["engine"] == "batched"
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_engine_lists_registered(self):
        with pytest.raises(KeyError) as excinfo:
            _small_spec(engine="warp")
        message = excinfo.value.args[0]
        assert "unknown engine 'warp'" in message
        assert "batched" in message and "event" in message

    def test_derive_switches_engine(self):
        spec = _small_spec()
        assert spec.derive(engine="batched").engine == "batched"

    def test_preset_digests_are_engine_independent(self):
        runner = ScenarioRunner(processes=1)
        spec = scenario("e4_broadcast_deanonymization")
        event_digest = runner.observation_digest(spec)
        assert event_digest == runner.observation_digest(
            spec.derive(engine="batched")
        )
        assert event_digest == runner.observation_digest(
            spec.derive(engine="sharded", shards=2)
        )

    def test_digest_is_shard_count_independent(self):
        runner = ScenarioRunner(processes=1)
        spec = scenario("e4_broadcast_deanonymization").derive(
            engine="sharded"
        )
        assert runner.observation_digest(
            spec.derive(shards=2)
        ) == runner.observation_digest(spec.derive(shards=3))

    def test_heterogeneous_protocol_digests_are_engine_independent(self):
        # The three-phase protocol mixes message kinds, direct traffic and
        # timers — the sharded engine must recognise what it cannot split
        # and still land on the event engine's exact digest.
        runner = ScenarioRunner(processes=1)
        spec = scenario("e7_three_phase_end_to_end")
        event_digest = runner.observation_digest(spec)
        assert event_digest == runner.observation_digest(
            spec.derive(engine="batched")
        )
        assert event_digest == runner.observation_digest(
            spec.derive(engine="sharded", shards=2)
        )


class TestShardsField:
    def test_default_shards_omitted_from_serialization(self):
        spec = _small_spec(engine="sharded")
        assert "shards" not in spec.to_dict()
        assert ScenarioSpec.from_dict(spec.to_dict()).shards is None

    def test_shards_round_trip(self):
        spec = _small_spec(engine="sharded", shards=3)
        data = spec.to_dict()
        assert data["shards"] == 3
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            _small_spec(engine="sharded", shards=0)

    def test_derive_switches_shards(self):
        spec = _small_spec(engine="sharded")
        assert spec.derive(shards=4).shards == 4


class TestCliEngineFlag:
    def test_unknown_engine_exits_two_with_clean_error(self):
        proc = _run_cli(
            "run", "e4_broadcast_deanonymization", "--engine", "warp"
        )
        assert proc.returncode == 2
        assert "error: unknown engine 'warp'" in proc.stderr
        assert "batched" in proc.stderr and "event" in proc.stderr

    def test_batched_engine_runs_preset(self):
        proc = _run_cli(
            "run", "e4_broadcast_deanonymization",
            "--engine", "batched", "--repetitions", "1", "--processes", "1",
        )
        assert proc.returncode == 0, proc.stderr
        assert "# digest:" in proc.stdout

    def test_sharded_engine_runs_preset_with_shards(self):
        proc = _run_cli(
            "run", "e4_broadcast_deanonymization",
            "--engine", "sharded", "--shards", "2",
            "--repetitions", "1", "--processes", "1",
        )
        assert proc.returncode == 0, proc.stderr
        assert "# digest:" in proc.stdout
