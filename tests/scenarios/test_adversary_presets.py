"""Adversary & fault models driven through the full scenario layer.

The registry and model unit tests live under ``tests/threat``; this module
asserts the *integration*: a registered :class:`ScenarioSpec` compiles,
runs through :func:`run_attack_experiment`, and the model's behaviour —
including a full :mod:`repro.dcnet.blame` verdict — is visible from the
scenario surface.
"""

import dataclasses

import pytest

from repro.analysis.experiment import run_attack_experiment
from repro.scenarios import (
    AdversarySpec,
    FaultSpec,
    ScenarioSpec,
    scenario,
)
from repro.scenarios.runner import (
    compile_scenario,
    experiment_metrics,
    run_scenario_once,
)


def _run_with_model(spec: ScenarioSpec, seed: int):
    """Mirror run_scenario_once but keep a handle on the model instance."""
    compiled = compile_scenario(spec)
    model = spec.adversary.build()
    result = run_attack_experiment(
        compiled.graph,
        compiled.protocol,
        spec.adversary.fraction,
        broadcasts=spec.workload.broadcasts,
        seed=seed,
        conditions=compiled.conditions,
        estimator=spec.adversary.estimator,
        sender_pool=spec.workload.sender_pool,
        session_hook=compiled.session_hook,
        privacy=False,
        adversary=model,
    )
    return result, model


class TestByzantineInsideScenario:
    """A Byzantine member disrupts DC-net rounds inside a full spec run."""

    def test_flip_blames_exactly_the_disruptor_and_expels(self):
        spec = scenario("adv_byzantine_blame_expel").derive(
            workload=dataclasses.replace(
                scenario("adv_byzantine_blame_expel").workload, broadcasts=3
            )
        )
        result, model = _run_with_model(spec, seed=spec.seeds.base_seed)
        verdict = model.last_verdict
        assert verdict is not None
        # Exactly one member blamed, and it is the injected disruptor —
        # never the honest sender whose frame was flipped.
        assert len(verdict.blamed) == 1
        assert verdict.blamed[0] == model.last_disruptor
        assert not verdict.dissolve_recommended
        metrics = result.adversary_metrics
        assert metrics["blame_rounds"] > 0
        assert metrics["blame_correct_attributions"] == metrics["blame_rounds"]
        assert metrics["blame_expelled"] > 0
        assert metrics["blame_dissolved"] == 0

    def test_withhold_is_unattributable_and_dissolves(self):
        spec = scenario("adv_byzantine_blame_dissolve").derive(
            workload=dataclasses.replace(
                scenario("adv_byzantine_blame_dissolve").workload,
                broadcasts=3,
            )
        )
        result, model = _run_with_model(spec, seed=spec.seeds.base_seed)
        verdict = model.last_verdict
        assert verdict is not None
        assert verdict.blamed == []
        assert verdict.dissolve_recommended
        metrics = result.adversary_metrics
        assert metrics["blame_dissolved"] == metrics["blame_rounds"] > 0
        assert metrics["blame_blamed_total"] == 0

    def test_blame_metrics_surface_in_scenario_metrics(self):
        result = run_scenario_once(scenario("adv_byzantine_blame_expel"))
        metrics = experiment_metrics(result)
        assert metrics["adversary_blame_rounds"] > 0
        assert metrics["adversary_blame_overhead_messages"] > 0


class TestAdaptiveSeedParity:
    def test_disabled_adaptive_matches_static_seed_for_seed(self):
        base = scenario("adv_adaptive_mixed_senders")
        disabled = base.derive(
            adversary=dataclasses.replace(
                base.adversary, model_params={"enabled": False}
            )
        )
        static = base.derive(
            adversary=dataclasses.replace(
                base.adversary, model="static", model_params={}
            )
        )
        seed = base.seeds.base_seed
        m_disabled = experiment_metrics(run_scenario_once(disabled, seed))
        m_static = experiment_metrics(run_scenario_once(static, seed))
        # The disabled model consumes the identical RNG stream, so every
        # shared metric (detection, reach, privacy) matches exactly; only
        # its own adversary_* counters are extra.
        extra = {k for k in m_disabled if k.startswith("adversary_")}
        assert {k: v for k, v in m_disabled.items() if k not in extra} \
            == m_static
        assert m_disabled["adversary_adaptive_enabled"] == 0.0
        assert m_disabled["adversary_adaptive_repositions"] == 0.0


class TestSpecValidation:
    def test_unknown_estimator_rejected_at_construction(self):
        with pytest.raises(KeyError) as excinfo:
            AdversarySpec(estimator="crystal_ball")
        message = str(excinfo.value)
        assert "crystal_ball" in message
        assert "first_spy" in message

    def test_unknown_adversary_model_rejected_at_construction(self):
        with pytest.raises(KeyError) as excinfo:
            AdversarySpec(model="quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        for name in ("static", "adaptive", "eclipse", "byzantine_dcnet"):
            assert name in message

    def test_bad_model_params_rejected_at_construction(self):
        with pytest.raises(TypeError):
            AdversarySpec(model="adaptive", model_params={"telepathy": True})

    def test_unknown_fault_model_rejected_at_construction(self):
        with pytest.raises(KeyError) as excinfo:
            FaultSpec(model="solar_flare")
        message = str(excinfo.value)
        assert "solar_flare" in message
        assert "regional_outage" in message


class TestSpecSerialization:
    def test_model_and_faults_round_trip(self):
        spec = scenario("fault_regional_outage")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        spec = scenario("adv_byzantine_blame_expel")
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.adversary.model == "byzantine_dcnet"

    def test_default_spec_dict_omits_new_fields(self):
        # Digest stability: pre-existing specs must serialize exactly as
        # they did before the adversary/fault fields existed.
        data = scenario("e4_broadcast_deanonymization").to_dict()
        assert "faults" not in data
        assert "model" not in data["adversary"]
        assert "model_params" not in data["adversary"]
