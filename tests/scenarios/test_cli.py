"""scripts/scenario.py: the CLI surface over the scenario registry."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "scenario.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_list_names_every_preset(self):
        proc = _run("list")
        assert proc.returncode == 0
        for name in ("e4_broadcast_deanonymization", "stress_node_churn"):
            assert name in proc.stdout

    def test_list_filters_by_tag(self):
        proc = _run("list", "--tag", "stress")
        assert proc.returncode == 0
        assert "stress_lossy_wan" in proc.stdout
        assert "e4_broadcast_deanonymization" not in proc.stdout

    def test_describe_emits_valid_spec_json(self):
        proc = _run("describe", "stress_node_churn")
        assert proc.returncode == 0
        data = json.loads(proc.stdout)
        assert data["name"] == "stress_node_churn"
        assert data["churn"]["leave_fraction"] == 0.2

    def test_run_writes_structured_json(self, tmp_path):
        out = tmp_path / "result.json"
        proc = _run(
            "run", "e4_broadcast_deanonymization",
            "--repetitions", "1", "--json-out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(out.read_text())
        assert document["spec"]["name"] == "e4_broadcast_deanonymization"
        assert document["runs"][0]["mean_reach"] == 1.0
        assert document["digest"] in proc.stdout
        # Privacy metrics ride along in every run by default.
        assert document["runs"][0]["privacy_entropy"] > 0.0
        assert "privacy_intersection_entropy" in document["runs"][0]

    def test_run_seed_override(self, tmp_path):
        # Same scenario, two seeds: the override must change the run (and
        # its digest) without editing the committed spec.
        outs = []
        for seed in ("10", "99"):
            out = tmp_path / f"seed{seed}.json"
            proc = _run(
                "run", "e4_broadcast_deanonymization",
                "--repetitions", "1", "--seed", seed,
                "--json-out", str(out),
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(json.loads(out.read_text()))
        assert outs[0]["spec"]["seeds"]["base_seed"] == 10
        assert outs[1]["spec"]["seeds"]["base_seed"] == 99
        assert outs[0]["digest"] != outs[1]["digest"]

    def test_run_estimator_override(self, tmp_path):
        out = tmp_path / "estimator.json"
        proc = _run(
            "run", "e4_broadcast_deanonymization",
            "--repetitions", "1", "--estimator", "rumor_centrality",
            "--json-out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(out.read_text())
        assert document["spec"]["adversary"]["estimator"] == "rumor_centrality"

    def test_run_no_privacy(self, tmp_path):
        out = tmp_path / "noprivacy.json"
        proc = _run(
            "run", "e4_broadcast_deanonymization",
            "--repetitions", "1", "--no-privacy", "--json-out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(out.read_text())
        assert document["spec"]["privacy"]["enabled"] is False
        assert not any(
            key.startswith("privacy") for key in document["runs"][0]
        )

    def test_run_spec_file(self, tmp_path):
        # describe → edit → run: the offline spec workflow.
        spec = json.loads(_run("describe", "e4_broadcast_deanonymization").stdout)
        spec["name"] = "adhoc_variant"
        spec["workload"]["broadcasts"] = 2
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        proc = _run("run", "--spec-file", str(spec_path), "--repetitions", "1")
        assert proc.returncode == 0, proc.stderr
        assert "adhoc_variant" in proc.stdout

    def test_unknown_scenario_fails(self):
        proc = _run("run", "does_not_exist")
        assert proc.returncode != 0

    def test_run_adversary_model_override(self, tmp_path):
        out = tmp_path / "adaptive.json"
        proc = _run(
            "run", "stress_mixed_senders",
            "--repetitions", "1", "--adversary-model", "adaptive",
            "--json-out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(out.read_text())
        assert document["spec"]["adversary"]["model"] == "adaptive"
        assert "adversary_adaptive_enabled" in document["runs"][0]

    def test_list_shows_model_and_fault_extras(self):
        proc = _run("list", "--tag", "adversary")
        assert proc.returncode == 0
        assert "model=adaptive" in proc.stdout
        proc = _run("list", "--tag", "fault")
        assert proc.returncode == 0
        assert "fault=regional_outage" in proc.stdout

    def test_unknown_adversary_model_lists_registered_names(self):
        proc = _run(
            "run", "e4_broadcast_deanonymization",
            "--adversary-model", "quantum",
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "quantum" in proc.stderr
        for name in ("static", "adaptive", "eclipse", "byzantine_dcnet"):
            assert name in proc.stderr

    def test_unknown_estimator_in_spec_file_lists_registered_names(
        self, tmp_path
    ):
        spec = json.loads(
            _run("describe", "e4_broadcast_deanonymization").stdout
        )
        spec["adversary"]["estimator"] = "crystal_ball"
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        proc = _run("run", "--spec-file", str(spec_path))
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "crystal_ball" in proc.stderr
        assert "first_spy" in proc.stderr
