"""Tests for XOR pads and DC-net share splitting."""

import random

import pytest

from repro.crypto.pads import (
    combine_shares,
    random_pad,
    split_into_shares,
    xor_bytes,
    zero_bytes,
)


class TestXorBytes:
    def test_self_inverse(self):
        data = b"blockchain"
        pad = b"0123456789"
        assert xor_bytes(xor_bytes(data, pad), pad) == data

    def test_identity_with_zero(self):
        data = b"abc"
        assert xor_bytes(data, zero_bytes(3)) == data

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            xor_bytes(b"abc", b"ab")

    def test_requires_at_least_one_operand(self):
        with pytest.raises(ValueError):
            xor_bytes()

    def test_associative_and_commutative(self):
        a, b, c = b"aaa", b"bbb", b"ccc"
        assert xor_bytes(a, b, c) == xor_bytes(c, a, b)


class TestZeroBytes:
    def test_length(self):
        assert len(zero_bytes(16)) == 16

    def test_all_zero(self):
        assert set(zero_bytes(8)) == {0}

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            zero_bytes(-1)


class TestRandomPad:
    def test_length(self):
        rng = random.Random(0)
        assert len(random_pad(rng, 32)) == 32

    def test_deterministic_under_seed(self):
        assert random_pad(random.Random(7), 16) == random_pad(random.Random(7), 16)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_pad(random.Random(0), -5)

    def test_empty_pad_draws_nothing(self):
        # Regression: getrandbits(0) raises before Python 3.11; an empty
        # pad must come back empty without touching the RNG stream.
        rng = random.Random(6)
        state = rng.getstate()
        assert random_pad(rng, 0) == b""
        assert rng.getstate() == state


class TestShareSplitting:
    def test_shares_recombine_to_message(self):
        rng = random.Random(1)
        message = b"a transaction payload"
        shares = split_into_shares(message, 5, rng)
        assert combine_shares(shares) == message

    def test_share_count(self):
        rng = random.Random(2)
        assert len(split_into_shares(b"msg", 7, rng)) == 7

    def test_single_share_is_the_message(self):
        rng = random.Random(3)
        assert split_into_shares(b"msg", 1, rng) == [b"msg"]

    def test_zero_message_recombines_to_zero(self):
        rng = random.Random(4)
        shares = split_into_shares(zero_bytes(16), 4, rng)
        assert combine_shares(shares) == zero_bytes(16)

    def test_strict_subset_does_not_reveal_message(self):
        # Statistical sanity check: the XOR of any k-1 shares differs from the
        # message (overwhelmingly likely for 16-byte random pads).
        rng = random.Random(5)
        message = b"sixteen byte msg"
        shares = split_into_shares(message, 4, rng)
        partial = combine_shares(shares[:-1])
        assert partial != message

    def test_empty_message_splits_into_empty_shares(self):
        rng = random.Random(7)
        state = rng.getstate()
        shares = split_into_shares(b"", 5, rng)
        assert shares == [b""] * 5
        assert combine_shares(shares) == b""
        assert rng.getstate() == state  # zero-length frames draw nothing

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            split_into_shares(b"msg", 0, random.Random(0))

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_shares([])
