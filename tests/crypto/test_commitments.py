"""Tests for the hash commitments used by the blame protocol."""

import random

from repro.crypto.commitments import Commitment, commit, verify_commitment


class TestCommit:
    def test_commitment_carries_opening(self):
        c = commit(b"pad bytes", random.Random(0))
        assert c.is_open
        assert c.value == b"pad bytes"

    def test_valid_opening_verifies(self):
        c = commit(b"pad bytes", random.Random(1))
        assert verify_commitment(c)

    def test_hiding_distinct_digests_for_same_value(self):
        rng = random.Random(2)
        assert commit(b"v", rng).digest != commit(b"v", rng).digest

    def test_binding_wrong_value_rejected(self):
        c = commit(b"original", random.Random(3))
        forged = c.opened(b"different", c.nonce)
        assert not verify_commitment(forged)

    def test_binding_wrong_nonce_rejected(self):
        c = commit(b"original", random.Random(4))
        forged = c.opened(c.value, b"\x00" * 16)
        assert not verify_commitment(forged)

    def test_unopened_commitment_does_not_verify(self):
        c = commit(b"original", random.Random(5))
        unopened = Commitment(digest=c.digest)
        assert not unopened.is_open
        assert not verify_commitment(unopened)
