"""Tests for simulated pairwise channels."""

import random

import pytest

from repro.crypto.channels import ChannelKeystore, PairwiseChannel


class TestPairwiseChannel:
    def test_both_endpoints_derive_same_keystream(self):
        a = PairwiseChannel(1, 2, secret=b"shared")
        b = PairwiseChannel(2, 1, secret=b"shared")
        assert a.keystream(0, 64) == b.keystream(0, 64)

    def test_rounds_are_independent(self):
        channel = PairwiseChannel(1, 2, secret=b"shared")
        assert channel.keystream(0, 32) != channel.keystream(1, 32)

    def test_keystream_length(self):
        channel = PairwiseChannel(1, 2, secret=b"s")
        for length in [0, 1, 31, 32, 33, 100]:
            assert len(channel.keystream(5, length)) == length

    def test_different_secrets_differ(self):
        a = PairwiseChannel(1, 2, secret=b"x")
        b = PairwiseChannel(1, 2, secret=b"y")
        assert a.keystream(0, 32) != b.keystream(0, 32)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            PairwiseChannel(1, 2, secret=b"s").keystream(0, -1)


class TestChannelKeystore:
    def test_same_pair_gets_same_secret(self):
        store = ChannelKeystore(random.Random(0))
        c1 = store.channel(1, 2)
        c2 = store.channel(2, 1)
        assert c1.keystream(3, 16) == c2.keystream(3, 16)

    def test_different_pairs_get_different_secrets(self):
        store = ChannelKeystore(random.Random(0))
        a = store.channel(1, 2)
        b = store.channel(1, 3)
        assert a.keystream(0, 32) != b.keystream(0, 32)

    def test_self_channel_rejected(self):
        store = ChannelKeystore(random.Random(0))
        with pytest.raises(ValueError):
            store.channel(1, 1)

    def test_len_counts_unique_pairs(self):
        store = ChannelKeystore(random.Random(0))
        store.channel(1, 2)
        store.channel(2, 1)
        store.channel(1, 3)
        assert len(store) == 2
