"""Tests for identity/message hashing and the closest-identity rule."""

import pytest

from repro.crypto.hashing import (
    HASH_SPACE,
    closest_identity,
    hash_bytes,
    hash_distance,
    hash_identity,
    hash_message,
    hash_to_int,
)


class TestHashToInt:
    def test_deterministic(self):
        assert hash_to_int(b"abc") == hash_to_int(b"abc")

    def test_within_hash_space(self):
        assert 0 <= hash_to_int(b"abc") < HASH_SPACE

    def test_domain_separation(self):
        assert hash_to_int(b"abc", domain="a") != hash_to_int(b"abc", domain="b")

    def test_accepts_int_str_bytes(self):
        values = {hash_to_int(5), hash_to_int("5"), hash_to_int(b"\x05")}
        assert len(values) >= 2  # at least str vs bytes/int differ via encoding

    def test_rejects_unhashable_type(self):
        with pytest.raises(TypeError):
            hash_to_int(3.14)  # type: ignore[arg-type]

    def test_identity_and_message_domains_differ(self):
        assert hash_identity(42) != hash_message(42)


class TestHashBytes:
    def test_sha256_length(self):
        assert len(hash_bytes(b"payload")) == 32

    def test_different_inputs_differ(self):
        assert hash_bytes(b"a") != hash_bytes(b"b")


class TestHashDistance:
    def test_zero_for_equal_points(self):
        assert hash_distance(123, 123) == 0

    def test_symmetry(self):
        assert hash_distance(10, 500) == hash_distance(500, 10)

    def test_wraps_around_the_ring(self):
        near_max = HASH_SPACE - 1
        assert hash_distance(near_max, 0) == 1

    def test_never_exceeds_half_ring(self):
        assert hash_distance(0, HASH_SPACE // 2 + 10) <= HASH_SPACE // 2


class TestClosestIdentity:
    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            closest_identity(b"msg", [])

    def test_single_member_is_selected(self):
        assert closest_identity(b"msg", [7]) == 7

    def test_deterministic_selection(self):
        group = list(range(10))
        first = closest_identity(b"some transaction", group)
        second = closest_identity(b"some transaction", group)
        assert first == second

    def test_selection_independent_of_order(self):
        group = list(range(10))
        assert closest_identity(b"tx", group) == closest_identity(
            b"tx", list(reversed(group))
        )

    def test_selected_member_minimises_distance(self):
        group = list(range(20))
        winner = closest_identity(b"tx-abc", group)
        target = hash_message(b"tx-abc")
        winner_distance = hash_distance(hash_identity(winner), target)
        for member in group:
            assert winner_distance <= hash_distance(hash_identity(member), target)

    def test_different_messages_select_different_members(self):
        group = list(range(50))
        winners = {
            closest_identity(f"tx-{i}".encode(), group) for i in range(30)
        }
        assert len(winners) > 1
