"""Tests for the table-driven CRC-32 implementation."""

import binascii
import random

import pytest

from repro.crypto.crc import CRC32, CRC_BYTES, append_crc, crc32, split_crc, verify_crc


class TestCrc32:
    def test_matches_reference_implementation(self):
        for data in [b"", b"a", b"hello world", bytes(range(256))]:
            assert crc32(data) == binascii.crc32(data)

    def test_matches_reference_on_random_data(self):
        rng = random.Random(0)
        for _ in range(20):
            data = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 200)))
            assert crc32(data) == binascii.crc32(data)

    def test_incremental_equals_one_shot(self):
        crc = CRC32()
        crc.update(b"hello ")
        crc.update(b"world")
        assert crc.digest() == crc32(b"hello world")

    def test_different_data_different_checksum(self):
        assert crc32(b"one") != crc32(b"two")


class TestFraming:
    def test_append_and_verify_roundtrip(self):
        framed = append_crc(b"payload")
        assert verify_crc(framed)

    def test_split_returns_payload(self):
        framed = append_crc(b"payload")
        payload, checksum = split_crc(framed)
        assert payload == b"payload"
        assert checksum == crc32(b"payload")

    def test_framed_length(self):
        assert len(append_crc(b"abc")) == 3 + CRC_BYTES

    def test_corruption_detected(self):
        framed = bytearray(append_crc(b"a transaction"))
        framed[0] ^= 0xFF
        assert not verify_crc(bytes(framed))

    def test_xor_of_two_framed_messages_is_invalid(self):
        # This is exactly how DC-net collisions manifest: the XOR of two valid
        # framed payloads is (almost surely) not a valid framed payload.
        a = append_crc(b"first message!!")
        b = append_crc(b"second message!")
        collided = bytes(x ^ y for x, y in zip(a, b))
        assert not verify_crc(collided)

    def test_too_short_frame_is_invalid(self):
        assert not verify_crc(b"ab")

    def test_split_too_short_raises(self):
        with pytest.raises(ValueError):
            split_crc(b"ab")
