"""Unit surface of the telemetry recorder layer.

The subsystem's core contract — the no-op default records nothing and
costs nothing structurally, the concrete recorder produces a
schema-valid JSON document, and the ambient installation is scoped and
re-entrant — is pinned here without touching any engine.
"""

import json
from pathlib import Path

import pytest

from repro.telemetry import (
    NULL_RECORDER,
    Recorder,
    TelemetryRecorder,
    aggregate_telemetry,
    chrome_trace,
    current_recorder,
    recording,
    validate,
)

SCHEMA = json.loads(
    (Path(__file__).resolve().parent / "telemetry.schema.json").read_text()
)


class TestNullRecorder:
    def test_disabled_and_stateless(self):
        recorder = Recorder()
        assert recorder.enabled is False
        assert recorder.queue_depth is False
        recorder.incr("events", 5)
        recorder.observe("sizes", 3.0)
        recorder.gauge_max("depth", 9)
        recorder.fallback("because")
        recorder.record_shard(0, {"windows": 1})
        recorder.sample_rss()
        with recorder.span("phase", detail=1) as node:
            assert node is None
        # No instrument grew any observable state: the instance dict is
        # exactly as empty as a fresh one.
        assert vars(recorder) == vars(Recorder())

    def test_null_recorder_is_shared_noop(self):
        assert NULL_RECORDER.enabled is False
        with NULL_RECORDER.span("x"):
            pass


class TestTelemetryRecorder:
    def test_counters_accumulate(self):
        recorder = TelemetryRecorder()
        recorder.incr("events")
        recorder.incr("events", 4)
        recorder.incr("zero", 0)  # zero deltas do not materialise keys
        assert recorder.counters == {"events": 5}

    def test_histogram_power_of_two_buckets(self):
        recorder = TelemetryRecorder()
        for value in (0, 1, 2, 3, 4, 5, 1000):
            recorder.observe("cohort_size", value)
        hist = recorder.histograms["cohort_size"]
        assert hist["count"] == 7
        assert hist["sum"] == 1015
        assert hist["min"] == 0
        assert hist["max"] == 1000
        assert hist["buckets"] == {
            "0": 1, "1": 1, "2": 1, "4": 2, "8": 1, "1024": 1,
        }

    def test_gauge_keeps_peak(self):
        recorder = TelemetryRecorder()
        recorder.gauge_max("depth", 5)
        recorder.gauge_max("depth", 3)
        recorder.gauge_max("depth", 8)
        assert recorder.gauges == {"depth": 8}

    def test_shard_counters_merge_by_shard(self):
        recorder = TelemetryRecorder()
        recorder.record_shard(0, {"windows": 2, "deliveries_processed": 10})
        recorder.record_shard(1, {"windows": 2})
        recorder.record_shard(0, {"windows": 1})
        assert recorder.shards == {
            0: {"windows": 3, "deliveries_processed": 10},
            1: {"windows": 2},
        }

    def test_span_tree_follows_nesting(self):
        recorder = TelemetryRecorder()
        with recorder.span("outer", kind="test"):
            with recorder.span("inner_a"):
                pass
            with recorder.span("inner_b"):
                pass
        (outer,) = recorder.spans
        assert outer["name"] == "outer"
        assert outer["attrs"] == {"kind": "test"}
        assert [child["name"] for child in outer["children"]] == [
            "inner_a", "inner_b",
        ]
        assert outer["dur_us"] >= max(
            child["dur_us"] for child in outer["children"]
        )

    def test_span_cap_counts_drops(self):
        recorder = TelemetryRecorder()
        recorder.MAX_SPANS = 3
        for _ in range(5):
            with recorder.span("tick"):
                pass
        assert len(recorder.spans) == 3
        assert recorder.counters["spans_dropped"] == 2

    def test_open_span_reports_elapsed_in_to_dict(self):
        recorder = TelemetryRecorder()
        with recorder.span("open"):
            document = recorder.to_dict()
        (span,) = document["spans"]
        assert span["dur_us"] >= 0
        # The live node is untouched until the span actually closes.
        assert recorder.spans[0]["dur_us"] is not None

    def test_document_and_aggregate_validate_against_schema(self):
        recorder = TelemetryRecorder()
        recorder.incr("events_dispatched", 7)
        recorder.observe("cohort_size", 3)
        recorder.gauge_max("live_events_peak", 4)
        recorder.fallback("loss or jitter enabled")
        recorder.record_shard(0, {"windows": 1})
        with recorder.span("repetition", seed=1):
            with recorder.span("run"):
                pass
        scenario_doc = aggregate_telemetry(
            [recorder.to_dict(), TelemetryRecorder().to_dict()]
        )
        assert validate(scenario_doc, SCHEMA) == []

    def test_aggregate_sums_counters_and_maxes_gauges(self):
        first = TelemetryRecorder()
        first.incr("events_dispatched", 5)
        first.gauge_max("peak_rss_kib", 100.0)
        first.record_shard(0, {"windows": 2})
        second = TelemetryRecorder()
        second.incr("events_dispatched", 7)
        second.gauge_max("peak_rss_kib", 90.0)
        second.record_shard(0, {"windows": 3})
        doc = aggregate_telemetry([first.to_dict(), second.to_dict()])
        assert doc["counters"] == {"events_dispatched": 12}
        assert doc["gauges"] == {"peak_rss_kib": 100.0}
        assert doc["shards"] == {"0": {"windows": 5}}
        assert len(doc["repetitions"]) == 2

    def test_chrome_trace_emits_complete_events(self):
        recorder = TelemetryRecorder()
        recorder.incr("events_dispatched", 3)
        with recorder.span("repetition"):
            with recorder.span("run", broadcasts=1):
                pass
        trace = chrome_trace(aggregate_telemetry([recorder.to_dict()]))
        phases = [event["ph"] for event in trace["traceEvents"]]
        assert phases.count("M") == 1  # thread metadata per repetition
        assert phases.count("X") == 2  # one complete event per span
        assert phases.count("I") == 1  # counters instant
        names = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "X"
        }
        assert names == {"repetition", "run"}


class TestAmbientRecording:
    def test_recording_installs_and_restores(self):
        assert current_recorder() is None
        recorder = TelemetryRecorder()
        with recording(recorder) as installed:
            assert installed is recorder
            assert current_recorder() is recorder
        assert current_recorder() is None

    def test_recording_none_is_transparent(self):
        with recording(None) as installed:
            assert installed is None
            assert current_recorder() is None

    def test_disabled_recorder_not_installed(self):
        with recording(NULL_RECORDER) as installed:
            assert installed is None
            assert current_recorder() is None

    def test_nested_recording_restores_outer(self):
        outer, inner = TelemetryRecorder(), TelemetryRecorder()
        with recording(outer):
            with recording(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is None

    def test_exception_restores_previous(self):
        recorder = TelemetryRecorder()
        with pytest.raises(RuntimeError):
            with recording(recorder):
                raise RuntimeError("boom")
        assert current_recorder() is None
