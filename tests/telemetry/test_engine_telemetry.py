"""Telemetry threaded through the engines: neutral, complete, consistent.

The load-bearing claims of ``docs/OBSERVABILITY.md``, pinned per engine:

* **digest neutrality** — attaching a recorder changes no observation
  log and no run digest, on the event engine and through the sharded
  multi-process path;
* **counter fidelity** — the sharded workers' per-shard counters sum to
  what the single-process engine dispatches for the same configuration;
* **span robustness** — the span tree stays well-formed when a run is
  stopped by ``max_events`` and resumed;
* **surfaced fallbacks** — a declined sharded split reports its reason
  instead of degrading silently, and the scenario aggregate carries the
  engine that actually ran.
"""

import json
from pathlib import Path

from repro.broadcast.flood import FloodNode
from repro.broadcast.gossip import run_gossip
from repro.network.latency import ConstantLatency
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay
from repro.scenarios import ScenarioRunner, scenario
from repro.scenarios.runner import build_session, observation_log_digest
from repro.telemetry import TelemetryRecorder, recording, validate

SCHEMA = json.loads(
    (Path(__file__).resolve().parent / "telemetry.schema.json").read_text()
)


def _digest_with_recorder(spec, recorder):
    """ScenarioRunner.observation_digest, under an ambient recorder."""
    with recording(recorder):
        session = build_session(spec)
        source = sorted(session.graph.nodes, key=repr)[0]
        session.protocol.broadcast(session, source, f"digest-{spec.name}")
    return observation_log_digest(session.simulator)


def _flood_sim(engine, shards=None, size=80, telemetry=None):
    overlay = random_regular_overlay(size, degree=4, seed=3)
    sim = Simulator(
        overlay, latency=ConstantLatency(1.0), seed=0,
        engine=engine, shards=shards, telemetry=telemetry,
    )
    sim.populate(FloodNode)
    sim.node(0).originate("tx")
    return sim


class TestDigestNeutrality:
    def test_event_preset_digest_unchanged(self):
        spec = scenario("e1_message_overhead")
        plain = ScenarioRunner().observation_digest(spec)
        assert _digest_with_recorder(spec, TelemetryRecorder()) == plain

    def test_sharded_preset_digest_unchanged(self):
        spec = scenario("e11_scale").derive(engine="sharded", shards=2)
        plain = ScenarioRunner().observation_digest(spec)
        recorder = TelemetryRecorder()
        assert _digest_with_recorder(spec, recorder) == plain
        # The instrumented run really took the multi-process path — the
        # neutrality claim would be hollow on the fallback.
        assert recorder.shards
        assert recorder.counters["sharded_runs"] >= 1

    def test_run_digest_and_metrics_unchanged_with_telemetry(self):
        spec = scenario("e1_message_overhead")
        off = ScenarioRunner(processes=1).run(spec, repetitions=1)
        on = ScenarioRunner(processes=1, telemetry=True).run(
            spec, repetitions=1
        )
        assert on.digest == off.digest
        assert on.runs == off.runs
        assert off.telemetry is None
        assert "telemetry" not in off.to_dict()
        assert validate(on.telemetry, SCHEMA) == []
        assert on.to_dict()["telemetry"] == on.telemetry


class TestCounters:
    def test_event_engine_counts_dispatch_and_deliveries(self):
        recorder = TelemetryRecorder()
        sim = _flood_sim("event", telemetry=recorder)
        sim.run_until_idle()
        assert recorder.counters["events_dispatched"] == len(sim.store)
        assert recorder.counters["deliveries_recorded"] == len(sim.store)

    def test_sharded_worker_counters_sum_to_single_process(self):
        single = TelemetryRecorder()
        sim = _flood_sim("event", telemetry=single)
        sim.run_until_idle()

        sharded = TelemetryRecorder()
        sim = _flood_sim("sharded", shards=2, telemetry=sharded)
        sim.run_until_idle()
        assert len(sharded.shards) == 2
        processed = sum(
            counters["deliveries_processed"]
            for counters in sharded.shards.values()
        )
        assert processed == single.counters["events_dispatched"]

    def test_batched_engine_records_cohorts(self):
        recorder = TelemetryRecorder()
        sim = _flood_sim("batched", telemetry=recorder)
        sim.run_until_idle()
        hist = recorder.histograms["cohort_size"]
        assert recorder.counters["cohorts"] == hist["count"]
        assert hist["sum"] == recorder.counters["events_dispatched"]

    def test_queue_depth_tracking_is_opt_in(self):
        default = TelemetryRecorder()
        sim = _flood_sim("event", telemetry=default)
        sim.run_until_idle()
        assert "queue_depth_peak" not in default.gauges

        tracking = TelemetryRecorder(queue_depth=True)
        sim = _flood_sim("event", telemetry=tracking)
        sim.run_until_idle()
        assert tracking.gauges["queue_depth_peak"] >= 1


class TestSpans:
    def test_span_tree_well_formed_across_stop_and_resume(self):
        recorder = TelemetryRecorder()
        sim = _flood_sim("event", telemetry=recorder)
        sim.run(max_events=25)
        sim.run_until_idle()
        names = [span["name"] for span in recorder.spans]
        assert names == ["simulator_run", "simulator_run"]
        assert recorder.counters["events_dispatched"] == len(sim.store)
        # Both spans closed; the document validates as one repetition.
        from repro.telemetry import aggregate_telemetry

        assert validate(
            aggregate_telemetry([recorder.to_dict()]), SCHEMA
        ) == []


class TestFallbackSurface:
    def test_sharded_decline_records_reason(self):
        # Gossip consumes per-node protocol RNG, which the sharded engine
        # cannot split; the decline must be visible, not silent.
        recorder = TelemetryRecorder()
        overlay = random_regular_overlay(60, degree=4, seed=3)
        with recording(recorder):
            result = run_gossip(
                overlay, source=0, seed=1, engine="sharded", shards=2
            )
        sim = result.simulator
        assert sim.engine_effective == "batched"
        assert sim.fallback_reason is not None
        assert recorder.fallbacks  # reason string counted

    def test_effective_engine_reported_without_telemetry(self):
        overlay = random_regular_overlay(60, degree=4, seed=3)
        result = run_gossip(
            overlay, source=0, seed=1, engine="sharded", shards=2
        )
        assert result.simulator.engine_effective == "batched"
        assert "rng" in result.simulator.fallback_reason

    def test_scenario_aggregate_carries_engine_effective(self):
        spec = scenario("e1_message_overhead")
        result = ScenarioRunner(processes=1).run(spec, repetitions=1)
        assert result.aggregate["engine_effective"] == "event"
        # Digest-neutral, exactly like effective_processes.
        assert "engine_effective" not in json.dumps(
            {"spec": result.spec.to_dict(), "seeds": result.seeds,
             "runs": result.runs},
        )
