"""The dependency-free JSON-Schema subset validator.

The container has no ``jsonschema`` package, so CI validates telemetry
documents with ``repro.telemetry.schema.validate``.  These tests pin the
subset's semantics — and, just as important, that anything *outside* the
subset fails loudly instead of silently passing.
"""

import json
from pathlib import Path

import pytest

from repro.telemetry import SchemaError, validate

SCHEMA_PATH = Path(__file__).resolve().parent / "telemetry.schema.json"


class TestTypes:
    def test_scalar_types(self):
        assert validate(3, {"type": "integer"}) == []
        assert validate(3.5, {"type": "number"}) == []
        assert validate(3, {"type": "number"}) == []
        assert validate("x", {"type": "string"}) == []
        assert validate(True, {"type": "boolean"}) == []
        assert validate(None, {"type": "null"}) == []

    def test_bool_is_not_integer_or_number(self):
        # bool subclasses int in Python; JSON Schema keeps them distinct.
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})
        with pytest.raises(SchemaError):
            validate(True, {"type": "number"})

    def test_type_union(self):
        schema = {"type": ["integer", "null"]}
        assert validate(3, schema) == []
        assert validate(None, schema) == []
        with pytest.raises(SchemaError):
            validate("three", schema)

    def test_unknown_type_name_rejected(self):
        with pytest.raises(SchemaError):
            validate(1, {"type": "decimal"})


class TestObjectsAndArrays:
    def test_required_and_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
        }
        assert validate({"a": 1}, schema) == []
        with pytest.raises(SchemaError, match="missing required"):
            validate({}, schema)
        with pytest.raises(SchemaError):
            validate({"a": "one"}, schema)

    def test_additional_properties_false(self):
        schema = {"type": "object", "properties": {}, "additionalProperties": False}
        with pytest.raises(SchemaError, match="unexpected key"):
            validate({"surprise": 1}, schema)

    def test_additional_properties_schema(self):
        schema = {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0},
        }
        assert validate({"a": 1, "b": 2}, schema) == []
        with pytest.raises(SchemaError):
            validate({"a": -1}, schema)

    def test_items(self):
        schema = {"type": "array", "items": {"type": "string"}}
        assert validate(["x", "y"], schema) == []
        with pytest.raises(SchemaError):
            validate(["x", 3], schema)

    def test_enum_and_minimum(self):
        assert validate(1, {"enum": [1, 2]}) == []
        with pytest.raises(SchemaError):
            validate(3, {"enum": [1, 2]})
        with pytest.raises(SchemaError, match="below minimum"):
            validate(-1, {"type": "integer", "minimum": 0})


class TestRefs:
    def test_local_ref_resolves(self):
        schema = {
            "$ref": "#/$defs/node",
            "$defs": {
                "node": {
                    "type": "object",
                    "properties": {
                        "next": {"$ref": "#/$defs/node"},
                    },
                }
            },
        }
        assert validate({"next": {"next": {}}}, schema) == []
        with pytest.raises(SchemaError):
            validate({"next": 3}, schema)

    def test_nonlocal_ref_rejected(self):
        with pytest.raises(SchemaError, match="only local refs"):
            validate({}, {"$ref": "https://example.com/schema"})

    def test_dangling_ref_rejected(self):
        with pytest.raises(SchemaError, match="does not resolve"):
            validate({}, {"$ref": "#/$defs/missing"})


class TestUnsupportedKeywords:
    def test_unsupported_keyword_raises_instead_of_passing(self):
        # A silently ignored keyword would make the schema lie; the
        # validator refuses schemas it cannot fully enforce.
        with pytest.raises(SchemaError, match="unsupported keywords"):
            validate([1], {"type": "array", "uniqueItems": True})


class TestCommittedSchema:
    def test_schema_file_stays_inside_the_supported_subset(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        # An empty scenario document is valid; walking it forces every
        # top-level keyword through the interpreter.
        empty = {
            "repetitions": [],
            "counters": {},
            "gauges": {},
            "fallbacks": {},
            "shards": {},
        }
        assert validate(empty, schema) == []

    def test_schema_rejects_malformed_span(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        document = {
            "repetitions": [{
                "version": 1,
                "counters": {},
                "gauges": {},
                "histograms": {},
                "fallbacks": {},
                "shards": {},
                "spans": [{"name": "run"}],  # missing start/dur/children
            }],
            "counters": {},
            "gauges": {},
            "fallbacks": {},
            "shards": {},
        }
        with pytest.raises(SchemaError, match="missing required"):
            validate(document, schema)
