"""Tests for DC-net payload padding."""

import pytest

from repro.dcnet.padding import pad_message, padded_length, unpad_message


class TestPadding:
    def test_roundtrip(self):
        frame = pad_message(b"hello", 32)
        assert len(frame) == 32
        assert unpad_message(frame) == b"hello"

    def test_roundtrip_payload_ending_in_zero_bytes(self):
        payload = b"data\x00\x00"
        assert unpad_message(pad_message(payload, 32)) == payload

    def test_empty_payload(self):
        assert unpad_message(pad_message(b"", 16)) == b""

    def test_exact_fit(self):
        payload = b"x" * 12
        frame = pad_message(payload, 16)
        assert unpad_message(frame) == payload

    def test_too_long_payload_rejected(self):
        with pytest.raises(ValueError):
            pad_message(b"x" * 13, 16)

    def test_padded_length(self):
        assert padded_length(10) == 14

    def test_padded_length_negative_rejected(self):
        with pytest.raises(ValueError):
            padded_length(-1)

    def test_unpad_too_short_frame_rejected(self):
        with pytest.raises(ValueError):
            unpad_message(b"ab")

    def test_unpad_inconsistent_prefix_rejected(self):
        frame = (100).to_bytes(4, "big") + b"short"
        with pytest.raises(ValueError):
            unpad_message(frame)
