"""Tests for payload framing, collision detection, backoff and announcements."""

import random

import pytest

from repro.crypto.pads import xor_bytes
from repro.dcnet.announcement import (
    ANNOUNCEMENT_FRAME_BYTES,
    decode_announcement,
    encode_announcement,
    idle_announcement,
)
from repro.dcnet.collision import BackoffPolicy, decode_payload, encode_payload


class TestPayloadFraming:
    def test_roundtrip(self):
        frame = encode_payload(b"a blockchain transaction", 64)
        assert len(frame) == 64
        assert decode_payload(frame) == b"a blockchain transaction"

    def test_collision_of_two_frames_detected(self):
        a = encode_payload(b"first transaction", 64)
        b = encode_payload(b"second transaction", 64)
        assert decode_payload(xor_bytes(a, b)) is None

    def test_payload_too_large_rejected(self):
        with pytest.raises(ValueError):
            encode_payload(b"x" * 60, 64)

    def test_frame_too_small_rejected(self):
        with pytest.raises(ValueError):
            encode_payload(b"x", 8)

    def test_corrupted_frame_detected(self):
        frame = bytearray(encode_payload(b"payload", 32))
        frame[5] ^= 0x01
        assert decode_payload(bytes(frame)) is None


class TestBackoffPolicy:
    def test_delay_within_window(self):
        policy = BackoffPolicy(random.Random(0), base_window=2, max_window=32)
        for attempt in range(1, 8):
            delay = policy.delay_rounds(attempt)
            assert 1 <= delay <= min(2**attempt, 32)

    def test_window_capped(self):
        policy = BackoffPolicy(random.Random(0), base_window=2, max_window=4)
        assert all(policy.delay_rounds(10) <= 4 for _ in range(20))

    def test_invalid_attempt_rejected(self):
        policy = BackoffPolicy(random.Random(0))
        with pytest.raises(ValueError):
            policy.delay_rounds(0)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(random.Random(0), base_window=0)
        with pytest.raises(ValueError):
            BackoffPolicy(random.Random(0), base_window=4, max_window=2)


class TestAnnouncements:
    def test_roundtrip(self):
        assert decode_announcement(encode_announcement(1234)) == 1234

    def test_idle_frame_decodes_to_zero(self):
        assert decode_announcement(idle_announcement()) == 0

    def test_idle_frame_is_all_zero(self):
        assert idle_announcement() == bytes(ANNOUNCEMENT_FRAME_BYTES)

    def test_collision_detected(self):
        a = encode_announcement(100)
        b = encode_announcement(200)
        assert decode_announcement(xor_bytes(a, b)) is None

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            encode_announcement(-1)

    def test_too_large_length_rejected(self):
        with pytest.raises(ValueError):
            encode_announcement(2**32)

    def test_wrong_frame_size_rejected(self):
        with pytest.raises(ValueError):
            decode_announcement(b"\x00" * 7)

    def test_announcement_frame_is_eight_bytes(self):
        assert len(encode_announcement(42)) == ANNOUNCEMENT_FRAME_BYTES
