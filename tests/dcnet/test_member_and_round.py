"""Tests for the per-member state machine and whole-group DC-net rounds."""

import random

import pytest

from repro.crypto.pads import xor_bytes, zero_bytes
from repro.dcnet.member import DCNetMember
from repro.dcnet.round import expected_messages, run_round


FRAME = 32


def framed(payload: bytes) -> bytes:
    """Pad a payload to the test frame length without CRC (raw XOR content)."""
    return payload + bytes(FRAME - len(payload))


class TestDCNetMember:
    def test_requires_membership_of_own_group(self):
        with pytest.raises(ValueError):
            DCNetMember("x", ["a", "b"], FRAME)

    def test_requires_two_members(self):
        with pytest.raises(ValueError):
            DCNetMember("a", ["a"], FRAME)

    def test_requires_positive_frame_length(self):
        with pytest.raises(ValueError):
            DCNetMember("a", ["a", "b"], 0)

    def test_prepare_shares_one_per_peer(self):
        member = DCNetMember("a", ["a", "b", "c", "d"], FRAME)
        shares = member.prepare_shares(framed(b"msg"), random.Random(0))
        assert set(shares) == {"b", "c", "d"}
        assert all(len(s) == FRAME for s in shares.values())

    def test_shares_xor_to_message(self):
        member = DCNetMember("a", ["a", "b", "c", "d"], FRAME)
        message = framed(b"the payload")
        shares = member.prepare_shares(message, random.Random(0))
        assert xor_bytes(*shares.values()) == message

    def test_none_message_contributes_zero(self):
        member = DCNetMember("a", ["a", "b", "c"], FRAME)
        shares = member.prepare_shares(None, random.Random(0))
        assert xor_bytes(*shares.values()) == zero_bytes(FRAME)

    def test_wrong_message_length_rejected(self):
        member = DCNetMember("a", ["a", "b"], FRAME)
        with pytest.raises(ValueError):
            member.prepare_shares(b"too short", random.Random(0))

    def test_step_order_enforced(self):
        member = DCNetMember("a", ["a", "b"], FRAME)
        with pytest.raises(RuntimeError):
            member.receive_shares({"b": zero_bytes(FRAME)})
        with pytest.raises(RuntimeError):
            member.receive_accumulations({"b": zero_bytes(FRAME)})
        with pytest.raises(RuntimeError):
            member.recover()

    def test_missing_peer_share_rejected(self):
        member = DCNetMember("a", ["a", "b", "c"], FRAME)
        member.prepare_shares(None, random.Random(0))
        with pytest.raises(ValueError):
            member.receive_shares({"b": zero_bytes(FRAME)})

    def test_unexpected_peer_share_rejected(self):
        member = DCNetMember("a", ["a", "b"], FRAME)
        member.prepare_shares(None, random.Random(0))
        with pytest.raises(ValueError):
            member.receive_shares({"b": zero_bytes(FRAME), "z": zero_bytes(FRAME)})

    def test_wrong_share_length_rejected(self):
        member = DCNetMember("a", ["a", "b"], FRAME)
        member.prepare_shares(None, random.Random(0))
        with pytest.raises(ValueError):
            member.receive_shares({"b": b"short"})


class TestRunRound:
    def test_single_sender_message_recovered_by_others(self):
        group = ["a", "b", "c", "d", "e"]
        message = framed(b"anonymous transaction")
        result = run_round(group, {"c": message}, FRAME, random.Random(1))
        for member in group:
            if member != "c":
                assert result.recovered_by(member) == message
        # The sender recovers the XOR of the *others'* messages, i.e. zero.
        assert result.recovered_by("c") == zero_bytes(FRAME)

    def test_no_sender_recovers_zero_everywhere(self):
        group = ["a", "b", "c"]
        result = run_round(group, {}, FRAME, random.Random(2))
        for member in group:
            assert result.recovered_by(member) == zero_bytes(FRAME)
        assert not result.anyone_sent

    def test_two_senders_collide_into_xor(self):
        group = ["a", "b", "c", "d"]
        m1, m2 = framed(b"first"), framed(b"second")
        result = run_round(group, {"a": m1, "b": m2}, FRAME, random.Random(3))
        # A member that sent nothing recovers the XOR of both messages.
        assert result.recovered_by("c") == xor_bytes(m1, m2)

    def test_message_count_is_three_k_times_k_minus_one(self):
        group = list(range(6))
        result = run_round(group, {}, FRAME, random.Random(4))
        assert result.messages_sent == expected_messages(6) == 3 * 6 * 5

    def test_per_member_message_count(self):
        group = list(range(5))
        result = run_round(group, {}, FRAME, random.Random(5))
        for member in group:
            assert result.messages_per_member[member] == 3 * 4

    def test_senders_ground_truth(self):
        group = ["a", "b", "c"]
        result = run_round(group, {"b": framed(b"m")}, FRAME, random.Random(6))
        assert result.senders == ["b"]

    def test_non_member_sender_rejected(self):
        with pytest.raises(ValueError):
            run_round(["a", "b"], {"z": framed(b"m")}, FRAME, random.Random(0))

    def test_group_too_small_rejected(self):
        with pytest.raises(ValueError):
            run_round(["a"], {}, FRAME, random.Random(0))

    def test_expected_messages_invalid_group(self):
        with pytest.raises(ValueError):
            expected_messages(1)

    def test_tampered_shares_disrupt_recovery(self):
        group = ["a", "b", "c", "d"]
        message = framed(b"legitimate")
        garbage = bytes([0xAB] * FRAME)
        result = run_round(
            group,
            {"a": message},
            FRAME,
            random.Random(7),
            tampered_shares={"d": garbage},
        )
        # With a disruptor replacing its shares, honest receivers no longer
        # recover the original message.
        assert result.recovered_by("b") != message

    def test_tampered_share_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            run_round(
                ["a", "b"],
                {},
                FRAME,
                random.Random(0),
                tampered_shares={"a": b"short"},
            )

    def test_anonymity_shares_alone_do_not_identify_sender(self):
        # Every member transmits the same number of uniformly random-looking
        # shares whether or not it is the sender: the traffic pattern is
        # sender-independent, which is the observable a passive attacker gets.
        group = ["a", "b", "c", "d"]
        result = run_round(group, {"a": framed(b"msg")}, FRAME, random.Random(8))
        counts = set(result.messages_per_member.values())
        assert len(counts) == 1
