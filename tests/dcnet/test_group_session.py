"""Tests for the multi-round DC-net group session."""

import random

import pytest

from repro.dcnet.group_session import DCNetGroupSession
from repro.dcnet.round import expected_messages


def make_session(size=5, seed=0, **kwargs):
    return DCNetGroupSession(list(range(size)), random.Random(seed), **kwargs)


class TestSessionBasics:
    def test_group_too_small_rejected(self):
        with pytest.raises(ValueError):
            DCNetGroupSession([1], random.Random(0))

    def test_queue_for_non_member_rejected(self):
        session = make_session()
        with pytest.raises(ValueError):
            session.queue_message(99, b"tx")

    def test_empty_payload_rejected(self):
        session = make_session()
        with pytest.raises(ValueError):
            session.queue_message(0, b"")

    def test_group_size(self):
        assert make_session(size=7).group_size == 7

    def test_expected_round_messages_matches_formula(self):
        session = make_session(size=6)
        assert session.expected_round_messages() == expected_messages(6)


class TestIdleRounds:
    def test_idle_round_outcome(self):
        session = make_session()
        outcome = session.run_round()
        assert outcome.kind == "idle"
        assert outcome.payload is None

    def test_idle_round_uses_announcement_frames_only(self):
        session = make_session(size=5)
        outcome = session.run_round()
        assert outcome.messages_sent == expected_messages(5)
        assert outcome.bytes_sent == expected_messages(5) * 8

    def test_idle_stats_accumulate(self):
        session = make_session()
        for _ in range(3):
            session.run_round()
        assert session.stats.idle_rounds == 3
        assert session.stats.rounds == 3


class TestSingleSender:
    def test_payload_delivered(self):
        session = make_session()
        session.queue_message(2, b"a transaction")
        outcome = session.run_round()
        assert outcome.kind == "delivery"
        assert outcome.payload == b"a transaction"
        assert outcome.true_sender == 2

    def test_queue_drains(self):
        session = make_session()
        session.queue_message(2, b"tx")
        assert session.pending_messages() == 1
        session.run_round()
        assert session.pending_messages() == 0

    def test_delivery_costs_two_rounds_of_messages(self):
        session = make_session(size=4)
        session.queue_message(1, b"tx payload")
        outcome = session.run_round()
        # Announcement round plus payload round.
        assert outcome.messages_sent == 2 * expected_messages(4)

    def test_large_payload_roundtrip(self):
        session = make_session()
        payload = bytes(range(256)) * 4
        session.queue_message(0, payload)
        outcome = session.run_round()
        assert outcome.payload == payload

    def test_multiple_messages_from_one_member(self):
        session = make_session()
        session.queue_message(3, b"tx-1")
        session.queue_message(3, b"tx-2")
        outcomes = session.run_until_empty()
        delivered = [o.payload for o in outcomes if o.kind == "delivery"]
        assert delivered == [b"tx-1", b"tx-2"]


class TestCollisions:
    def test_two_senders_collide_then_recover(self):
        session = make_session(seed=3)
        session.queue_message(0, b"tx from zero")
        session.queue_message(1, b"tx from one")
        outcomes = session.run_until_empty(max_rounds=100)
        kinds = [o.kind for o in outcomes]
        assert "collision" in kinds
        delivered = {o.payload for o in outcomes if o.kind == "delivery"}
        assert delivered == {b"tx from zero", b"tx from one"}

    def test_collision_counted_in_stats(self):
        session = make_session(seed=3)
        session.queue_message(0, b"a")
        session.queue_message(1, b"b")
        session.run_until_empty(max_rounds=100)
        assert session.stats.collisions >= 1
        assert session.stats.deliveries == 2

    def test_many_senders_eventually_all_delivered(self):
        session = make_session(size=6, seed=7)
        for member in range(6):
            session.queue_message(member, f"tx-{member}".encode())
        outcomes = session.run_until_empty(max_rounds=500)
        delivered = {o.payload for o in outcomes if o.kind == "delivery"}
        assert delivered == {f"tx-{m}".encode() for m in range(6)}

    def test_run_until_empty_raises_when_not_drained(self):
        session = make_session()
        session.queue_message(0, b"tx")
        session.queue_message(1, b"tx2")
        with pytest.raises(RuntimeError):
            session.run_until_empty(max_rounds=1)


class TestFixedFrameMode:
    def test_delivery_without_announcements(self):
        session = make_session(announcement_rounds=False, fixed_frame_length=64)
        session.queue_message(4, b"fixed frame payload")
        outcome = session.run_round()
        assert outcome.kind == "delivery"
        assert outcome.payload == b"fixed frame payload"

    def test_idle_round_costs_full_frames(self):
        session = make_session(
            size=4, announcement_rounds=False, fixed_frame_length=128
        )
        outcome = session.run_round()
        assert outcome.kind == "idle"
        assert outcome.bytes_sent == expected_messages(4) * 128

    def test_announcement_mode_idle_cheaper_than_fixed(self):
        announced = make_session(size=5, announcement_rounds=True)
        fixed = make_session(size=5, announcement_rounds=False, fixed_frame_length=256)
        a = announced.run_round()
        f = fixed.run_round()
        assert a.bytes_sent < f.bytes_sent

    def test_fixed_mode_collision_recovery(self):
        session = make_session(
            size=4, seed=5, announcement_rounds=False, fixed_frame_length=64
        )
        session.queue_message(0, b"one")
        session.queue_message(1, b"two")
        outcomes = session.run_until_empty(max_rounds=100)
        delivered = {o.payload for o in outcomes if o.kind == "delivery"}
        assert delivered == {b"one", b"two"}
