"""Tests for the simplified blame protocol."""

import random

import pytest

from repro.crypto.pads import xor_bytes, zero_bytes
from repro.dcnet.blame import BlameProtocol
from repro.dcnet.member import DCNetMember


FRAME = 16


def framed(payload: bytes) -> bytes:
    return payload + bytes(FRAME - len(payload))


def run_committed_round(group, sender_messages, rng, cheat=None):
    """Run a round with commitments; returns (protocol, opened, received)."""
    protocol = BlameProtocol(group, FRAME)
    members = {m: DCNetMember(m, group, FRAME) for m in group}
    opened = {}
    received = {m: {} for m in group}
    for member_id in group:
        shares = members[member_id].prepare_shares(
            sender_messages.get(member_id), rng
        )
        if cheat and member_id in cheat:
            shares = cheat[member_id](shares)
        protocol.register_commitments(member_id, members[member_id].sent_shares, rng)
        opened[member_id] = members[member_id].sent_shares
        for peer, share in shares.items():
            received[peer][member_id] = share
    return protocol, opened, received


class TestBlameProtocol:
    def test_requires_valid_group(self):
        with pytest.raises(ValueError):
            BlameProtocol(["only"], FRAME)
        with pytest.raises(ValueError):
            BlameProtocol(["a", "b"], 0)

    def test_commitment_for_non_member_rejected(self):
        protocol = BlameProtocol(["a", "b"], FRAME)
        with pytest.raises(ValueError):
            protocol.register_commitments("z", {}, random.Random(0))

    def test_honest_round_produces_clean_verdict(self):
        group = ["a", "b", "c", "d"]
        rng = random.Random(0)
        protocol, opened, received = run_committed_round(
            group, {"a": framed(b"msg")}, rng
        )
        verdict = protocol.investigate(opened, received, claimed_senders=["a"])
        assert verdict.clean

    def test_honest_collision_is_not_blamed(self):
        group = ["a", "b", "c", "d"]
        rng = random.Random(1)
        protocol, opened, received = run_committed_round(
            group, {"a": framed(b"x"), "b": framed(b"y")}, rng
        )
        verdict = protocol.investigate(opened, received, claimed_senders=["a", "b"])
        assert verdict.blamed == []

    def test_unclaimed_sender_is_blamed(self):
        # Member "d" secretly transmits (claims nothing): detected because the
        # XOR of its opened shares is non-zero.
        group = ["a", "b", "c", "d"]
        rng = random.Random(2)
        protocol, opened, received = run_committed_round(
            group, {"a": framed(b"legit"), "d": framed(b"disrupt")}, rng
        )
        verdict = protocol.investigate(opened, received, claimed_senders=["a"])
        assert verdict.blamed == ["d"]
        assert "without claiming" in verdict.reasons["d"]

    def test_wire_mismatch_is_blamed(self):
        group = ["a", "b", "c"]
        rng = random.Random(3)
        protocol, opened, received = run_committed_round(
            group, {"a": framed(b"legit")}, rng
        )
        # "c" sent something different from what it committed to / opened.
        victim = next(iter(received["a"]))  # any sender into a's inbox
        received["a"]["c"] = xor_bytes(received["a"]["c"], framed(b"garbage"))
        verdict = protocol.investigate(opened, received, claimed_senders=["a"])
        assert "c" in verdict.blamed

    def test_refusing_to_open_is_blamed(self):
        group = ["a", "b", "c"]
        rng = random.Random(4)
        protocol, opened, received = run_committed_round(group, {}, rng)
        del opened["b"]
        verdict = protocol.investigate(opened, received, claimed_senders=[])
        assert verdict.blamed == ["b"]

    def test_incomplete_opening_is_blamed(self):
        group = ["a", "b", "c"]
        rng = random.Random(5)
        protocol, opened, received = run_committed_round(group, {}, rng)
        opened["b"] = {k: v for k, v in list(opened["b"].items())[:1]}
        verdict = protocol.investigate(opened, received, claimed_senders=[])
        assert "b" in verdict.blamed

    def test_opening_mismatching_commitment_is_blamed(self):
        group = ["a", "b", "c"]
        rng = random.Random(6)
        protocol, opened, received = run_committed_round(group, {}, rng)
        opened["c"] = {peer: zero_bytes(FRAME) for peer in opened["c"]}
        # Unless "c" genuinely committed to all-zero shares (astronomically
        # unlikely), the opening cannot match the commitment digests.
        verdict = protocol.investigate(opened, received, claimed_senders=[])
        assert "c" in verdict.blamed

    def test_missing_shares_recommend_dissolution(self):
        group = ["a", "b", "c"]
        rng = random.Random(7)
        protocol, opened, received = run_committed_round(group, {}, rng)
        received["a"].pop("b")  # a reports never receiving b's share
        # b's opening is consistent, so nobody is individually blamed, but the
        # round was disrupted: the group should dissolve and re-form.
        verdict = protocol.investigate(opened, received, claimed_senders=[])
        assert verdict.blamed == [] or "b" in verdict.blamed
        if not verdict.blamed:
            assert verdict.dissolve_recommended
