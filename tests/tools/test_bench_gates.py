"""scripts/bench.py gates: wall-clock regression and memory budget.

The benchmark harness has two failure gates — the calibrated events/sec
regression threshold (``compare_reports``) and the per-scenario peak-RSS
budget (``memory_gate``).  Both are exercised here on synthetic reports and
through the CLI with a stubbed-in scenario suite, so a broken gate fails in
the plain tier-1 environment instead of silently letting perf or memory
regressions into ``benchmarks/results/``.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from benchmarks import harness  # noqa: E402

SCRIPT = REPO_ROOT / "scripts" / "bench.py"
_spec = importlib.util.spec_from_file_location("bench_cli", SCRIPT)
bench_cli = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_cli)


def _report(results, calibration=1.0):
    return {
        "meta": {
            "calibration_ops_per_second": calibration,
            "created_at": 1.0,
        },
        "results": results,
    }


def _result(eps, budget_mib=None, rss_mib=10.0):
    result = {
        "events_per_second": eps,
        "events": 100,
        "median_seconds": 100 / eps,
        "min_seconds": 100 / eps,
        "peak_rss_kib": int(rss_mib * 1024),
        "repeats": 1,
        "warmup": 0,
        "description": "synthetic",
    }
    if budget_mib is not None:
        result["memory_budget_mib"] = budget_mib
    return result


# ----------------------------------------------------------------------
# Wall-clock gate (compare_reports)
# ----------------------------------------------------------------------
class TestCompareGate:
    def test_regression_beyond_threshold_flagged(self):
        baseline = _report({"a": _result(1000.0)})
        current = _report({"a": _result(700.0)})
        (entry,) = harness.compare_reports(
            baseline, current, max_regression=0.25
        )
        assert entry["status"] == "regression"
        assert entry["speedup"] == pytest.approx(0.7)

    def test_within_threshold_ok(self):
        baseline = _report({"a": _result(1000.0)})
        current = _report({"a": _result(800.0)})
        (entry,) = harness.compare_reports(
            baseline, current, max_regression=0.25
        )
        assert entry["status"] == "ok"

    def test_calibration_normalises_machine_speed(self):
        # Half the raw eps on a machine measured at half the calibration
        # speed is not a regression.
        baseline = _report({"a": _result(1000.0)}, calibration=2.0)
        current = _report({"a": _result(500.0)}, calibration=1.0)
        (entry,) = harness.compare_reports(
            baseline, current, max_regression=0.25
        )
        assert entry["status"] == "ok"

    def test_missing_scenarios_never_fail(self):
        baseline = _report({"a": _result(1000.0)})
        current = _report({"b": _result(1000.0)})
        statuses = {
            entry["status"]
            for entry in harness.compare_reports(baseline, current)
        }
        assert statuses == {"missing"}

    def test_counter_blocks_tolerated_in_both_directions(self):
        # Pre-telemetry baselines compare against instrumented reports and
        # vice versa: the counter block is surfaced when present, None when
        # absent, and never affects the status.
        with_counters = _result(1000.0)
        with_counters["telemetry"] = {
            "counters": {"events_dispatched": 100},
            "gauges": {}, "histograms": {}, "fallbacks": {}, "shards": {},
        }
        without = _result(1000.0)

        (entry,) = harness.compare_reports(
            _report({"a": dict(without)}), _report({"a": with_counters})
        )
        assert entry["status"] == "ok"
        assert entry["baseline_counters"] is None
        assert entry["current_counters"] == {"events_dispatched": 100}

        (entry,) = harness.compare_reports(
            _report({"a": with_counters}), _report({"a": dict(without)})
        )
        assert entry["status"] == "ok"
        assert entry["baseline_counters"] == {"events_dispatched": 100}
        assert entry["current_counters"] is None


# ----------------------------------------------------------------------
# Memory gate (memory_gate)
# ----------------------------------------------------------------------
class TestMemoryGate:
    def test_over_budget_flagged(self):
        report = _report(
            {"big": _result(1000.0, budget_mib=100.0, rss_mib=150.0)}
        )
        (entry,) = harness.memory_gate(report)
        assert entry["status"] == "over"
        assert entry["peak_rss_mib"] == pytest.approx(150.0)
        assert entry["budget_mib"] == 100.0

    def test_within_budget_ok(self):
        report = _report(
            {"big": _result(1000.0, budget_mib=100.0, rss_mib=50.0)}
        )
        (entry,) = harness.memory_gate(report)
        assert entry["status"] == "ok"

    def test_unbudgeted_scenarios_not_listed(self):
        report = _report({"small": _result(1000.0)})
        assert harness.memory_gate(report) == []

    def test_budget_travels_inside_the_report(self):
        # run_scenario embeds the budget so the gate needs no live suite.
        scenario = harness.flood_scenario(
            "gate_probe", size=30, degree=4, memory_budget_mib=123.0
        )
        result = harness.run_scenario(scenario, repeats=1, warmup=0)
        assert result["memory_budget_mib"] == 123.0


# ----------------------------------------------------------------------
# Telemetry collection and the overhead gate
# ----------------------------------------------------------------------
class TestTelemetryCollection:
    def test_collect_telemetry_embeds_counter_block(self):
        scenario = harness.flood_scenario("probe", size=30, degree=4)
        result = harness.run_scenario(
            scenario, repeats=1, warmup=0, collect_telemetry=True
        )
        telemetry = result["telemetry"]
        assert telemetry["counters"]["events_dispatched"] > 0
        # Spans would churn every report diff with wall-clock noise.
        assert "spans" not in telemetry

    def test_collect_telemetry_off_by_default(self):
        scenario = harness.flood_scenario("probe", size=30, degree=4)
        result = harness.run_scenario(scenario, repeats=1, warmup=0)
        assert "telemetry" not in result

    def test_telemetry_overhead_measures_both_sides(self, monkeypatch):
        scenario = harness.flood_scenario("probe", size=30, degree=4)
        monkeypatch.setitem(harness.SCENARIOS, "probe", scenario)
        gate = harness.telemetry_overhead("probe", repeats=1, warmup=0)
        assert gate["name"] == "probe"
        assert gate["off_seconds"] > 0
        assert gate["on_seconds"] > 0
        assert gate["overhead"] == pytest.approx(
            gate["on_seconds"] / gate["off_seconds"] - 1.0
        )


# ----------------------------------------------------------------------
# CLI exit codes (scripts/bench.py main)
# ----------------------------------------------------------------------
def _stub_suite(monkeypatch, budget_mib):
    """Replace the tracked suite with one tiny budgeted flood scenario."""
    scenario = harness.flood_scenario(
        "stub_tier",
        size=30,
        degree=4,
        smoke=True,
        memory_budget_mib=budget_mib,
    )
    monkeypatch.setattr(harness, "SCENARIOS", {scenario.name: scenario})


class TestCliGates:
    def test_memory_gate_trips_even_without_baseline(
        self, monkeypatch, tmp_path, capsys
    ):
        # Any real process has far more than 0.001 MiB resident, so the
        # stub tier is guaranteed over budget; no baseline exists, and the
        # gate must still fail the invocation with the per-scenario table.
        _stub_suite(monkeypatch, budget_mib=0.001)
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "memory budgets:" in out
        assert "stub_tier" in out
        assert "FAIL: peak RSS above the scenario memory budget" in out

    def test_memory_gate_trips_under_no_compare(
        self, monkeypatch, tmp_path
    ):
        _stub_suite(monkeypatch, budget_mib=0.001)
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path),
             "--no-compare", "--no-write"]
        )
        assert code == 1

    def test_memory_gate_passes_within_budget(
        self, monkeypatch, tmp_path
    ):
        _stub_suite(monkeypatch, budget_mib=1e9)
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path),
             "--no-compare", "--no-write"]
        )
        assert code == 0

    def test_wallclock_gate_trips_against_baseline(
        self, monkeypatch, tmp_path, capsys
    ):
        # A baseline claiming absurd calibrated throughput forces the
        # regression branch regardless of machine speed.
        _stub_suite(monkeypatch, budget_mib=1e9)
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(_report(
            {"stub_tier": _result(1e15)}
        )))
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path), "--no-write",
             "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL: regression beyond" in out

    def test_both_gates_pass_exit_zero(
        self, monkeypatch, tmp_path, capsys
    ):
        _stub_suite(monkeypatch, budget_mib=1e9)
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(_report(
            {"stub_tier": _result(1e-9)}
        )))
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path), "--no-write",
             "--baseline", str(baseline)]
        )
        assert code == 0

    def test_new_scenario_without_baseline_reported_as_new(
        self, monkeypatch, tmp_path, capsys
    ):
        # A freshly added tier is absent from the baseline: the comparison
        # must say "new scenario", never flag it, and still exit zero.
        _stub_suite(monkeypatch, budget_mib=1e9)
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(_report(
            {"unrelated_tier": _result(1000.0)}
        )))
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path), "--no-write",
             "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "new scenario, no baseline" in out

    def test_old_baseline_without_counters_compares_clean(
        self, monkeypatch, tmp_path, capsys
    ):
        # A report written before the telemetry subsystem has no counter
        # blocks; comparing against it must print the tolerant counter
        # line and exit zero.
        _stub_suite(monkeypatch, budget_mib=1e9)
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(_report(
            {"stub_tier": _result(1e-9)}
        )))
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path), "--no-write",
             "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "counters: events_dispatched - ->" in out

    def test_smoke_overhead_gate_trips(self, monkeypatch, tmp_path, capsys):
        # The gate itself rides on --smoke and the flood tier's presence;
        # stub both and force an over-threshold measurement.
        scenario = harness.flood_scenario(
            "e11_flood_5000", size=30, degree=4, smoke=True
        )
        monkeypatch.setattr(
            harness, "SCENARIOS", {scenario.name: scenario}
        )
        monkeypatch.setattr(
            harness,
            "telemetry_overhead",
            lambda name, repeats=3, warmup=1: {
                "name": name,
                "off_seconds": 1.0,
                "on_seconds": 1.10,
                "overhead": 0.10,
            },
        )
        code = bench_cli.main(
            ["--smoke", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path),
             "--no-write", "--no-compare"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL: enabled-telemetry overhead above threshold" in out

    def test_smoke_overhead_gate_threshold_overridable(
        self, monkeypatch, tmp_path
    ):
        scenario = harness.flood_scenario(
            "e11_flood_5000", size=30, degree=4, smoke=True
        )
        monkeypatch.setattr(
            harness, "SCENARIOS", {scenario.name: scenario}
        )
        monkeypatch.setattr(
            harness,
            "telemetry_overhead",
            lambda name, repeats=3, warmup=1: {
                "name": name,
                "off_seconds": 1.0,
                "on_seconds": 1.10,
                "overhead": 0.10,
            },
        )
        code = bench_cli.main(
            ["--smoke", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path),
             "--no-write", "--no-compare",
             "--telemetry-overhead-threshold", "0.5"]
        )
        assert code == 0

    def test_no_telemetry_skips_gate_and_counters(
        self, monkeypatch, tmp_path
    ):
        _stub_suite(monkeypatch, budget_mib=1e9)
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path),
             "--no-write", "--no-compare", "--no-telemetry"]
        )
        assert code == 0

    def test_baseline_only_scenario_reported_as_unmeasured(
        self, monkeypatch, tmp_path, capsys
    ):
        # The opposite direction — present in the baseline, filtered out of
        # this run — gets its own distinct message.
        _stub_suite(monkeypatch, budget_mib=1e9)
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(_report({
            "stub_tier": _result(1e-9),
            "retired_tier": _result(1000.0),
        })))
        code = bench_cli.main(
            ["--scenarios", "stub_tier", "--repeats", "1", "--warmup", "0",
             "--label", "gate", "--output-dir", str(tmp_path), "--no-write",
             "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "retired_tier" in out
        assert "in baseline only; not measured in this run" in out
