"""scripts/coverage_report.py: per-package floors over coverage JSON.

pytest-cov only runs in CI; these tests feed the report script synthetic
coverage.py JSON documents, so the aggregation and the floor gate are
exercised in the plain tier-1 environment.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "coverage_report.py"

_spec = importlib.util.spec_from_file_location("coverage_report", SCRIPT)
coverage_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(coverage_report)


def _entry(covered, statements):
    return {"summary": {
        "covered_lines": covered, "num_statements": statements,
    }}


def _report(files, percent=90.0):
    return {"files": files, "totals": {"percent_covered": percent}}


def _write(tmp_path, document):
    path = tmp_path / "coverage.json"
    path.write_text(json.dumps(document))
    return path


def _run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestAggregation:
    def test_files_group_into_packages(self):
        packages = coverage_report.collect_packages(_report({
            "src/repro/dcnet/blame.py": _entry(90, 100),
            "src/repro/dcnet/round.py": _entry(50, 50),
            "src/repro/network/simulator.py": _entry(70, 100),
            "src/repro/__init__.py": _entry(1, 1),
        }))
        assert packages["dcnet"] == (140, 150)
        assert packages["network"] == (70, 100)
        assert packages["(root)"] == (1, 1)

    def test_critical_packages_carry_elevated_floors(self):
        assert coverage_report.floor_for("dcnet", 60.0) == 85.0
        assert coverage_report.floor_for("blockchain", 60.0) == 85.0
        assert coverage_report.floor_for("network", 60.0) == 60.0


class TestGate:
    def test_passing_report_exits_zero(self, tmp_path):
        proc = _run(_write(tmp_path, _report({
            "src/repro/dcnet/blame.py": _entry(95, 100),
            "src/repro/blockchain/chain.py": _entry(90, 100),
            "src/repro/network/simulator.py": _entry(70, 100),
        })))
        assert proc.returncode == 0, proc.stderr
        assert "dcnet" in proc.stdout
        assert "critical" in proc.stdout
        assert "overall: 90.0%" in proc.stdout

    def test_critical_package_below_floor_fails(self, tmp_path):
        # 70% would clear the default floor, but dcnet's floor is 85%.
        proc = _run(_write(tmp_path, _report({
            "src/repro/dcnet/blame.py": _entry(70, 100),
            "src/repro/network/simulator.py": _entry(70, 100),
        })))
        assert proc.returncode == 1
        assert "repro/dcnet" in proc.stderr
        assert "85% floor" in proc.stderr

    def test_default_floor_is_overridable(self, tmp_path):
        report = _write(tmp_path, _report({
            "src/repro/network/simulator.py": _entry(50, 100),
        }))
        assert _run(report).returncode == 1
        assert _run(report, "--floor", "40").returncode == 0

    def test_empty_report_is_an_error(self, tmp_path):
        proc = _run(_write(tmp_path, _report({})))
        assert proc.returncode == 2
