"""Tests for botnets, observer views, first-spy, rumor centrality, collusion."""

import random

import networkx as nx
import pytest

from repro.adversary.botnet import deploy_botnet, inject_supernodes
from repro.adversary.collusion import group_collusion_posterior
from repro.adversary.first_spy import FirstSpyEstimator
from repro.adversary.observer import AdversaryView
from repro.adversary.rumor_centrality import rumor_centrality, rumor_source_estimate
from repro.broadcast.flood import FloodNode
from repro.network.latency import PerEdgeLatency
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay, regular_tree_overlay


class TestBotnet:
    def test_fraction_of_nodes_compromised(self):
        graph = random_regular_overlay(100, degree=4, seed=0)
        botnet = deploy_botnet(graph, 0.2, random.Random(1))
        assert len(botnet.observers) == 20
        assert botnet.fraction == 0.2

    def test_protected_nodes_never_compromised(self):
        graph = random_regular_overlay(50, degree=4, seed=0)
        botnet = deploy_botnet(graph, 0.5, random.Random(1), protected={0, 1})
        assert 0 not in botnet.observers
        assert 1 not in botnet.observers

    def test_zero_fraction(self):
        graph = random_regular_overlay(50, degree=4, seed=0)
        botnet = deploy_botnet(graph, 0.0, random.Random(1))
        assert botnet.observers == set()

    def test_invalid_fraction_rejected(self):
        graph = random_regular_overlay(50, degree=4, seed=0)
        with pytest.raises(ValueError):
            deploy_botnet(graph, 1.0, random.Random(1))

    def test_is_compromised(self):
        graph = random_regular_overlay(50, degree=4, seed=0)
        botnet = deploy_botnet(graph, 0.1, random.Random(1))
        for node in botnet.observers:
            assert botnet.is_compromised(node)

    def test_supernode_injection(self):
        graph = random_regular_overlay(50, degree=4, seed=0)
        before = graph.number_of_nodes()
        botnet = inject_supernodes(graph, count=3, connections_per_node=10,
                                   rng=random.Random(2))
        assert graph.number_of_nodes() == before + 3
        assert len(botnet.supernodes) == 3
        for spy in botnet.supernodes:
            assert graph.degree(spy) == 10

    def test_supernode_invalid_parameters(self):
        graph = random_regular_overlay(20, degree=4, seed=0)
        with pytest.raises(ValueError):
            inject_supernodes(graph, 0, 5, random.Random(0))
        with pytest.raises(ValueError):
            inject_supernodes(graph, 1, 100, random.Random(0))


def _flood_simulation(num_nodes=100, source=0, seed=0):
    graph = random_regular_overlay(num_nodes, degree=8, seed=seed)
    rng = random.Random(seed)
    sim = Simulator(graph, latency=PerEdgeLatency(rng, 0.05, 0.3), seed=seed)
    sim.populate(FloodNode)
    sim.node(source).originate("tx")
    sim.run_until_idle()
    return graph, sim


class TestAdversaryView:
    def test_only_observer_deliveries_visible(self):
        graph, sim = _flood_simulation()
        view = AdversaryView(sim, observers=[1, 2, 3])
        assert all(obs.receiver in {1, 2, 3} for obs in view.observations)

    def test_first_observation_is_earliest(self):
        graph, sim = _flood_simulation()
        view = AdversaryView(sim, observers=list(range(10, 30)))
        first = view.first_observation("tx")
        assert first is not None
        assert all(first.time <= obs.time for obs in view.observations_of("tx"))

    def test_first_relayers_exclude_observers(self):
        graph, sim = _flood_simulation()
        observers = set(range(10, 30))
        view = AdversaryView(sim, observers=observers)
        relayers = view.first_relayers("tx")
        assert all(node not in observers for node in relayers)

    def test_unknown_payload_empty(self):
        graph, sim = _flood_simulation()
        view = AdversaryView(sim, observers=[1])
        assert view.observations_of("nope") == []
        assert view.first_observation("nope") is None


class TestFirstSpy:
    def test_identifies_flood_source_with_many_spies(self):
        # With 30% of a flooding network compromised the source's neighbours
        # are very likely spies, so the earliest relayer is the source itself.
        correct = 0
        for seed in range(10):
            graph, sim = _flood_simulation(num_nodes=80, source=0, seed=seed)
            rng = random.Random(seed + 100)
            observers = deploy_botnet(graph, 0.3, rng, protected={0}).observers
            estimator = FirstSpyEstimator(sim, observers)
            if estimator.guess("tx") == 0:
                correct += 1
        assert correct >= 5

    def test_abstains_without_observations(self):
        graph, sim = _flood_simulation()
        estimator = FirstSpyEstimator(sim, observers=[])
        assert estimator.guess("tx") is None
        assert estimator.posterior("tx") == {}

    def test_posterior_sums_to_one_and_ranks_first_highest(self):
        graph, sim = _flood_simulation()
        observers = set(range(20, 60))
        estimator = FirstSpyEstimator(sim, observers)
        posterior = estimator.posterior("tx")
        assert sum(posterior.values()) == pytest.approx(1.0)
        guess = estimator.guess("tx")
        assert posterior[guess] == max(posterior.values())


class TestRumorCentrality:
    def test_center_of_star_has_highest_centrality(self):
        graph = nx.star_graph(6)  # node 0 is the hub
        infected = list(graph.nodes)
        assert rumor_source_estimate(graph, infected) == 0

    def test_non_infected_candidate_scores_minus_infinity(self):
        graph = nx.path_graph(5)
        assert rumor_centrality(graph, [0, 1, 2], 4) == float("-inf")

    def test_estimates_true_source_of_symmetric_infection(self):
        # Infect a balanced ball around the true source of a regular tree:
        # the source is the rumor centre.
        graph = regular_tree_overlay(branching=3, depth=4)
        source = 0
        infected = [
            node
            for node in graph.nodes
            if nx.shortest_path_length(graph, source, node) <= 2
        ]
        assert rumor_source_estimate(graph, infected) == source

    def test_empty_infection(self):
        graph = nx.path_graph(3)
        assert rumor_source_estimate(graph, []) is None

    def test_single_infected_node(self):
        graph = nx.path_graph(3)
        assert rumor_source_estimate(graph, [1]) == 1

    def test_disconnected_snapshot_falls_back_to_component(self):
        graph = nx.path_graph(10)
        score = rumor_centrality(graph, [0, 1, 8, 9], 0)
        assert score != float("-inf")


class TestCollusion:
    def test_honest_members_indistinguishable(self):
        posterior = group_collusion_posterior(
            group=["a", "b", "c", "d", "e"], compromised=["d", "e"], true_sender="a"
        )
        assert set(posterior) == {"a", "b", "c"}
        assert all(p == pytest.approx(1 / 3) for p in posterior.values())

    def test_compromised_sender_is_exposed(self):
        posterior = group_collusion_posterior(
            group=["a", "b", "c"], compromised=["a"], true_sender="a"
        )
        assert posterior == {"a": 1.0}

    def test_no_colluders_full_anonymity(self):
        posterior = group_collusion_posterior(
            group=["a", "b", "c", "d"], compromised=[], true_sender="b"
        )
        assert all(p == pytest.approx(0.25) for p in posterior.values())

    def test_sender_not_in_group_rejected(self):
        with pytest.raises(ValueError):
            group_collusion_posterior(["a", "b"], [], true_sender="z")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            group_collusion_posterior([], [], true_sender="a")
