"""Tests for overlay topology generators."""

import networkx as nx
import pytest

from repro.network.topology import (
    barabasi_albert_overlay,
    bitcoin_like_overlay,
    complete_overlay,
    erdos_renyi_overlay,
    line_overlay,
    random_regular_overlay,
    regular_tree_overlay,
    scale_free_overlay,
    small_world_overlay,
    watts_strogatz_overlay,
)


class TestRandomRegular:
    def test_size_and_degree(self):
        graph = random_regular_overlay(100, degree=8, seed=0)
        assert graph.number_of_nodes() == 100
        assert all(degree == 8 for _, degree in graph.degree())

    def test_connected(self):
        assert nx.is_connected(random_regular_overlay(50, degree=4, seed=1))

    def test_seed_reproducibility(self):
        a = random_regular_overlay(60, degree=6, seed=42)
        b = random_regular_overlay(60, degree=6, seed=42)
        assert set(a.edges) == set(b.edges)

    def test_odd_degree_sum_rejected(self):
        with pytest.raises(ValueError):
            random_regular_overlay(9, degree=3)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            random_regular_overlay(4, degree=8)


class TestErdosRenyi:
    def test_connected(self):
        assert nx.is_connected(erdos_renyi_overlay(200, avg_degree=8, seed=0))

    def test_average_degree_roughly_matches(self):
        graph = erdos_renyi_overlay(500, avg_degree=10, seed=1)
        avg = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 7 <= avg <= 13

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_overlay(1)


class TestOtherTopologies:
    def test_barabasi_albert_connected(self):
        assert nx.is_connected(barabasi_albert_overlay(100, attachments=3, seed=0))

    def test_watts_strogatz_connected(self):
        assert nx.is_connected(watts_strogatz_overlay(100, neighbours=6, seed=0))

    def test_line_is_a_path(self):
        graph = line_overlay(10)
        assert graph.number_of_edges() == 9
        degrees = sorted(degree for _, degree in graph.degree())
        assert degrees == [1, 1] + [2] * 8

    def test_regular_tree_structure(self):
        graph = regular_tree_overlay(branching=3, depth=3)
        assert nx.is_tree(graph)
        # 1 + 3 + 9 + 27 nodes for branching 3, depth 3
        assert graph.number_of_nodes() == 40

    def test_regular_tree_invalid_params(self):
        with pytest.raises(ValueError):
            regular_tree_overlay(branching=1, depth=3)
        with pytest.raises(ValueError):
            regular_tree_overlay(branching=3, depth=0)

    def test_complete_overlay(self):
        graph = complete_overlay(6)
        assert graph.number_of_edges() == 15

    def test_line_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_overlay(1)


class TestBitcoinLike:
    def test_sizes_and_attributes(self):
        graph = bitcoin_like_overlay(50, 20, outgoing=4, seed=0)
        assert graph.number_of_nodes() == 70
        reachable = [n for n, data in graph.nodes(data=True) if data["reachable"]]
        unreachable = [
            n for n, data in graph.nodes(data=True) if not data["reachable"]
        ]
        assert len(reachable) == 50
        assert len(unreachable) == 20

    def test_unreachable_nodes_have_exactly_outgoing_links(self):
        graph = bitcoin_like_overlay(50, 20, outgoing=4, seed=1)
        for node, data in graph.nodes(data=True):
            if not data["reachable"]:
                assert graph.degree(node) == 4

    def test_unreachable_nodes_not_interconnected(self):
        graph = bitcoin_like_overlay(40, 30, outgoing=3, seed=2)
        for u, v in graph.edges:
            assert graph.nodes[u]["reachable"] or graph.nodes[v]["reachable"]

    def test_connected(self):
        assert nx.is_connected(bitcoin_like_overlay(30, 10, outgoing=3, seed=3))


class TestSmallWorld:
    def test_connected_and_sized(self):
        graph = small_world_overlay(120, neighbours=8, seed=0)
        assert graph.number_of_nodes() == 120
        assert nx.is_connected(graph)

    def test_shortcuts_added_not_rewired(self):
        # Newman–Watts only adds edges to the ring lattice, so every lattice
        # edge is still present and the edge count never drops below it.
        graph = small_world_overlay(100, neighbours=6, shortcut_probability=0.2, seed=1)
        lattice = nx.watts_strogatz_graph(100, 6, 0.0)
        assert set(lattice.edges) <= {tuple(sorted(e)) for e in graph.edges} | set(graph.edges)
        assert graph.number_of_edges() >= lattice.number_of_edges()

    def test_seed_reproducibility(self):
        a = small_world_overlay(80, seed=7)
        b = small_world_overlay(80, seed=7)
        assert set(a.edges) == set(b.edges)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            small_world_overlay(2)
        with pytest.raises(ValueError):
            small_world_overlay(50, shortcut_probability=1.5)


class TestScaleFree:
    def test_connected_and_sized(self):
        graph = scale_free_overlay(150, attachments=4, seed=0)
        assert graph.number_of_nodes() == 150
        assert nx.is_connected(graph)

    def test_hub_heavy_degree_distribution(self):
        # Preferential attachment: the busiest node carries far more links
        # than the median peer.
        graph = scale_free_overlay(300, attachments=4, seed=2)
        degrees = sorted(degree for _, degree in graph.degree())
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2]

    def test_seed_reproducibility(self):
        a = scale_free_overlay(100, seed=9)
        b = scale_free_overlay(100, seed=9)
        assert set(a.edges) == set(b.edges)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            scale_free_overlay(4, attachments=4)
        with pytest.raises(ValueError):
            scale_free_overlay(50, triangle_probability=-0.1)
