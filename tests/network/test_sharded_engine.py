"""The sharded multi-process engine: partition, parity, fallback, drain.

The engine-equivalence *properties* live in
``tests/property/test_engine_equivalence.py``; this module pins the
sharded engine's unit surface:

* the committed golden observation-log digests, reproduced bit-for-bit
  under ``engine="sharded"`` (through the multi-process path where the
  configuration is eligible, through the exact in-process fallback where
  it is not);
* path selection — which configurations take the worker-process window
  loop and which must fall back (loss, jitter, per-node protocol RNG,
  ``until`` bounds, live timers, ``shards=1``), with identical results
  either way;
* fixed-seed equivalence scenarios the random properties are unlikely to
  hit: simultaneous multi-payload origination with heterogeneous payload
  sizes, sequential broadcasts over one session, static churn
  (failed nodes and severed links), and ``max_events`` stop + resume;
* :func:`repro.network.topology.bfs_partition` invariants and the
  partition cache lifecycle on the overlay graph;
* the observation store's deferred cohort adoption: counters and log
  contents equal to the event engine's eagerly recorded ones.
"""

import hashlib

import pytest

import repro.network.sharded as sharded_mod
from repro.broadcast.flood import FloodNode, run_flood
from repro.broadcast.gossip import run_gossip
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency
from repro.network.simulator import Simulator
from repro.network.sharded import (
    PARTITION_CACHE_KEY,
    default_shard_count,
    shard_assignment,
)
from repro.network.batched import csr_topology
from repro.network.topology import (
    bfs_order,
    bfs_partition,
    random_regular_overlay,
)


def observation_digest(sim: Simulator) -> str:
    digest = hashlib.sha256()
    for obs in sim.iter_observations():
        digest.update(
            repr(
                (
                    obs.time,
                    obs.receiver,
                    obs.sender,
                    obs.message.kind,
                    obs.message.payload_id,
                    obs.message.size_bytes,
                    obs.direct,
                )
            ).encode()
        )
    return digest.hexdigest()


@pytest.fixture
def window_calls(monkeypatch):
    """Record whether the multi-process window loop actually ran."""
    calls = []
    original = sharded_mod._run_windows

    def spy(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(sharded_mod, "_run_windows", spy)
    return calls


def _flood_sim(engine, shards=None, size=80, degree=4, seed=3, run_seed=0,
               conditions=None, node_factory=FloodNode):
    overlay = random_regular_overlay(size, degree=degree, seed=seed)
    if conditions is not None:
        sim = Simulator(
            overlay, seed=run_seed, conditions=conditions,
            engine=engine, shards=shards,
        )
    else:
        sim = Simulator(
            overlay, latency=ConstantLatency(1.0), seed=run_seed,
            engine=engine, shards=shards,
        )
    sim.populate(node_factory)
    return sim


class TestGoldenLogsSharded:
    """The committed goldens, reproduced on the sharded engine.

    Same digests as ``tests/network/test_fastpath_determinism.py`` and
    ``tests/network/test_batched_engine.py`` pin — the strongest form of
    the three-engine parity contract.
    """

    def test_flood_log_unchanged(self):
        overlay = random_regular_overlay(200, degree=8, seed=3)
        result = run_flood(
            overlay, source=0, seed=11, engine="sharded", shards=2
        )
        assert observation_digest(result.simulator) == (
            "f4f67c74e1ab6a66909eea87966d0c547ef2bae70d1c9e5d50cc996786577723"
        )

    def test_gossip_log_unchanged_via_fallback(self):
        # Gossip consumes per-node RNG, so the sharded engine must decline
        # the split and still hit the exact same golden in-process.
        overlay = random_regular_overlay(200, degree=8, seed=3)
        result = run_gossip(
            overlay, source=5, seed=12, engine="sharded", shards=2
        )
        assert observation_digest(result.simulator) == (
            "a7e2ffccad25a793a845c35ef15ac6dfe411d28e79a197fec790ce57899b47a7"
        )

    def test_lossy_jittery_log_unchanged_via_fallback(self):
        overlay = random_regular_overlay(120, degree=8, seed=21)
        conditions = NetworkConditions.internet_like(
            loss_probability=0.08, jitter=0.05
        )
        sim = Simulator(
            overlay, seed=77, conditions=conditions,
            engine="sharded", shards=2,
        )
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert sim.dropped_messages == 69
        assert observation_digest(sim) == (
            "b7cd3c318ed9d4bdd86c0f1e56af79ca49e5dfa8d8e93939b1968f70e175e43e"
        )


class TestPathSelection:
    """Which configurations split across processes, which fall back."""

    def test_clean_flood_takes_window_path(self, window_calls):
        sim = _flood_sim("sharded", shards=2)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert len(window_calls) == 1
        assert sim.metrics.reach("tx") == 80

    def test_loss_falls_back(self, window_calls):
        conditions = NetworkConditions(
            latency=ConstantLatency(1.0), loss_probability=0.1
        )
        sim = _flood_sim("sharded", shards=2, conditions=conditions)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert window_calls == []

    def test_jitter_falls_back(self, window_calls):
        conditions = NetworkConditions(
            latency=ConstantLatency(1.0), jitter=0.05
        )
        sim = _flood_sim("sharded", shards=2, conditions=conditions)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert window_calls == []

    def test_protocol_rng_falls_back(self, window_calls):
        overlay = random_regular_overlay(80, degree=4, seed=3)
        run_gossip(overlay, source=0, seed=4, engine="sharded", shards=2)
        assert window_calls == []

    def test_single_shard_falls_back(self, window_calls):
        sim = _flood_sim("sharded", shards=1)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert window_calls == []
        assert sim.metrics.reach("tx") == 80

    def test_until_bound_falls_back(self, window_calls):
        sim = _flood_sim("sharded", shards=2)
        sim.node(0).originate("tx")
        assert sim.run(until=50.0) == 50.0
        assert window_calls == []
        assert sim.metrics.reach("tx") == 80

    def test_live_timer_falls_back(self, window_calls):
        # Any non-delivery queue entry may observe global state between
        # cohorts, so it must force the in-process path.
        sim = _flood_sim("sharded", shards=2)
        sim.schedule(0.5, lambda: None)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert window_calls == []
        assert sim.metrics.reach("tx") == 80

    def test_fallback_results_match_event_engine(self):
        conditions = NetworkConditions(
            latency=ConstantLatency(1.0), loss_probability=0.15
        )
        logs = {}
        for engine in ("event", "sharded"):
            sim = _flood_sim(
                engine, shards=2 if engine == "sharded" else None,
                conditions=conditions, run_seed=9,
            )
            sim.node(0).originate("tx")
            sim.run_until_idle()
            logs[engine] = (
                observation_digest(sim), sim.dropped_messages,
                sim.metrics.reach("tx"),
            )
        assert logs["sharded"] == logs["event"]


class TestFixedEquivalence:
    """Fixed-seed scenarios the random properties are unlikely to draw."""

    @staticmethod
    def _summary(sim, payloads):
        return {
            "digest": observation_digest(sim),
            "events": len(sim.store),
            "churn_dropped": sim.churn_dropped,
            "bytes": sim.metrics.bytes_sent(),
            "reach": {p: sim.metrics.reach(p) for p in payloads},
            "completion": {
                p: sim.metrics.completion_time(p) for p in payloads
            },
        }

    def test_multi_payload_heterogeneous_sizes(self, window_calls):
        # Two simultaneous originators, per-node payload sizes: exercises
        # cross-payload rank interleaving and shard_node_sizes.
        def sized_node(node_id):
            return FloodNode(node_id, payload_size_bytes=200 + node_id % 7 * 16)

        results = {}
        for engine, shards in (("event", None), ("sharded", 3)):
            sim = _flood_sim(
                engine, shards=shards, size=90, degree=6, seed=8,
                node_factory=sized_node,
            )
            sim.node(0).originate("tx-a")
            sim.node(45).originate("tx-b")
            sim.run_until_idle()
            results[engine] = self._summary(sim, ["tx-a", "tx-b"])
        assert results["sharded"] == results["event"]
        assert len(window_calls) == 1

    def test_sequential_broadcasts_share_seen_state(self, window_calls):
        results = {}
        for engine, shards in (("event", None), ("sharded", 2)):
            sim = _flood_sim(engine, shards=shards, size=60, degree=4)
            sim.node(0).originate("tx-1")
            sim.run_until_idle()
            sim.node(7).originate("tx-2")
            sim.run_until_idle()
            results[engine] = self._summary(sim, ["tx-1", "tx-2"])
        assert results["sharded"] == results["event"]
        # Both runs of the session split (prior seen state is mirrored
        # into the workers via prior_seen_ids).
        assert len(window_calls) == 2

    def test_static_churn_and_severed_links(self, window_calls):
        results = {}
        for engine, shards in (("event", None), ("sharded", 2)):
            sim = _flood_sim(engine, shards=shards, size=70, degree=5)
            for node_id in (3, 11, 29):
                sim.fail_node(node_id)
            sim.sever_link(0, next(iter(sim.graph.neighbors(0))))
            sim.node(0).originate("tx")
            sim.run_until_idle()
            results[engine] = self._summary(sim, ["tx"])
        assert results["sharded"] == results["event"]
        # The three failed nodes stay unreached on both engines.
        assert results["event"]["reach"]["tx"] <= 67
        assert len(window_calls) == 1

    def test_max_events_stop_and_resume(self):
        full = _flood_sim("event", size=80, degree=4)
        full.node(0).originate("tx")
        full.run_until_idle()

        sim = _flood_sim("sharded", shards=2, size=80, degree=4)
        sim.node(0).originate("tx")
        sim.run(max_events=40)
        # The cap is window-granular: the run may overshoot within one
        # window but must stop with later waves still pending, and
        # pending_events must see the requeued backlog.
        assert sim.pending_events > 0
        assert sim.now < full.now
        sim.run_until_idle()
        assert observation_digest(sim) == observation_digest(full)
        assert sim.now == full.now
        assert sim.pending_events == 0


class TestPartition:
    def test_blocks_cover_every_node_once(self):
        overlay = random_regular_overlay(50, degree=4, seed=2)
        for parts in (1, 2, 3, 7):
            blocks = bfs_partition(overlay, parts)
            assert len(blocks) == parts
            nodes = [node for block in blocks for node in block]
            assert sorted(nodes) == sorted(overlay.nodes)
            sizes = [len(block) for block in blocks]
            assert max(sizes) - min(sizes) <= 1

    def test_blocks_chunk_the_bfs_order(self):
        overlay = random_regular_overlay(40, degree=4, seed=5)
        blocks = bfs_partition(overlay, 3)
        assert [n for block in blocks for n in block] == bfs_order(overlay)

    def test_partition_is_deterministic(self):
        overlay = random_regular_overlay(40, degree=4, seed=5)
        assert bfs_partition(overlay, 4) == bfs_partition(overlay, 4)

    def test_invalid_part_counts_rejected(self):
        overlay = random_regular_overlay(10, degree=3, seed=1)
        with pytest.raises(ValueError):
            bfs_partition(overlay, 0)
        with pytest.raises(ValueError):
            bfs_partition(overlay, 11)

    def test_default_shard_count_bounds(self):
        assert 2 <= default_shard_count(100_000) <= 8

    def test_assignment_cached_and_invalidated(self):
        overlay = random_regular_overlay(30, degree=4, seed=4)
        topology = csr_topology(overlay)
        first = shard_assignment(overlay, topology, 3)
        assert PARTITION_CACHE_KEY in overlay.graph
        assert shard_assignment(overlay, topology, 3) is first
        # A different shard count rebuilds instead of serving stale data.
        other = shard_assignment(overlay, topology, 2)
        assert other is not first
        sim = Simulator(overlay, engine="sharded", shards=3)
        sim.invalidate_topology_caches()
        assert PARTITION_CACHE_KEY not in overlay.graph


class TestStoreAdoption:
    """Deferred cohort adoption matches the event engine's eager store."""

    def test_counters_and_log_match_event_engine(self):
        sims = {}
        for engine, shards in (("event", None), ("sharded", 2)):
            sim = _flood_sim(engine, shards=shards, size=60, degree=4)
            sim.node(0).originate("tx")
            sim.run_until_idle()
            sims[engine] = sim
        event, sharded = sims["event"], sims["sharded"]
        assert len(sharded.store) == len(event.store)
        assert sharded.store.kind_counts() == event.store.kind_counts()
        assert sharded.store.payload_count() == event.store.payload_count()
        assert sharded.store.count(payload_id="tx") == (
            event.store.count(payload_id="tx")
        )
        assert sharded.metrics.delivered_nodes("tx") == (
            event.metrics.delivered_nodes("tx")
        )
        assert observation_digest(sharded) == observation_digest(event)

    def test_on_first_hook_forces_exact_fallback(self, window_calls):
        # A pending first-observation hook must fire mid-run in log order;
        # the sharded engine cannot guarantee that across processes, so
        # the hook forces the in-process path — and fires identically.
        fired = {}
        for engine, shards in (("event", None), ("sharded", 2)):
            sim = _flood_sim(engine, shards=shards, size=40, degree=4)
            observed = []
            sim.store.on_first("tx", FloodNode.MESSAGE_KIND, observed.append)
            sim.node(0).originate("tx")
            sim.run_until_idle()
            assert len(observed) == 1
            obs = observed[0]
            fired[engine] = (
                obs.time, obs.receiver, obs.sender, obs.message.payload_id
            )
        assert fired["sharded"] == fired["event"]
        assert window_calls == []
