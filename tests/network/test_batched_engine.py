"""The batched cohort-delivery engine: selection, parity and limits.

The engine-equivalence *properties* live in
``tests/property/test_engine_equivalence.py``; this module pins the
engine's unit surface:

* engine selection and validation on ``Simulator`` (KeyError listing the
  registered engines, PR-6 CLI convention);
* the golden observation-log digests of the fixed fast-path scenarios,
  reproduced bit-for-bit under ``engine="batched"``;
* ``pending_events`` counting buffered cohort blocks;
* ``run(max_events=...)`` cohort-granularity stop and the descriptive
  ``run_until_idle`` error naming the engine in use;
* ``on_first`` hooks firing identically on both engines (the hook path
  forces the engine off the vectorised cohort onto per-item processing).
"""

import hashlib

import pytest

from repro.broadcast.flood import FloodNode, run_flood
from repro.broadcast.gossip import run_gossip
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency
from repro.network.simulator import ENGINES, Simulator
from repro.network.topology import random_regular_overlay


def observation_digest(sim: Simulator) -> str:
    digest = hashlib.sha256()
    for obs in sim.iter_observations():
        digest.update(
            repr(
                (
                    obs.time,
                    obs.receiver,
                    obs.sender,
                    obs.message.kind,
                    obs.message.payload_id,
                    obs.message.size_bytes,
                    obs.direct,
                )
            ).encode()
        )
    return digest.hexdigest()


class TestEngineSelection:
    def test_registered_engines(self):
        assert ENGINES == ("event", "batched", "sharded")

    def test_default_engine_is_event(self):
        overlay = random_regular_overlay(10, degree=3, seed=1)
        assert Simulator(overlay).engine == "event"

    def test_unknown_engine_lists_registered(self):
        overlay = random_regular_overlay(10, degree=3, seed=1)
        with pytest.raises(KeyError) as excinfo:
            Simulator(overlay, engine="warp")
        message = excinfo.value.args[0]
        assert "unknown engine 'warp'" in message
        assert "batched" in message and "event" in message

    def test_engine_property_reports_batched(self):
        overlay = random_regular_overlay(10, degree=3, seed=1)
        assert Simulator(overlay, engine="batched").engine == "batched"


class TestGoldenLogsBatched:
    """The fast-path goldens, reproduced on the batched engine.

    Same digests as ``tests/network/test_fastpath_determinism.py`` pins for
    the event engine — the strongest form of the parity contract.
    """

    def test_flood_log_unchanged(self):
        overlay = random_regular_overlay(200, degree=8, seed=3)
        result = run_flood(overlay, source=0, seed=11, engine="batched")
        assert observation_digest(result.simulator) == (
            "f4f67c74e1ab6a66909eea87966d0c547ef2bae70d1c9e5d50cc996786577723"
        )

    def test_gossip_log_unchanged(self):
        overlay = random_regular_overlay(200, degree=8, seed=3)
        result = run_gossip(overlay, source=5, seed=12, engine="batched")
        assert observation_digest(result.simulator) == (
            "a7e2ffccad25a793a845c35ef15ac6dfe411d28e79a197fec790ce57899b47a7"
        )

    def test_lossy_jittery_log_unchanged(self):
        overlay = random_regular_overlay(120, degree=8, seed=21)
        conditions = NetworkConditions.internet_like(
            loss_probability=0.08, jitter=0.05
        )
        sim = Simulator(
            overlay, seed=77, conditions=conditions, engine="batched"
        )
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert sim.dropped_messages == 69
        assert observation_digest(sim) == (
            "b7cd3c318ed9d4bdd86c0f1e56af79ca49e5dfa8d8e93939b1968f70e175e43e"
        )


def _batched_flood(size=60, degree=4, seed=2):
    overlay = random_regular_overlay(size, degree=degree, seed=seed)
    sim = Simulator(
        overlay, latency=ConstantLatency(1.0), seed=0, engine="batched"
    )
    sim.populate(FloodNode)
    return sim


class TestPendingEventsAndLimits:
    def test_pending_events_counts_cohort_blocks(self):
        # After one hop the next wave lives in cohort blocks, not the heap;
        # pending_events must still see it, and run_until_idle must drain it.
        sim = _batched_flood()
        sim.node(0).originate("tx")
        sim.run(until=1.5)
        assert sim.pending_events > 0
        sim.run_until_idle()
        assert sim.pending_events == 0
        assert sim.metrics.reach("tx") == 60

    def test_max_events_stops_between_cohorts(self):
        sim = _batched_flood()
        sim.node(0).originate("tx")
        sim.run(max_events=5)
        # The cap is cohort-granular: the run may overshoot within one
        # cohort but must stop with the remaining waves still pending.
        assert sim.pending_events > 0

    def test_run_until_idle_error_names_batched_engine(self):
        sim = _batched_flood()
        sim.node(0).originate("tx")
        with pytest.raises(RuntimeError, match=r"'batched' engine"):
            sim.run_until_idle(max_events=5)

    def test_run_until_idle_error_names_event_engine(self):
        overlay = random_regular_overlay(60, degree=4, seed=2)
        sim = Simulator(overlay, latency=ConstantLatency(1.0), seed=0)
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        with pytest.raises(RuntimeError, match=r"'event' engine"):
            sim.run_until_idle(max_events=5)

    def test_until_clock_semantics_match_event_engine(self):
        for engine in ENGINES:
            overlay = random_regular_overlay(20, degree=4, seed=7)
            sim = Simulator(
                overlay, latency=ConstantLatency(1.0), seed=0, engine=engine
            )
            sim.populate(FloodNode)
            sim.node(0).originate("tx")
            # The queue drains well before until=50; the clock still ends
            # exactly there on both engines.
            assert sim.run(until=50.0) == 50.0
            assert sim.now == 50.0


class TestFirstHooks:
    def test_on_first_fires_identically_on_both_engines(self):
        fired = {}
        for engine in ENGINES:
            overlay = random_regular_overlay(40, degree=4, seed=9)
            sim = Simulator(
                overlay, latency=ConstantLatency(1.0), seed=0, engine=engine
            )
            sim.populate(FloodNode)
            observed = []
            sim.store.on_first(
                "tx", FloodNode.MESSAGE_KIND, observed.append
            )
            sim.node(0).originate("tx")
            sim.run_until_idle()
            assert len(observed) == 1
            obs = observed[0]
            fired[engine] = (
                obs.time, obs.receiver, obs.sender, obs.message.payload_id
            )
        assert fired["batched"] == fired["event"]
