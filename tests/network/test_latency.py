"""Tests for the latency models."""

import random

import pytest

from repro.network.latency import (
    ConstantLatency,
    ExponentialLatency,
    PerEdgeLatency,
    UniformLatency,
)


class TestConstantLatency:
    def test_fixed_delay(self):
        model = ConstantLatency(0.5)
        assert model.delay(1, 2) == 0.5
        assert model.delay(3, 4) == 0.5

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(random.Random(0), 0.1, 0.3)
        for _ in range(100):
            assert 0.1 <= model.delay(1, 2) <= 0.3

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(random.Random(0), 0.5, 0.1)
        with pytest.raises(ValueError):
            UniformLatency(random.Random(0), 0.0, 0.1)


class TestExponentialLatency:
    def test_positive_and_above_floor(self):
        model = ExponentialLatency(random.Random(0), mean=0.2, minimum=0.05)
        for _ in range(100):
            assert model.delay(1, 2) >= 0.05

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExponentialLatency(random.Random(0), mean=0.0)


class TestPerEdgeLatency:
    def test_stable_per_edge(self):
        model = PerEdgeLatency(random.Random(0), 0.1, 0.5)
        first = model.delay(1, 2)
        assert model.delay(1, 2) == first
        assert model.delay(2, 1) == first

    def test_edges_differ(self):
        model = PerEdgeLatency(random.Random(0), 0.1, 0.5)
        delays = {model.delay(1, peer) for peer in range(2, 30)}
        assert len(delays) > 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PerEdgeLatency(random.Random(0), 0.5, 0.1)
