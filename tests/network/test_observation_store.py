"""Equivalence tests for the indexed observation store.

Every indexed query must return exactly what a naive scan over the full
chronological log returns — on randomized traffic, for every filter
combination.  The naive reference implementations in this module mirror the
pre-index code paths (linear scans over ``sends``) that the store replaced.
"""

import random

import networkx as nx
import pytest

from repro.network.message import Message, Observation
from repro.network.node import Node
from repro.network.observation_store import ObservationStore
from repro.network.simulator import Simulator

KINDS = ("flood", "ad_payload", "ad_token", "dc_share")
PAYLOADS = ("tx-0", "tx-1", "tx-2", "tx-3", "tx-4")
NODES = list(range(12))


def random_log(seed, length=400):
    """A randomized chronological traffic log."""
    rng = random.Random(seed)
    time = 0.0
    log = []
    for _ in range(length):
        time += rng.uniform(0.0, 0.5)
        sender, receiver = rng.sample(NODES, 2)
        log.append(
            Observation(
                time=time,
                receiver=receiver,
                sender=sender,
                message=Message(
                    kind=rng.choice(KINDS),
                    payload_id=rng.choice(PAYLOADS),
                    size_bytes=rng.randrange(16, 512),
                ),
                direct=rng.random() < 0.2,
            )
        )
    return log


def store_from(log):
    store = ObservationStore()
    for obs in log:
        store.record(obs)
    return store


# ----------------------------------------------------------------------
# Naive reference implementations (the old linear-scan semantics)
# ----------------------------------------------------------------------
def naive_count(log, kind=None, payload_id=None):
    return sum(
        1
        for obs in log
        if (kind is None or obs.message.kind == kind)
        and (payload_id is None or obs.message.payload_id == payload_id)
    )


def naive_of_payload(log, payload_id, kinds=None):
    return [
        obs
        for obs in log
        if obs.message.payload_id == payload_id
        and (kinds is None or obs.message.kind in kinds)
    ]


def naive_first_observations(log, payload_id, kinds=None):
    first = {}
    for obs in log:
        if obs.message.payload_id != payload_id:
            continue
        if kinds is not None and obs.message.kind not in kinds:
            continue
        if obs.receiver not in first:
            first[obs.receiver] = obs
    return first


def naive_for_receivers(log, receivers, payload_id=None, kinds=None):
    receiver_set = set(receivers)
    return [
        obs
        for obs in log
        if obs.receiver in receiver_set
        and (payload_id is None or obs.message.payload_id == payload_id)
        and (kinds is None or obs.message.kind in kinds)
    ]


# ----------------------------------------------------------------------
# Equivalence on randomized traffic
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=[1, 2, 3])
def traffic(request):
    log = random_log(seed=request.param)
    return log, store_from(log)


KIND_FILTERS = [None, ("flood",), ("flood", "ad_token"), ("missing",), KINDS]


class TestCountEquivalence:
    def test_counts_match_naive_scan(self, traffic):
        log, store = traffic
        for kind in (None,) + KINDS + ("missing",):
            for payload_id in (None,) + PAYLOADS + ("missing",):
                assert store.count(kind=kind, payload_id=payload_id) == (
                    naive_count(log, kind, payload_id)
                ), (kind, payload_id)

    def test_multi_kind_counts(self, traffic):
        log, store = traffic
        for payload_id in (None,) + PAYLOADS:
            for kinds in KIND_FILTERS:
                if kinds is None:
                    continue
                expected = sum(naive_count(log, kind, payload_id) for kind in kinds)
                assert store.count_for(payload_id, kinds) == expected

    def test_duplicate_kinds_not_double_counted(self, traffic):
        log, store = traffic
        assert store.count_for(None, ("flood", "flood")) == naive_count(
            log, "flood"
        )

    def test_totals(self, traffic):
        log, store = traffic
        assert len(store) == len(log)
        assert store.bytes_total() == sum(o.message.size_bytes for o in log)
        assert store.payload_count() == len(
            {o.message.payload_id for o in log}
        )
        assert store.kind_counts() == {
            kind: naive_count(log, kind)
            for kind in {o.message.kind for o in log}
        }


class TestQueryEquivalence:
    def test_log_preserved_in_order(self, traffic):
        log, store = traffic
        assert store.observations == log
        assert list(store) == log

    def test_iter_observations_is_lazy_and_live(self):
        store = ObservationStore()
        log = []
        for index in range(4):
            obs = Observation(
                float(index), receiver=index, sender=index + 1,
                message=Message(kind="flood", payload_id="tx"),
            )
            store.record(obs)
            log.append(obs)
        view = store.iter_observations()
        assert iter(view) is view  # an iterator, not a copy
        consumed = [next(view), next(view)]
        assert consumed == log[:2]
        # Appended entries become visible to an in-flight iterator.
        extra = Observation(
            99.0, receiver=0, sender=1,
            message=Message(kind="flood", payload_id="late"),
        )
        store.record(extra)
        remaining = list(view)
        assert remaining == log[2:] + [extra]

    def test_of_payload(self, traffic):
        log, store = traffic
        for payload_id in PAYLOADS + ("missing",):
            for kinds in KIND_FILTERS:
                assert store.of_payload(payload_id, kinds) == (
                    naive_of_payload(log, payload_id, kinds)
                ), (payload_id, kinds)

    def test_first_observations(self, traffic):
        log, store = traffic
        for payload_id in PAYLOADS + ("missing",):
            for kinds in KIND_FILTERS:
                assert store.first_observations(payload_id, kinds) == (
                    naive_first_observations(log, payload_id, kinds)
                ), (payload_id, kinds)

    def test_for_receivers(self, traffic):
        log, store = traffic
        rng = random.Random(99)
        subsets = [[], [0], NODES, rng.sample(NODES, 4), rng.sample(NODES, 7)]
        for receivers in subsets:
            for payload_id in (None, "tx-1", "missing"):
                for kinds in KIND_FILTERS:
                    assert store.for_receivers(receivers, payload_id, kinds) == (
                        naive_for_receivers(log, receivers, payload_id, kinds)
                    ), (receivers, payload_id, kinds)


class TestFirstObservationHooks:
    def test_hook_fires_once_on_first_match(self):
        store = ObservationStore()
        log = random_log(seed=7, length=100)
        seen = []
        store.on_first("tx-1", "flood", seen.append)
        for obs in log:
            store.record(obs)
        expected = naive_of_payload(log, "tx-1", ("flood",))
        assert seen == expected[:1]

    def test_hook_fires_immediately_when_registered_late(self):
        log = random_log(seed=8, length=100)
        store = store_from(log)
        seen = []
        store.on_first("tx-2", "flood", seen.append)
        assert seen == naive_of_payload(log, "tx-2", ("flood",))[:1]

    def test_hook_never_fires_without_match(self):
        store = store_from(random_log(seed=9, length=50))
        seen = []
        store.on_first("tx-0", "no-such-kind", seen.append)
        assert seen == []

    def test_cancelled_hook_never_fires(self):
        store = ObservationStore()
        seen = []
        cancel = store.on_first("tx", "flood", seen.append)
        cancel()
        store.record(
            Observation(
                time=1.0,
                receiver=1,
                sender=0,
                message=Message(kind="flood", payload_id="tx"),
            )
        )
        assert seen == []
        cancel()  # cancelling twice is a harmless no-op

    def test_cancel_after_fire_is_noop(self):
        log = random_log(seed=10, length=50)
        store = store_from(log)
        payload_id = log[0].message.payload_id
        kind = log[0].message.kind
        seen = []
        cancel = store.on_first(payload_id, kind, seen.append)
        assert seen == [log[0]]
        cancel()

    def test_cancel_preserves_sibling_hooks(self):
        store = ObservationStore()
        first, second = [], []
        cancel_first = store.on_first("tx", "flood", first.append)
        store.on_first("tx", "flood", second.append)
        cancel_first()
        obs = Observation(
            time=1.0,
            receiver=1,
            sender=0,
            message=Message(kind="flood", payload_id="tx"),
        )
        store.record(obs)
        assert first == []
        assert second == [obs]

    def test_multiple_hooks_all_fire(self):
        store = ObservationStore()
        first, second = [], []
        store.on_first("tx", "flood", first.append)
        store.on_first("tx", "flood", second.append)
        obs = Observation(
            time=1.0,
            receiver=1,
            sender=0,
            message=Message(kind="flood", payload_id="tx"),
        )
        store.record(obs)
        store.record(obs)
        assert first == [obs]
        assert second == [obs]


class TestSimulatorIntegration:
    """The simulator's metrics answers must match scans of its own log."""

    @pytest.fixture(scope="class")
    def sim(self):
        class GossipyNode(Node):  # randomized multi-payload traffic
            def on_start(self):
                rng = self.simulator.rng
                for index in range(3):
                    payload = f"tx-{rng.randrange(3)}"
                    kind = rng.choice(["flood", "ad_payload"])
                    for peer in self.neighbours:
                        if rng.random() < 0.5:
                            self.send(
                                peer, Message(kind=kind, payload_id=payload)
                            )
                    self.mark_delivered(payload)

            def on_message(self, sender, message):
                pass

        sim = Simulator(nx.random_regular_graph(4, 20, seed=3), seed=11)
        sim.populate(GossipyNode)
        sim.run_until_idle()
        return sim

    def test_mixed_filter_message_count(self, sim):
        log = sim.observations
        for kind in (None, "flood", "ad_payload"):
            for payload_id in (None, "tx-0", "tx-1", "tx-2", "missing"):
                assert sim.metrics.message_count(kind, payload_id) == (
                    naive_count(log, kind, payload_id)
                )

    def test_first_observations_match(self, sim):
        log = sim.observations
        for payload_id in ("tx-0", "tx-1", "tx-2"):
            assert sim.metrics.first_observations(payload_id) == (
                naive_first_observations(log, payload_id)
            )
            assert sim.metrics.first_observations(payload_id, ("flood",)) == (
                naive_first_observations(log, payload_id, ("flood",))
            )

    def test_observations_for_matches(self, sim):
        log = sim.observations
        observers = [0, 3, 7, 19]
        assert sim.observations_for(observers) == naive_for_receivers(
            log, observers
        )

    def test_delivery_queries_match_naive(self, sim):
        deliveries = sim.metrics.deliveries
        for payload_id in ("tx-0", "tx-1", "tx-2", "missing"):
            entries = sorted(
                (time, node)
                for (node, payload), time in deliveries.items()
                if payload == payload_id
            )
            assert sim.metrics.delivered_nodes(payload_id) == [
                node for _, node in entries
            ]
            assert sim.metrics.reach(payload_id) == len(entries)
            assert sim.metrics.completion_time(payload_id) == (
                max(t for t, _ in entries) if entries else None
            )
