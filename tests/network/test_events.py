"""Tests for the deterministic event queue."""

import pytest

from repro.network.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        while queue:
            queue.pop().action()
        assert fired == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("first"))
        queue.push(1.0, lambda: fired.append("second"))
        while queue:
            queue.pop().action()
        assert fired == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        event.cancel()
        while queue:
            popped = queue.pop()
            if popped is None:
                break
            popped.action()
        assert fired == ["kept"]

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 4.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert not queue
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, lambda: None)

    def test_len(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
