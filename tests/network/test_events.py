"""Tests for the deterministic event queue."""

import pytest

from repro.network.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        while queue:
            queue.pop().action()
        assert fired == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("first"))
        queue.push(1.0, lambda: fired.append("second"))
        while queue:
            queue.pop().action()
        assert fired == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        event.cancel()
        while queue:
            popped = queue.pop()
            if popped is None:
                break
            popped.action()
        assert fired == ["kept"]

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 4.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert not queue
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, lambda: None)

    def test_len(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2


class TestLiveCount:
    """``len`` counts only events that will still fire (regression:
    cancelled events used to be counted until they were lazily popped)."""

    def test_cancel_decrements_immediately(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert len(queue) == 1
        assert bool(queue)

    def test_all_cancelled_queue_is_falsy(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(3)]
        for event in events:
            event.cancel()
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # too late: it already fired
        assert len(queue) == 1
        assert queue.pop() is not None
        assert len(queue) == 0

    def test_pop_decrements(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push_item(2.0, ("payload",))
        assert len(queue) == 2
        queue.pop_item()
        assert len(queue) == 1
        queue.pop_item()
        assert len(queue) == 0


class TestFastPathEntries:
    def test_push_item_round_trip(self):
        queue = EventQueue()
        payload = ("receiver", "sender", "message", False)
        queue.push_item(1.5, payload)
        assert queue.peek_time() == 1.5
        time, item = queue.pop_item()
        assert time == 1.5
        assert item is payload

    def test_pop_wraps_item_in_handle(self):
        queue = EventQueue()
        fired = []
        queue.push_item(1.0, lambda: fired.append("ran"))
        handle = queue.pop()
        handle.action()
        assert fired == ["ran"]

    def test_pop_item_until_respects_limit(self):
        queue = EventQueue()
        queue.push_item(1.0, "early")
        queue.push_item(3.0, "late")
        assert queue.pop_item_until(2.0) == (1.0, "early")
        assert queue.pop_item_until(2.0) is None
        assert len(queue) == 1  # the late entry is untouched
        assert queue.pop_item_until(None) == (3.0, "late")

    def test_pop_item_until_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push_item(2.0, "kept")
        event.cancel()
        assert queue.pop_item_until(5.0) == (2.0, "kept")
        assert queue.pop_item_until(5.0) is None

    def test_negative_time_rejected_on_fast_path(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push_item(-0.5, "nope")
