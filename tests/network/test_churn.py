"""Node churn: failure/rejoin events, offline semantics, cache invalidation."""

import random

import pytest

from repro.broadcast.flood import FloodNode, run_flood
from repro.network.churn import (
    ChurnEvent,
    ChurnSchedule,
    random_churn_schedule,
)
from repro.network.latency import ConstantLatency
from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.topology import line_overlay, random_regular_overlay


def _flood_simulator(graph, seed=0):
    simulator = Simulator(graph, seed=seed)
    simulator.populate(FloodNode)
    return simulator


class TestOfflineSemantics:
    def test_offline_node_receives_nothing(self):
        simulator = _flood_simulator(line_overlay(3))
        simulator.fail_node(1)
        simulator.node(0).originate("tx")
        simulator.run_until_idle()
        # Node 1 is the only route; nothing reaches it or node 2.
        assert simulator.metrics.reach("tx") == 1
        assert simulator.churn_dropped == 0  # fan-out skipped it entirely
        assert simulator.offline_nodes == {1}

    def test_neighbours_of_excludes_offline(self):
        simulator = _flood_simulator(line_overlay(3))
        assert simulator.neighbours_of(0) == (1,)
        simulator.fail_node(1)
        assert simulator.neighbours_of(0) == ()
        simulator.restore_node(1)
        assert simulator.neighbours_of(0) == (1,)

    def test_sends_to_offline_node_are_counted_drops(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.fail_node(1)
        simulator.send(0, 1, Message("flood", "tx", 1))
        assert simulator.churn_dropped == 1
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx") == 0

    def test_sends_from_offline_node_are_dropped(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.fail_node(0)
        simulator.send(0, 1, Message("flood", "tx", 1))
        assert simulator.churn_dropped == 1

    def test_direct_sends_to_offline_node_are_dropped(self):
        simulator = _flood_simulator(line_overlay(3))
        simulator.fail_node(2)
        simulator.send(0, 2, Message("flood", "tx", 1), direct=True)
        assert simulator.churn_dropped == 1

    def test_in_flight_message_dropped_when_receiver_fails(self):
        simulator = _flood_simulator(line_overlay(2))
        # Delivery takes 1.0 time unit (default latency); the receiver
        # crashes at 0.5, while the message is in flight.
        simulator.node(0).originate("tx")
        simulator.schedule(0.5, lambda: simulator.fail_node(1))
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx") == 1  # only the source
        assert simulator.churn_dropped == 1
        assert all(obs.receiver != 1 for obs in simulator.iter_observations())

    def test_failing_unknown_node_rejected(self):
        simulator = _flood_simulator(line_overlay(2))
        with pytest.raises(ValueError):
            simulator.fail_node("nope")

    def test_fail_and_restore_are_idempotent(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.fail_node(1)
        simulator.fail_node(1)
        assert simulator.offline_nodes == {1}
        simulator.restore_node(1)
        simulator.restore_node(1)
        assert simulator.offline_nodes == frozenset()


class TestRejoin:
    def test_rejoined_node_forwards_again(self):
        # 0 - 1 - 2 line: node 1 fails, rejoins, and a second broadcast
        # after the rejoin reaches everyone.
        simulator = _flood_simulator(line_overlay(3))
        simulator.fail_node(1)
        simulator.node(0).originate("tx-1")
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx-1") == 1

        simulator.restore_node(1)
        simulator.node(0).originate("tx-2")
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx-2") == 3

    def test_missed_payloads_stay_missed(self):
        simulator = _flood_simulator(line_overlay(3))
        simulator.fail_node(2)
        simulator.node(0).originate("tx")
        simulator.run_until_idle()
        simulator.restore_node(2)
        simulator.run_until_idle()
        # No replay on rejoin: 2 never hears about the payload again.
        assert simulator.metrics.reach("tx") == 2


class TestChurnSchedule:
    def test_events_validate(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, 0, "leave")
        with pytest.raises(ValueError):
            ChurnEvent(1.0, 0, "explode")

    def test_apply_executes_at_scheduled_times(self):
        graph = line_overlay(3)
        simulator = _flood_simulator(graph)
        schedule = ChurnSchedule((
            ChurnEvent(1.0, 1, "leave"),
            ChurnEvent(3.0, 1, "rejoin"),
        ))
        schedule.apply(simulator)
        simulator.run(until=2.0)
        assert simulator.offline_nodes == {1}
        simulator.run(until=4.0)
        assert simulator.offline_nodes == frozenset()

    def test_event_times_are_absolute_when_applied_mid_run(self):
        # Applying a schedule after the clock advanced must not shift the
        # whole schedule by the application time: past events fire
        # immediately, future events at their stated absolute time.
        simulator = _flood_simulator(line_overlay(3))
        simulator.run(until=2.0)
        schedule = ChurnSchedule((
            ChurnEvent(1.0, 0, "leave"),   # already past: fires at once
            ChurnEvent(3.0, 1, "leave"),   # still ahead: fires at t=3.0
        ))
        schedule.apply(simulator)
        simulator.run(until=2.5)
        assert simulator.offline_nodes == {0}
        simulator.run(until=3.5)
        assert simulator.offline_nodes == {0, 1}

    def test_random_schedule_is_deterministic(self):
        graph = random_regular_overlay(60, degree=6, seed=0)
        a = random_churn_schedule(graph, 0.25, 1.0, rejoin_after=2.0,
                                  rng=random.Random(5))
        b = random_churn_schedule(graph, 0.25, 1.0, rejoin_after=2.0,
                                  rng=random.Random(5))
        assert a == b
        leavers = [e for e in a.events if e.action == "leave"]
        rejoins = [e for e in a.events if e.action == "rejoin"]
        assert len(leavers) == 15
        assert len(rejoins) == 15
        assert all(e.time == 3.0 for e in rejoins)

    def test_protected_nodes_never_churn(self):
        graph = random_regular_overlay(30, degree=4, seed=1)
        schedule = random_churn_schedule(
            graph, 0.5, 1.0, rng=random.Random(2), protected={0, 1}
        )
        churned = {event.node for event in schedule.events}
        assert churned.isdisjoint({0, 1})

    def test_validation(self):
        graph = line_overlay(4)
        with pytest.raises(ValueError):
            random_churn_schedule(graph, 1.5, 1.0)
        with pytest.raises(ValueError):
            random_churn_schedule(graph, 0.2, -1.0)
        with pytest.raises(ValueError):
            random_churn_schedule(graph, 0.2, 1.0, rejoin_after=0.0)


class TestChurnDeterminism:
    def test_same_schedule_same_log(self):
        def run_once():
            overlay = random_regular_overlay(100, degree=8, seed=11)
            simulator = Simulator(overlay, seed=13)
            simulator.populate(FloodNode)
            schedule = random_churn_schedule(
                overlay, 0.2, 0.5, rejoin_after=2.0, rng=random.Random(17)
            )
            schedule.apply(simulator)
            simulator.node(0).originate("tx")
            simulator.run_until_idle()
            return [
                (obs.time, obs.receiver, obs.sender)
                for obs in simulator.iter_observations()
            ], simulator.churn_dropped

        first, second = run_once(), run_once()
        assert first == second

    def test_failed_then_restored_run_matches_plain_run(self):
        # A node that fails and is restored before any traffic flows leaves
        # no trace: the run is log-identical to one that never churned
        # (the cache invalidation fully undoes itself).
        def log(simulator):
            return [
                (obs.time, obs.receiver, obs.sender, obs.message.payload_id)
                for obs in simulator.iter_observations()
            ]

        overlay = random_regular_overlay(80, degree=8, seed=3)
        plain = run_flood(overlay, source=0, seed=11)

        churned = Simulator(overlay, latency=ConstantLatency(0.1), seed=11)
        churned.populate(FloodNode)
        churned.fail_node(5)
        churned.restore_node(5)
        churned.node(0).originate("tx")
        churned.run_until_idle()
        assert log(plain.simulator) == log(churned)
