"""Tests for the discrete-event simulator, nodes, messages and metrics."""

import networkx as nx
import pytest

from repro.network.latency import ConstantLatency
from repro.network.message import Message
from repro.network.node import Node
from repro.network.simulator import Simulator


class EchoNode(Node):
    """Records everything it receives; used to probe the simulator."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now, sender, message))


class FloodOnceNode(Node):
    """Minimal flooding behaviour used for end-to-end simulator tests."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = set()

    def originate(self, payload_id):
        self.seen.add(payload_id)
        self.mark_delivered(payload_id)
        for peer in self.neighbours:
            self.send(peer, Message(kind="flood", payload_id=payload_id))

    def on_message(self, sender, message):
        if message.payload_id in self.seen:
            return
        self.seen.add(message.payload_id)
        self.mark_delivered(message.payload_id)
        for peer in self.neighbours:
            if peer != sender:
                self.send(peer, message.copy_for_forwarding())


def build_sim(graph=None, node_cls=EchoNode, seed=0):
    sim = Simulator(graph if graph is not None else nx.path_graph(4), seed=seed)
    sim.populate(node_cls)
    return sim


class TestSimulatorBasics:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Simulator(nx.Graph())

    def test_populate_registers_all_nodes(self):
        sim = build_sim()
        assert set(sim.nodes) == {0, 1, 2, 3}

    def test_duplicate_registration_rejected(self):
        sim = build_sim()
        with pytest.raises(ValueError):
            sim.add_node(EchoNode(0))

    def test_unknown_vertex_rejected(self):
        sim = build_sim()
        with pytest.raises(ValueError):
            sim.add_node(EchoNode(99))

    def test_neighbours_are_sorted_and_cached(self):
        sim = build_sim()
        assert sim.neighbours_of(1) == (0, 2)
        assert sim.node(1).neighbours == (0, 2)
        # The fan-out fast path: one immutable tuple, shared across calls.
        assert sim.neighbours_of(1) is sim.neighbours_of(1)
        assert isinstance(sim.neighbours_of(1), tuple)

    def test_unattached_node_raises(self):
        node = EchoNode(0)
        with pytest.raises(RuntimeError):
            _ = node.simulator
        with pytest.raises(RuntimeError):
            node.send(1, Message(kind="test", payload_id="tx"))
        with pytest.raises(RuntimeError):
            node.send_direct(1, Message(kind="test", payload_id="tx"))

    def test_invalidate_topology_caches_sees_new_edges(self):
        # The neighbour/adjacency caches are rebuilt on demand after an
        # explicit invalidation, so post-construction graph mutation (e.g.
        # injecting adversarial supernodes) can be made visible.
        graph = nx.path_graph(4)
        sim = build_sim(graph)
        assert sim.neighbours_of(0) == (1,)
        with pytest.raises(ValueError):
            sim.node(0).send(2, Message(kind="test", payload_id="tx"))
        graph.add_edge(0, 2)
        sim.invalidate_topology_caches()
        assert sim.neighbours_of(0) == (1, 2)
        sim.node(0).send(2, Message(kind="test", payload_id="tx"))
        sim.run_until_idle()
        assert len(sim.node(2).received) == 1


class TestDelivery:
    def test_message_delivered_after_latency(self):
        sim = Simulator(nx.path_graph(2), latency=ConstantLatency(2.5), seed=0)
        sim.populate(EchoNode)
        sim.node(0).send(1, Message(kind="test", payload_id="tx"))
        sim.run_until_idle()
        assert len(sim.node(1).received) == 1
        time, sender, _ = sim.node(1).received[0]
        assert time == 2.5
        assert sender == 0

    def test_non_neighbour_overlay_send_rejected(self):
        sim = build_sim(nx.path_graph(4))
        with pytest.raises(ValueError):
            sim.node(0).send(3, Message(kind="test", payload_id="tx"))

    def test_direct_send_bypasses_overlay(self):
        sim = build_sim(nx.path_graph(4))
        sim.node(0).send_direct(3, Message(kind="dc", payload_id="tx"))
        sim.run_until_idle()
        assert len(sim.node(3).received) == 1

    def test_unknown_receiver_rejected(self):
        sim = build_sim()
        with pytest.raises(ValueError):
            sim.send(0, 42, Message(kind="x", payload_id="tx"))

    def test_observations_record_direct_flag(self):
        sim = build_sim()
        sim.node(0).send(1, Message(kind="a", payload_id="tx"))
        sim.node(0).send_direct(2, Message(kind="b", payload_id="tx"))
        sim.run_until_idle()
        flags = {obs.message.kind: obs.direct for obs in sim.observations}
        assert flags == {"a": False, "b": True}


class TestScheduling:
    def test_scheduled_action_runs_at_time(self):
        sim = build_sim()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == [5.0]

    def test_negative_delay_rejected(self):
        sim = build_sim()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_limit(self):
        sim = build_sim()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_max_events(self):
        sim = build_sim()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_run_until_advances_clock_when_queue_drains_early(self):
        """Both exit paths of run(until=...) leave the clock at ``until``."""
        sim = build_sim()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0
        # An empty queue still advances the clock, so run(until=...) loops
        # make progress through idle periods instead of spinning.
        assert sim.run(until=9.0) == 9.0
        assert sim.now == 9.0

    def test_run_until_never_moves_clock_backwards(self):
        sim = build_sim()
        sim.schedule(4.0, lambda: None)
        sim.run_until_idle()
        assert sim.now == 4.0
        assert sim.run(until=2.0) == 4.0

    def test_run_max_events_exit_does_not_jump_to_until(self):
        sim = build_sim()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == 2.0

    def test_pending_events_counts_queue(self):
        sim = build_sim()
        assert sim.pending_events == 0
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run_until_idle()
        assert sim.pending_events == 0

    def test_pending_events_excludes_cancelled(self):
        # Regression: cancelled timers used to inflate pending_events until
        # the queue happened to pop past them, so "is the simulation idle?"
        # loops could spin on events that would never fire.
        sim = build_sim()
        keep = sim.schedule(1.0, lambda: None)
        cancel_me = sim.schedule(2.0, lambda: None)
        cancel_me.cancel()
        assert sim.pending_events == 1
        keep.cancel()
        assert sim.pending_events == 0
        sim.run_until_idle()
        assert sim.pending_events == 0

    def test_pending_events_counts_in_flight_messages(self):
        sim = build_sim()
        sim.node(0).send(1, Message(kind="test", payload_id="tx"))
        assert sim.pending_events == 1
        sim.run_until_idle()
        assert sim.pending_events == 0

    def test_on_start_called_once(self):
        class StartCounting(EchoNode):
            starts = 0

            def on_start(self):
                StartCounting.starts += 1

        sim = Simulator(nx.path_graph(3), seed=0)
        sim.populate(StartCounting)
        sim.run_until_idle()
        sim.run_until_idle()
        assert StartCounting.starts == 3


class TestEndToEndFlood:
    def test_flood_reaches_every_node(self):
        graph = nx.random_regular_graph(4, 30, seed=1)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodOnceNode)
        sim.node(0).originate("tx-1")
        sim.run_until_idle()
        assert sim.metrics.reach("tx-1") == 30
        assert sim.delivered_fraction("tx-1") == 1.0
        assert sim.undelivered_nodes("tx-1") == []

    def test_flood_message_count_bounded_by_twice_edges(self):
        graph = nx.random_regular_graph(4, 30, seed=1)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodOnceNode)
        sim.node(0).originate("tx-1")
        sim.run_until_idle()
        assert sim.metrics.message_count() <= 2 * graph.number_of_edges()
        assert sim.metrics.message_count() >= graph.number_of_nodes() - 1

    def test_metrics_first_observations(self):
        graph = nx.path_graph(5)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodOnceNode)
        sim.node(2).originate("tx")
        sim.run_until_idle()
        first = sim.metrics.first_observations("tx")
        # Node 2 originated, so it never *receives* the payload.
        assert set(first) == {0, 1, 3, 4}
        assert first[1].sender == 2
        assert first[0].sender == 1

    def test_observations_for_observer_subset(self):
        graph = nx.path_graph(5)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodOnceNode)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        visible = sim.observations_for([4])
        assert all(obs.receiver == 4 for obs in visible)
        assert len(visible) == 1


class TestMetricsQueries:
    def test_message_count_filters(self):
        sim = build_sim()
        sim.node(0).send(1, Message(kind="a", payload_id="t1"))
        sim.node(1).send(2, Message(kind="b", payload_id="t1"))
        sim.node(2).send(3, Message(kind="a", payload_id="t2"))
        sim.run_until_idle()
        assert sim.metrics.message_count() == 3
        assert sim.metrics.message_count(kind="a") == 2
        assert sim.metrics.message_count(payload_id="t1") == 2
        assert sim.metrics.message_count(kind="a", payload_id="t2") == 1

    def test_bytes_sent(self):
        sim = build_sim()
        sim.node(0).send(1, Message(kind="a", payload_id="t", size_bytes=100))
        sim.node(1).send(2, Message(kind="a", payload_id="t", size_bytes=50))
        sim.run_until_idle()
        assert sim.metrics.bytes_sent() == 150

    def test_delivery_and_completion_time(self):
        graph = nx.path_graph(4)
        sim = Simulator(graph, latency=ConstantLatency(1.0), seed=0)
        sim.populate(FloodOnceNode)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert sim.metrics.delivery_time(0, "tx") == 0.0
        assert sim.metrics.delivery_time(3, "tx") == 3.0
        assert sim.metrics.completion_time("tx") == 3.0
        assert sim.metrics.delivery_time(3, "unknown") is None
        assert sim.metrics.completion_time("unknown") is None

    def test_delivered_nodes_in_order(self):
        graph = nx.path_graph(4)
        sim = Simulator(graph, latency=ConstantLatency(1.0), seed=0)
        sim.populate(FloodOnceNode)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert sim.metrics.delivered_nodes("tx") == [0, 1, 2, 3]

    def test_summary_keys(self):
        sim = build_sim()
        summary = sim.metrics.summary()
        assert set(summary) == {"messages", "bytes", "payloads", "deliveries"}

    def test_kinds_breakdown(self):
        sim = build_sim()
        sim.node(0).send(1, Message(kind="a", payload_id="t"))
        sim.node(1).send(2, Message(kind="a", payload_id="t"))
        sim.node(2).send(3, Message(kind="b", payload_id="t"))
        sim.run_until_idle()
        assert sim.metrics.kinds() == {"a": 2, "b": 1}


class TestMessage:
    def test_copy_for_forwarding_gets_new_uid(self):
        msg = Message(kind="flood", payload_id="tx", body={"hops": 1})
        copy = msg.copy_for_forwarding()
        assert copy.uid != msg.uid
        assert copy.body == msg.body
        assert copy.body is not msg.body

    def test_unimplemented_on_message(self):
        node = Node("x")
        with pytest.raises(NotImplementedError):
            node.on_message(None, Message(kind="a", payload_id="t"))
