"""Link-level failures: sever/restore semantics and LinkEvent schedules."""

import pytest

from repro.broadcast.flood import FloodNode
from repro.network.churn import ChurnEvent, ChurnSchedule, LinkEvent
from repro.network.latency import ConstantLatency
from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.topology import complete_overlay, line_overlay


def _flood_simulator(graph, seed=0):
    simulator = Simulator(graph, seed=seed)
    simulator.populate(FloodNode)
    return simulator


class TestSeverRestore:
    def test_severed_link_blocks_delivery(self):
        simulator = _flood_simulator(line_overlay(3))
        simulator.sever_link(1, 2)
        simulator.node(0).originate("tx")
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx") == 2  # node 2 unreachable
        assert simulator.severed_links == frozenset({frozenset({1, 2})})

    def test_neighbours_of_excludes_severed(self):
        simulator = _flood_simulator(line_overlay(3))
        simulator.sever_link(0, 1)
        assert simulator.neighbours_of(0) == ()
        assert simulator.neighbours_of(1) == (2,)
        simulator.restore_link(0, 1)
        assert simulator.neighbours_of(0) == (1,)

    def test_sever_is_symmetric(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.sever_link(1, 0)  # reversed endpoint order
        assert simulator.neighbours_of(0) == ()
        simulator.send(0, 1, Message("flood", "tx", 1))
        assert simulator.churn_dropped == 1

    def test_sends_over_severed_link_are_counted_drops(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.sever_link(0, 1)
        before = simulator.churn_dropped
        simulator.send(0, 1, Message("flood", "tx", 1))
        assert simulator.churn_dropped == before + 1
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx") == 0

    def test_in_flight_message_dropped_when_link_severed(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.send(0, 1, Message("flood", "tx", 1))  # in flight
        simulator.schedule(0.0, lambda: simulator.sever_link(0, 1))
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx") == 0
        assert simulator.churn_dropped == 1

    def test_direct_sends_ignore_severed_links(self):
        # Direct sends model out-of-overlay channels (DC-net internals);
        # severing the overlay link must not touch them.
        simulator = _flood_simulator(line_overlay(2))
        simulator.sever_link(0, 1)
        simulator.send(0, 1, Message("flood", "tx", 1), direct=True)
        simulator.run_until_idle()
        assert simulator.churn_dropped == 0
        assert simulator.metrics.reach("tx") == 1

    def test_sever_requires_an_overlay_edge(self):
        simulator = _flood_simulator(line_overlay(3))
        with pytest.raises(ValueError):
            simulator.sever_link(0, 2)  # not adjacent in a line

    def test_sever_and_restore_are_idempotent(self):
        simulator = _flood_simulator(line_overlay(2))
        simulator.sever_link(0, 1)
        simulator.sever_link(0, 1)
        assert len(simulator.severed_links) == 1
        simulator.restore_link(0, 1)
        simulator.restore_link(0, 1)
        assert not simulator.severed_links
        assert simulator.neighbours_of(0) == (1,)

    def test_restore_recovers_delivery(self):
        simulator = _flood_simulator(line_overlay(3))
        simulator.sever_link(1, 2)
        simulator.restore_link(1, 2)
        simulator.node(0).originate("tx")
        simulator.run_until_idle()
        assert simulator.metrics.reach("tx") == 3


class TestLinkEvent:
    def test_validates_action_and_time(self):
        with pytest.raises(ValueError):
            LinkEvent(0.0, 0, 1, "explode")
        with pytest.raises(ValueError):
            LinkEvent(-1.0, 0, 1, "sever")

    def test_schedule_mixes_node_and_link_events(self):
        simulator = _flood_simulator(complete_overlay(4))
        schedule = ChurnSchedule((
            LinkEvent(0.0, 0, 1, "sever"),
            ChurnEvent(0.0, 3, "leave"),
            LinkEvent(5.0, 0, 1, "restore"),
            ChurnEvent(5.0, 3, "rejoin"),
        ))
        schedule.apply(simulator)
        simulator.run(until=1.0)
        assert simulator.severed_links == frozenset({frozenset({0, 1})})
        assert simulator.offline_nodes == {3}
        simulator.run(until=6.0)
        assert not simulator.severed_links
        assert not simulator.offline_nodes

    def test_scheduled_eclipse_blocks_then_recovers(self):
        simulator = Simulator(line_overlay(3), latency=ConstantLatency(0.1))
        simulator.populate(FloodNode)
        ChurnSchedule((
            LinkEvent(0.0, 1, 2, "sever"),
            LinkEvent(20.0, 1, 2, "restore"),
        )).apply(simulator)
        simulator.run(until=1.0)
        simulator.node(0).originate("tx")
        simulator.run(until=10.0)
        # The eclipse window covers the whole broadcast: node 2 never
        # hears of the payload (the fan-out skips the severed link).
        assert simulator.metrics.reach("tx") == 2
        simulator.run_until_idle()  # link back at t=20; no retransmission
        assert simulator.metrics.reach("tx") == 2
