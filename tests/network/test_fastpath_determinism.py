"""Determinism guarantees of the fast-path engine.

The tuple-heap event queue, the closure-free delivery dispatch and the
cached-conditions send path may change *nothing* observable: event ordering
stays (time, insertion order) and identical seeds produce identical
observation logs.  Three layers of guard:

* **golden digests** — the observation logs of fixed seeded scenarios are
  hashed and compared against digests captured on the pre-fast-path engine
  (commit ``d067cb0``), so the engine swap is provably log-identical.  The
  scenarios avoid the DC-net pad generator, whose RNG stream intentionally
  changed (see ``repro/crypto/pads.py``); everything else is bit-for-bit.
* **reference queue** — a verbatim copy of the old dataclass-based event
  queue is driven with the same randomized push/cancel schedule as the
  tuple-heap queue and must pop in the same order, ties and all.
* **repeatability** — one seed, two runs, equal logs.
"""

import hashlib
import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.broadcast.flood import FloodNode, run_flood
from repro.broadcast.gossip import run_gossip
from repro.network.conditions import NetworkConditions
from repro.network.events import EventQueue
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay


def observation_digest(simulator: Simulator) -> str:
    """Stable digest of everything a run's observation log contains."""
    digest = hashlib.sha256()
    for obs in simulator.iter_observations():
        digest.update(
            repr(
                (
                    obs.time,
                    obs.receiver,
                    obs.sender,
                    obs.message.kind,
                    obs.message.payload_id,
                    obs.message.size_bytes,
                    obs.direct,
                )
            ).encode()
        )
    return digest.hexdigest()


class TestGoldenLogs:
    """Digests captured on the pre-fast-path engine (seed commit d067cb0)."""

    def test_flood_log_unchanged(self):
        overlay = random_regular_overlay(200, degree=8, seed=3)
        result = run_flood(overlay, source=0, seed=11)
        assert observation_digest(result.simulator) == (
            "f4f67c74e1ab6a66909eea87966d0c547ef2bae70d1c9e5d50cc996786577723"
        )

    def test_gossip_log_unchanged(self):
        overlay = random_regular_overlay(200, degree=8, seed=3)
        result = run_gossip(overlay, source=5, seed=12)
        assert observation_digest(result.simulator) == (
            "a7e2ffccad25a793a845c35ef15ac6dfe411d28e79a197fec790ce57899b47a7"
        )

    def test_lossy_jittery_log_unchanged(self):
        # Pins the dedicated link-RNG stream: loss and jitter draws must
        # happen in exactly the pre-fast-path order.
        overlay = random_regular_overlay(120, degree=8, seed=21)
        conditions = NetworkConditions.internet_like(
            loss_probability=0.08, jitter=0.05
        )
        sim = Simulator(overlay, seed=77, conditions=conditions)
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert sim.dropped_messages == 69
        assert observation_digest(sim) == (
            "b7cd3c318ed9d4bdd86c0f1e56af79ca49e5dfa8d8e93939b1968f70e175e43e"
        )


# ----------------------------------------------------------------------
# Reference queue: the pre-fast-path implementation, kept verbatim as the
# ordering oracle (time, then insertion order; cancelled events skipped).
# ----------------------------------------------------------------------
@dataclass(order=True)
class _ReferenceEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class _ReferenceEventQueue:
    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> _ReferenceEvent:
        event = _ReferenceEvent(
            time=time, sequence=next(self._counter), action=action
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[_ReferenceEvent]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None


class TestTupleHeapMatchesReferenceQueue:
    def _drive(self, seed: int, operations: int = 400) -> None:
        rng = random.Random(seed)
        fast, reference = EventQueue(), _ReferenceEventQueue()
        fast_handles, reference_handles = [], []
        # Interleave pushes (with deliberate time collisions), cancels and
        # pops; both queues see the identical schedule.
        for step in range(operations):
            roll = rng.random()
            if roll < 0.6:
                time = rng.choice([0.0, 1.0, 1.0, 2.5, rng.uniform(0, 5)])
                label = f"event-{step}"
                fast_handles.append((fast.push(time, lambda: None), label))
                reference_handles.append(
                    (reference.push(time, lambda: None), label)
                )
            elif roll < 0.75 and fast_handles:
                victim = rng.randrange(len(fast_handles))
                fast_handles[victim][0].cancel()
                reference_handles[victim][0].cancel()
            else:
                fast_event = fast.pop()
                reference_event = reference.pop()
                if fast_event is None:
                    assert reference_event is None
                    continue
                assert (fast_event.time, fast_event.sequence) == (
                    reference_event.time,
                    reference_event.sequence,
                )
        # Drain: remaining live events must come out in the same order.
        while True:
            fast_event, reference_event = fast.pop(), reference.pop()
            if fast_event is None:
                assert reference_event is None
                break
            assert (fast_event.time, fast_event.sequence) == (
                reference_event.time,
                reference_event.sequence,
            )

    def test_same_pop_order_across_many_schedules(self):
        for seed in range(20):
            self._drive(seed)

    def test_push_item_orders_with_push(self):
        # Fast-path items and cancellable events share one total order.
        queue = EventQueue()
        queue.push_item(2.0, ("delivery", "late"))
        handle = queue.push(1.0, lambda: "timer")
        queue.push_item(1.0, ("delivery", "tied-after-timer"))
        popped = []
        while True:
            entry = queue.pop_item()
            if entry is None:
                break
            popped.append(entry)
        assert [time for time, _ in popped] == [1.0, 1.0, 2.0]
        assert popped[0][1] is handle.action
        assert popped[1][1] == ("delivery", "tied-after-timer")


class TestSeedForSeedRepeatability:
    # Message.uid is a process-global counter (every message instance is
    # unique by design), so runs are compared on the uid-free projection —
    # the same one the golden digests use.

    def test_flood_runs_identical(self):
        overlay = random_regular_overlay(150, degree=6, seed=2)
        first = run_flood(overlay, source=0, seed=5)
        second = run_flood(overlay, source=0, seed=5)
        assert observation_digest(first.simulator) == observation_digest(
            second.simulator
        )

    def test_lossy_runs_identical(self):
        overlay = random_regular_overlay(80, degree=6, seed=4)
        conditions = NetworkConditions.internet_like(
            loss_probability=0.1, jitter=0.02
        )
        digests = []
        for _ in range(2):
            sim = Simulator(overlay, seed=13, conditions=conditions)
            sim.populate(FloodNode)
            sim.node(0).originate("tx")
            sim.run_until_idle()
            digests.append(observation_digest(sim))
        assert digests[0] == digests[1]
