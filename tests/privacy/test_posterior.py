"""The posterior protocol: estimator surfaces and their argmax contract."""

import pytest

from repro.adversary.botnet import deploy_botnet
from repro.adversary.collusion import DcNetCollusionEstimator
from repro.adversary.first_spy import FirstSpyEstimator
from repro.adversary.rumor_centrality import RumorCentralityEstimator
from repro.network.conditions import NetworkConditions
from repro.network.topology import random_regular_overlay
from repro.privacy.posterior import (
    argmax,
    canonical_order,
    estimator_rank,
    normalize,
)
from repro.protocols import create_protocol


class TestPrimitives:
    def test_canonical_order_sorts_by_score_then_repr(self):
        scores = {"b": 1.0, "a": 1.0, "c": 2.0}
        assert [node for node, _ in canonical_order(scores)] == ["c", "a", "b"]

    def test_argmax_matches_canonical_order_head(self):
        scores = {"b": 1.0, "a": 1.0, "c": 2.0}
        assert argmax(scores) == canonical_order(scores)[0][0]
        assert argmax({}) is None

    def test_normalize(self):
        assert normalize({"a": 2.0, "b": 2.0}) == {"a": 0.5, "b": 0.5}
        assert normalize({}) == {}
        with pytest.raises(ValueError):
            normalize({"a": -1.0})
        with pytest.raises(ValueError):
            normalize({"a": 0.0})

    def test_estimator_rank_prefers_rank_method(self):
        class Ranked:
            def guess(self, payload_id):
                return "wrong"

            def rank(self, payload_id):
                return {"right": 1.0}

        assert estimator_rank(Ranked(), "tx") == {"right": 1.0}

    def test_estimator_rank_falls_back_to_point_mass(self):
        class PointGuess:
            def guess(self, payload_id):
                return "suspect" if payload_id == "tx" else None

        assert estimator_rank(PointGuess(), "tx") == {"suspect": 1.0}
        assert estimator_rank(PointGuess(), "other") == {}


@pytest.fixture(scope="module")
def flood_attack():
    """One flooded broadcast plus a 30% botnet, shared by the surface tests."""
    graph = random_regular_overlay(60, degree=6, seed=1)
    proto = create_protocol("flood")
    session = proto.build(graph, NetworkConditions(), seed=3)
    botnet = deploy_botnet(graph, 0.3, session.rng, protected={0})
    proto.broadcast(session, 0, "tx-1")
    return session, botnet


class TestFirstSpySurface:
    def test_guess_is_argmax_of_rank(self, flood_attack):
        session, botnet = flood_attack
        estimator = FirstSpyEstimator(session.simulator, botnet.observers)
        scores = estimator.rank("tx-1")
        assert scores
        assert estimator.guess("tx-1") == argmax(scores)

    def test_rank_orders_by_first_seen_time(self, flood_attack):
        session, botnet = flood_attack
        estimator = FirstSpyEstimator(session.simulator, botnet.observers)
        times = estimator.view.first_relayers("tx-1")
        scores = estimator.rank("tx-1")
        assert set(scores) == set(times)
        by_time = sorted(times, key=lambda n: (times[n], repr(n)))
        by_score = [node for node, _ in canonical_order(scores)]
        assert by_time == by_score

    def test_unseen_payload_is_blind(self, flood_attack):
        session, botnet = flood_attack
        estimator = FirstSpyEstimator(session.simulator, botnet.observers)
        assert estimator.rank("never-sent") == {}
        assert estimator.guess("never-sent") is None
        assert estimator.posterior("never-sent") == {}

    def test_posterior_is_normalised_rank(self, flood_attack):
        session, botnet = flood_attack
        estimator = FirstSpyEstimator(session.simulator, botnet.observers)
        posterior = estimator.posterior("tx-1")
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert argmax(posterior) == estimator.guess("tx-1")


class TestRumorCentralitySurface:
    def test_guess_is_argmax_of_rank(self, flood_attack):
        session, _ = flood_attack
        estimator = RumorCentralityEstimator(session.simulator)
        scores = estimator.rank("tx-1")
        assert scores
        assert estimator.guess("tx-1") == argmax(scores)

    def test_guess_matches_module_level_estimate(self, flood_attack):
        from repro.adversary.rumor_centrality import rumor_source_from_metrics

        session, _ = flood_attack
        estimator = RumorCentralityEstimator(session.simulator)
        assert estimator.guess("tx-1") == rumor_source_from_metrics(
            session.graph, session.simulator.metrics, "tx-1"
        )

    def test_prime_suspect_scores_one(self, flood_attack):
        session, _ = flood_attack
        scores = RumorCentralityEstimator(session.simulator).rank("tx-1")
        assert max(scores.values()) == pytest.approx(1.0)

    def test_empty_snapshot_is_blind(self, flood_attack):
        session, _ = flood_attack
        estimator = RumorCentralityEstimator(session.simulator)
        assert estimator.rank("never-sent") == {}
        assert estimator.guess("never-sent") is None


class TestDcCollusionSurface:
    @pytest.fixture(scope="class")
    def three_phase_session(self):
        graph = random_regular_overlay(24, degree=6, seed=2)
        proto = create_protocol("three_phase")
        session = proto.build(graph, NetworkConditions(), seed=4)
        proto.broadcast(session, 0, "tx-dc")
        return session

    def _group(self, session):
        system = session.state["system"]
        return set(system.directory.members_of(0))

    def test_spy_in_group_sees_honest_members(self, three_phase_session):
        session = three_phase_session
        group = self._group(session)
        spy = sorted(group - {0}, key=repr)[0]
        estimator = DcNetCollusionEstimator(session.simulator, {spy})
        scores = estimator.rank("tx-dc")
        assert scores
        assert set(scores) <= group - {spy}
        # Uniform over the honest members: ℓ-anonymity, made visible.
        assert len(set(scores.values())) == 1
        # More than one honest member left: the colluder must abstain.
        assert estimator.guess("tx-dc") is None

    def test_full_collusion_exposes_the_sender(self, three_phase_session):
        session = three_phase_session
        group = self._group(session)
        colluders = group - {0}
        estimator = DcNetCollusionEstimator(session.simulator, colluders)
        assert estimator.rank("tx-dc") == {0: 1.0}
        assert estimator.guess("tx-dc") == 0

    def test_outside_observer_is_blind(self, three_phase_session):
        session = three_phase_session
        group = self._group(session)
        outsiders = set(session.graph.nodes) - group
        spy = sorted(outsiders, key=repr)[0]
        estimator = DcNetCollusionEstimator(session.simulator, {spy})
        assert estimator.rank("tx-dc") == {}
        assert estimator.guess("tx-dc") is None


class TestHarnessIntegration:
    def test_dc_collusion_estimator_registered(self):
        from repro.analysis.experiment import ESTIMATORS, run_attack_experiment

        assert "dc_collusion" in ESTIMATORS
        graph = random_regular_overlay(30, degree=6, seed=5)
        result = run_attack_experiment(
            graph, "three_phase", 0.3, broadcasts=2, seed=1,
            estimator="dc_collusion",
        )
        assert result.estimator == "dc_collusion"
        assert result.privacy is not None
        # Colluders cannot break ℓ-anonymity: at most full-collusion guesses.
        assert result.detection.precision in (0.0, 1.0)

    def test_detection_identical_with_privacy_on_and_off(self):
        from repro.analysis.experiment import run_attack_experiment

        graph = random_regular_overlay(40, degree=6, seed=6)
        with_privacy = run_attack_experiment(
            graph, "flood", 0.25, broadcasts=4, seed=2
        )
        without = run_attack_experiment(
            graph, "flood", 0.25, broadcasts=4, seed=2, privacy=False
        )
        assert without.privacy is None
        assert with_privacy.privacy is not None
        assert with_privacy.detection == without.detection
        assert (
            with_privacy.messages_per_broadcast
            == without.messages_per_broadcast
        )

