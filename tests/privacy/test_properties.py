"""Property tests for the metric identities of the privacy engine.

The identities pinned here are the definitions the docs promise
(``docs/PRIVACY.md``): a uniform posterior over ``n`` candidates carries
``log2(n)`` bits of entropy, a point mass carries none, top-k success is
monotone in ``k``, and the streaming accumulator is exactly the mean of
its per-broadcast samples.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.entropy import min_entropy, shannon_entropy
from repro.privacy.intersection import combine_posteriors
from repro.privacy.metrics import PrivacyAccumulator, broadcast_privacy
from repro.privacy.posterior import argmax, normalize

#: Candidate populations: small enough to stay fast, large enough to bite.
sizes = st.integers(min_value=1, max_value=64)

#: Raw posterior surfaces: up to 16 string-named candidates with positive
#: weights spanning twelve orders of magnitude.
posteriors = st.dictionaries(
    st.text(alphabet="abcdefghij", min_size=1, max_size=3),
    st.floats(min_value=1e-9, max_value=1e3),
    min_size=1,
    max_size=16,
)


class TestEntropyIdentities:
    @given(n=sizes)
    def test_uniform_posterior_has_log2_n_entropy(self, n):
        posterior = {i: 1.0 / n for i in range(n)}
        assert shannon_entropy(posterior) == pytest.approx(math.log2(n) if n > 1 else 0.0)
        assert min_entropy(posterior) == pytest.approx(math.log2(n) if n > 1 else 0.0)

    @given(n=sizes, weight=st.floats(min_value=1e-6, max_value=1e6))
    def test_point_mass_has_zero_entropy(self, n, weight):
        posterior = {0: weight}
        posterior.update({i: 0.0 for i in range(1, n)})
        assert shannon_entropy(posterior) == pytest.approx(0.0)
        assert min_entropy(posterior) == pytest.approx(0.0)

    @given(scores=posteriors)
    def test_min_entropy_never_exceeds_shannon(self, scores):
        assert min_entropy(scores) <= shannon_entropy(scores) + 1e-9

    @given(scores=posteriors)
    def test_normalization_preserves_entropy_and_argmax(self, scores):
        normalised = normalize(scores)
        assert sum(normalised.values()) == pytest.approx(1.0)
        assert shannon_entropy(normalised) == pytest.approx(
            shannon_entropy(scores)
        )
        assert argmax(normalised) == argmax(scores)


class TestBroadcastPrivacyProperties:
    @given(scores=posteriors, population=st.integers(16, 256))
    def test_top_k_success_is_monotone_in_k(self, scores, population):
        truth = sorted(scores)[0]
        ladder = (1, 2, 3, 5, 8, 13)
        sample = broadcast_privacy(scores, truth, population, ladder)
        hits = list(sample.top_hits)
        assert hits == sorted(hits)  # False may never follow True

    @given(scores=posteriors, population=st.integers(16, 256))
    def test_metric_bounds(self, scores, population):
        truth = sorted(scores)[0]
        sample = broadcast_privacy(scores, truth, population)
        assert 0.0 - 1e-9 <= sample.entropy <= math.log2(population) + 1e-9
        assert sample.min_entropy <= sample.entropy + 1e-9
        assert 1 <= sample.anonymity_set <= population
        assert 1.0 - 1e-9 <= sample.expected_rank <= population + 1e-9

    @given(n=st.integers(min_value=2, max_value=64))
    def test_uniform_posterior_metrics(self, n):
        posterior = {i: 1.0 / n for i in range(n)}
        sample = broadcast_privacy(posterior, 0, population=n)
        assert sample.entropy == pytest.approx(math.log2(n))
        assert sample.normalized_anonymity == pytest.approx(1.0)
        assert sample.expected_rank == pytest.approx((n + 1) / 2)

    @given(lists=st.lists(posteriors, min_size=1, max_size=6),
           population=st.integers(16, 128))
    @settings(max_examples=25)
    def test_accumulator_is_the_mean_of_samples(self, lists, population):
        accumulator = PrivacyAccumulator(population)
        samples = [accumulator.add(scores, "t") for scores in lists]
        report = accumulator.report()
        assert report.entropy == pytest.approx(
            sum(s.entropy for s in samples) / len(samples)
        )
        assert report.expected_rank == pytest.approx(
            sum(s.expected_rank for s in samples) / len(samples)
        )


class TestIntersectionProperties:
    @given(scores=posteriors)
    def test_repeating_one_round_only_sharpens(self, scores):
        once = normalize(scores)
        twice = combine_posteriors([scores, scores])
        assert shannon_entropy(twice) <= shannon_entropy(once) + 1e-9
        assert argmax(twice) == argmax(once)

    @given(lists=st.lists(posteriors, min_size=1, max_size=5))
    @settings(max_examples=25)
    def test_combination_is_a_distribution_over_the_support(self, lists):
        combined = combine_posteriors(lists)
        support = set().union(*(set(scores) for scores in lists))
        assert set(combined) == support
        assert sum(combined.values()) == pytest.approx(1.0)
