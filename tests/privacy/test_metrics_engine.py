"""The privacy-metrics engine: per-broadcast samples and streaming means."""

import pytest

from repro.privacy.metrics import (
    BroadcastPrivacy,
    PrivacyAccumulator,
    PrivacyConfig,
    broadcast_privacy,
    summarize_intersection,
)


class TestPrivacyConfig:
    def test_defaults(self):
        config = PrivacyConfig()
        assert config.top_k == (1, 3, 5)
        assert config.intersection

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyConfig(top_k=())
        with pytest.raises(ValueError):
            PrivacyConfig(top_k=(0, 1))
        with pytest.raises(ValueError):
            PrivacyConfig(top_k=(3, 1))
        with pytest.raises(ValueError):
            PrivacyConfig(top_k=(1, 1, 3))


class TestBroadcastPrivacy:
    def test_point_mass_on_the_truth(self):
        sample = broadcast_privacy({"s": 1.0}, "s", population=100)
        assert sample.entropy == pytest.approx(0.0)
        assert sample.min_entropy == pytest.approx(0.0)
        assert sample.anonymity_set == 1
        assert sample.normalized_anonymity == pytest.approx(0.01)
        assert sample.expected_rank == 1.0
        assert sample.top_hits == (True, True, True)

    def test_uniform_posterior(self):
        posterior = {node: 1 / 8 for node in range(8)}
        sample = broadcast_privacy(posterior, 3, population=8)
        assert sample.entropy == pytest.approx(3.0)
        assert sample.min_entropy == pytest.approx(3.0)
        assert sample.anonymity_set == 8
        assert sample.normalized_anonymity == pytest.approx(1.0)
        # Ties average: the truth sits in the middle of the tie block.
        assert sample.expected_rank == pytest.approx(4.5)

    def test_blind_attacker_conventions(self):
        sample = broadcast_privacy({}, "s", population=64)
        assert sample.entropy == pytest.approx(6.0)
        assert sample.min_entropy == pytest.approx(6.0)
        assert sample.anonymity_set == 64
        assert sample.normalized_anonymity == 1.0
        assert sample.expected_rank == pytest.approx(32.5)
        assert sample.top_hits == (False, False, False)
        assert sample.candidates == 0

    def test_truth_ruled_out_sits_in_unranked_remainder(self):
        sample = broadcast_privacy(
            {"a": 0.5, "b": 0.5}, "s", population=10
        )
        assert sample.top_hits == (False, False, False)
        # 2 ranked candidates, truth uniform among the remaining 8.
        assert sample.expected_rank == pytest.approx(2 + 4.5)

    def test_tie_averaged_rank_ignores_repr(self):
        # Whatever the node names, a two-way tie at the top averages 1.5.
        for names in (("a", "z"), ("z", "a")):
            posterior = {names[0]: 0.4, names[1]: 0.4, "mid": 0.2}
            sample = broadcast_privacy(posterior, names[1], population=10)
            assert sample.expected_rank == pytest.approx(1.5)

    def test_top_k_is_deterministic_canonical_order(self):
        posterior = {"a": 0.4, "b": 0.4, "c": 0.2}
        # "a" precedes "b" by repr in the tie, so top-1 hits only for "a".
        assert broadcast_privacy(posterior, "a", 10, (1,)).top_hits == (True,)
        assert broadcast_privacy(posterior, "b", 10, (1,)).top_hits == (False,)
        assert broadcast_privacy(posterior, "b", 10, (2,)).top_hits == (True,)

    def test_vanishing_tail_does_not_enlarge_anonymity_set(self):
        posterior = {"a": 1.0, "b": 1e-30}
        sample = broadcast_privacy(posterior, "a", population=10)
        assert sample.anonymity_set == 1
        assert sample.candidates == 2

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            broadcast_privacy({"a": 1.0}, "a", population=0)


class TestAccumulator:
    def test_streaming_means(self):
        accumulator = PrivacyAccumulator(population=8, top_k=(1, 2))
        # Sender 7 hides in a uniform posterior (last in canonical order),
        # then is fully exposed: the means average a miss and a hit.
        accumulator.add({n: 1 / 8 for n in range(8)}, 7)
        accumulator.add({7: 1.0}, 7)
        report = accumulator.report()
        assert report.broadcasts == 2
        assert report.entropy == pytest.approx(1.5)
        assert report.top_k == (1, 2)
        assert report.top_k_success == (pytest.approx(0.5), pytest.approx(0.5))
        assert report.entropy == pytest.approx(accumulator.mean_entropy)

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccumulator(population=4).report()

    def test_to_metrics_flattening(self):
        accumulator = PrivacyAccumulator(population=4, top_k=(1, 3))
        accumulator.add({0: 1.0}, 0)
        intersection = summarize_intersection(
            [(0, 1, {0: 1.0})], population=4,
            single_round_entropy=accumulator.mean_entropy,
        )
        metrics = accumulator.report(intersection).to_metrics()
        assert metrics["privacy_entropy"] == pytest.approx(0.0)
        assert metrics["privacy_top1"] == 1.0
        assert metrics["privacy_top3"] == 1.0
        assert metrics["privacy_intersection_top1"] == 1.0
        assert "privacy_entropy_reduction" in metrics
        assert all(isinstance(v, float) for v in metrics.values())

    def test_metrics_without_intersection(self):
        accumulator = PrivacyAccumulator(population=4)
        accumulator.add({}, 0)
        metrics = accumulator.report().to_metrics()
        assert "privacy_intersection_entropy" not in metrics
        assert metrics["privacy_entropy"] == pytest.approx(2.0)


class TestSummarizeIntersection:
    def test_empty_outcomes(self):
        assert summarize_intersection([], 10, 1.0) is None

    def test_blind_senders_contribute_blind_metrics(self):
        report = summarize_intersection(
            [("s", 0, {})], population=16, single_round_entropy=4.0
        )
        assert report.senders == 1
        assert report.entropy == pytest.approx(4.0)
        assert report.top1_success == 0.0
        assert report.entropy_reduction == pytest.approx(0.0)

    def test_mixed_senders(self):
        report = summarize_intersection(
            [("a", 2, {"a": 1.0}), ("b", 1, {})],
            population=16,
            single_round_entropy=4.0,
        )
        assert report.senders == 2
        assert report.rounds_mean == pytest.approx(1.5)
        assert report.entropy == pytest.approx(2.0)
        assert report.top1_success == pytest.approx(0.5)
        assert report.entropy_reduction == pytest.approx(2.0)

    def test_sample_is_dataclass(self):
        sample = broadcast_privacy({"a": 1.0}, "a", 4)
        assert isinstance(sample, BroadcastPrivacy)
