"""Golden pins for the privacy metrics of two scenario presets.

One paper preset (E4: first-spy against flooding — the concentrated,
low-entropy regime) and one stress preset (mixed multi-sender three-phase —
the high-entropy regime the intersection attack bites into).  The values
are the exact metrics of each preset's base-seed repetition; drift in any
layer feeding the privacy engine — estimator surfaces, metric definitions,
intersection combination — fails here with the metric named.

When a change intentionally alters the privacy surface, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.scenarios import run_scenario_once, scenario
    from repro.scenarios.runner import experiment_metrics
    for name in ("e4_broadcast_deanonymization", "stress_mixed_senders"):
        metrics = experiment_metrics(run_scenario_once(scenario(name)))
        print(name, {k: v for k, v in metrics.items() if k.startswith("privacy")})
    EOF

and say so in the commit message (the committed scenario results under
``benchmarks/results/scenarios/`` must be regenerated in the same commit).
"""

import pytest

from repro.scenarios import run_scenario_once, scenario
from repro.scenarios.runner import experiment_metrics

GOLDEN_PRIVACY_METRICS = {
    "e4_broadcast_deanonymization": {
        "privacy_anonymity_set": 3.25,
        "privacy_entropy": 0.10921879751417052,
        "privacy_expected_rank": 28.75,
        "privacy_intersection_entropy": 0.10921879751417042,
        "privacy_intersection_top1": 0.5,
        "privacy_min_entropy": 0.06658795115299561,
        "privacy_norm_anonymity": 0.01625,
        "privacy_top1": 0.5,
        "privacy_top3": 0.8333333333333334,
        "privacy_top5": 0.8333333333333334,
    },
    "stress_mixed_senders": {
        "privacy_anonymity_set": 13.2,
        "privacy_entropy": 2.4485658422538057,
        "privacy_entropy_reduction": 0.02255047504837515,
        "privacy_expected_rank": 3.0,
        "privacy_intersection_entropy": 2.4260153672054305,
        "privacy_intersection_top1": 0.4,
        "privacy_min_entropy": 2.238737719472664,
        "privacy_norm_anonymity": 0.088,
        "privacy_top1": 0.4,
        "privacy_top3": 0.6,
        "privacy_top5": 0.8,
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN_PRIVACY_METRICS))
def test_preset_privacy_metrics_unchanged(name):
    metrics = experiment_metrics(run_scenario_once(scenario(name)))
    for key, expected in GOLDEN_PRIVACY_METRICS[name].items():
        assert metrics[key] == pytest.approx(expected, rel=1e-12), (
            f"{name}: {key} drifted; if intentional, regenerate the goldens "
            "(see module docstring)"
        )


def test_goldens_span_both_regimes():
    # The pinned pair is meaningful: one near-certain attacker (E4) and
    # one genuinely uncertain attacker (mixed senders) — so regressions in
    # either tail of the metric range are caught.
    e4 = GOLDEN_PRIVACY_METRICS["e4_broadcast_deanonymization"]
    mixed = GOLDEN_PRIVACY_METRICS["stress_mixed_senders"]
    assert e4["privacy_entropy"] < 0.5 < mixed["privacy_entropy"]
    assert mixed["privacy_entropy_reduction"] > 0.0
