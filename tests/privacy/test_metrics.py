"""Tests for anonymity, entropy and detection metrics."""

import math

import pytest

from repro.privacy.anonymity import anonymity_set_size, is_k_anonymous, k_anonymity_level
from repro.privacy.detection import DetectionStats, evaluate_attack
from repro.privacy.entropy import (
    normalized_entropy,
    obfuscation_gap,
    shannon_entropy,
    top_probability,
)


class TestAnonymity:
    def test_uniform_posterior_full_set(self):
        posterior = {node: 0.25 for node in "abcd"}
        assert anonymity_set_size(posterior) == 4
        assert k_anonymity_level(posterior) == 4
        assert is_k_anonymous(posterior, 4)
        assert not is_k_anonymous(posterior, 5)

    def test_certain_posterior(self):
        posterior = {"a": 1.0, "b": 0.0, "c": 0.0}
        assert anonymity_set_size(posterior) == 1
        assert k_anonymity_level(posterior) == 1
        assert not is_k_anonymous(posterior, 2)

    def test_skewed_posterior(self):
        posterior = {"a": 0.5, "b": 0.3, "c": 0.2}
        assert anonymity_set_size(posterior) == 3
        assert k_anonymity_level(posterior) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            anonymity_set_size({})
        with pytest.raises(ValueError):
            k_anonymity_level({})

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            is_k_anonymous({"a": 1.0}, 0)


class TestEntropy:
    def test_uniform_entropy_is_log2_n(self):
        posterior = {node: 1 / 8 for node in range(8)}
        assert shannon_entropy(posterior) == pytest.approx(3.0)
        assert normalized_entropy(posterior) == pytest.approx(1.0)

    def test_certain_posterior_zero_entropy(self):
        posterior = {"a": 1.0, "b": 0.0}
        assert shannon_entropy(posterior) == pytest.approx(0.0)
        assert normalized_entropy(posterior) == pytest.approx(0.0)

    def test_unnormalised_input_handled(self):
        posterior = {"a": 2.0, "b": 2.0}
        assert shannon_entropy(posterior) == pytest.approx(1.0)
        assert top_probability(posterior) == pytest.approx(0.5)

    def test_single_candidate_normalised_entropy(self):
        assert normalized_entropy({"a": 1.0}) == 0.0

    def test_obfuscation_gap_perfect(self):
        posterior = {node: 1 / 100 for node in range(100)}
        assert obfuscation_gap(posterior, population=100) == pytest.approx(0.0)

    def test_obfuscation_gap_certain(self):
        assert obfuscation_gap({"a": 1.0}, population=100) == pytest.approx(0.99)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy({})
        with pytest.raises(ValueError):
            shannon_entropy({"a": -0.5, "b": 1.5})
        with pytest.raises(ValueError):
            shannon_entropy({"a": 0.0})
        with pytest.raises(ValueError):
            obfuscation_gap({"a": 1.0}, population=0)

    def test_entropy_monotone_in_uncertainty(self):
        concentrated = {"a": 0.9, "b": 0.05, "c": 0.05}
        spread = {"a": 0.4, "b": 0.3, "c": 0.3}
        assert shannon_entropy(spread) > shannon_entropy(concentrated)
        assert math.isclose(sum(concentrated.values()), 1.0)


class TestDetection:
    def test_perfect_attack(self):
        stats = evaluate_attack([("a", "a"), ("b", "b")])
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.f1 == 1.0

    def test_always_wrong(self):
        stats = evaluate_attack([("a", "x"), ("b", "y")])
        assert stats.precision == 0.0
        assert stats.recall == 0.0
        assert stats.f1 == 0.0

    def test_abstaining_attacker(self):
        stats = evaluate_attack([("a", None), ("b", None)])
        assert stats.guesses == 0
        assert stats.precision == 1.0  # vacuous precision
        assert stats.recall == 0.0

    def test_mixed_outcomes(self):
        stats = evaluate_attack([("a", "a"), ("b", "x"), ("c", None), ("d", "d")])
        assert stats.total == 4
        assert stats.guesses == 3
        assert stats.correct == 2
        assert stats.precision == pytest.approx(2 / 3)
        assert stats.recall == pytest.approx(0.5)
        assert stats.detection_probability == pytest.approx(0.5)

    def test_empty_attack(self):
        stats = evaluate_attack([])
        assert stats.recall == 0.0
        assert isinstance(stats, DetectionStats)
