"""The multi-round intersection attack: combination math and end-to-end power."""

import pytest

from repro.privacy.intersection import IntersectionAttack, combine_posteriors
from repro.privacy.entropy import shannon_entropy


class TestCombinePosteriors:
    def test_consistent_suspect_wins(self):
        combined = combine_posteriors([
            {"s": 0.5, "x": 0.5},
            {"s": 0.5, "y": 0.5},
            {"s": 0.5, "z": 0.5},
        ])
        assert max(combined, key=combined.get) == "s"
        assert combined["s"] > 0.9

    def test_single_round_is_identity(self):
        combined = combine_posteriors([{"a": 0.75, "b": 0.25}])
        assert combined["a"] == pytest.approx(0.75)
        assert combined["b"] == pytest.approx(0.25)

    def test_empty_rounds_are_skipped(self):
        assert combine_posteriors([]) == {}
        assert combine_posteriors([{}, {}]) == {}
        combined = combine_posteriors([{}, {"a": 1.0}, {}])
        assert combined == {"a": 1.0}

    def test_entropy_drops_with_consistent_rounds(self):
        one_round = {"s": 0.4, "x": 0.3, "y": 0.3}
        rounds = [one_round, {"s": 0.4, "u": 0.3, "v": 0.3}]
        assert shannon_entropy(combine_posteriors(rounds)) < shannon_entropy(
            one_round
        )

    def test_floor_prevents_single_round_veto(self):
        # "s" is missing from one round; the floor keeps it alive, and its
        # two strong rounds still dominate the churny alternatives.
        rounds = [
            {"s": 0.9, "x": 0.1},
            {"y": 0.5, "z": 0.5},
            {"s": 0.9, "w": 0.1},
        ]
        combined = combine_posteriors(rounds)
        assert combined["s"] > 0.0
        assert max(combined, key=combined.get) == "s"

    def test_tiny_probabilities_do_not_underflow(self):
        # Denormal-scale tail probabilities must not crash the log floor.
        rounds = [{"s": 1.0, "x": 5e-324}, {"s": 1.0, "y": 5e-324}]
        combined = combine_posteriors(rounds)
        assert combined["s"] == pytest.approx(1.0)

    def test_bad_floor_rejected(self):
        with pytest.raises(ValueError):
            combine_posteriors([{"a": 1.0}], floor_ratio=0.0)
        with pytest.raises(ValueError):
            IntersectionAttack(floor_ratio=-1.0)


class TestIntersectionAttack:
    def test_accumulates_per_key(self):
        attack = IntersectionAttack()
        attack.observe("w1", {"a": 0.5, "b": 0.5})
        attack.observe("w1", {"a": 0.5, "c": 0.5})
        attack.observe("w2", {})
        assert attack.keys() == ["w1", "w2"]
        assert attack.rounds("w1") == 2
        assert attack.rounds("w2") == 0
        combined = attack.combined("w1")
        assert max(combined, key=combined.get) == "a"
        assert attack.combined("w2") == {}
        assert attack.combined("unknown") == {}

    def test_outcomes_cover_every_key(self):
        attack = IntersectionAttack()
        attack.observe("w1", {"a": 1.0})
        attack.observe("w2", {})
        outcomes = attack.outcomes()
        assert [key for key, _, _ in outcomes] == ["w1", "w2"]
        assert outcomes[0][1] == 1 and outcomes[1][1] == 0

    def test_observe_copies_scores(self):
        attack = IntersectionAttack()
        scores = {"a": 1.0}
        attack.observe("w", scores)
        scores["b"] = 5.0
        assert attack.combined("w") == {"a": 1.0}


class TestEndToEndDegradation:
    """The acceptance claim: linking rounds beats single-round first-spy."""

    @pytest.fixture(scope="class")
    def mixed_senders_result(self):
        from repro.scenarios import run_scenario_once, scenario

        return run_scenario_once(scenario("stress_mixed_senders"))

    def test_intersection_degrades_anonymity_on_mixed_senders(
        self, mixed_senders_result
    ):
        privacy = mixed_senders_result.privacy
        assert privacy is not None and privacy.intersection is not None
        linker = privacy.intersection
        # Five wallet hosts originate ten broadcasts: every sender has
        # linked rounds to multiply.
        assert linker.senders <= 5
        assert linker.rounds_mean > 1.0
        # The combined posterior is strictly sharper than the mean
        # single-round posterior, and names senders at least as often.
        assert linker.entropy < privacy.entropy
        assert linker.entropy_reduction > 0.0
        assert linker.top1_success >= privacy.top_k_success[0]

    def test_intersection_is_far_from_blind(self, mixed_senders_result):
        import math

        privacy = mixed_senders_result.privacy
        population = privacy.population
        blind_entropy = math.log2(population)
        blind_rank = (population + 1) / 2
        # The linked attacker is nowhere near the blind baseline the
        # three-phase protocol aims for: the posterior is concentrated and
        # the true wallet hosts rank near the top.
        assert privacy.intersection.entropy < blind_entropy / 2
        assert privacy.intersection.expected_rank < blind_rank / 5

