"""Tests for probabilistic gossip."""

import pytest

from repro.broadcast.gossip import GossipConfig, GossipNode, run_gossip
from repro.network.topology import random_regular_overlay


class TestGossip:
    def test_high_fanout_reaches_everyone(self):
        graph = random_regular_overlay(100, degree=8, seed=0)
        result = run_gossip(
            graph, source=0, config=GossipConfig(fanout=8), seed=1
        )
        assert result.reach == 100
        assert result.delivered_fraction == 1.0

    def test_low_fanout_uses_fewer_messages_than_flood(self):
        from repro.broadcast.flood import run_flood

        graph = random_regular_overlay(200, degree=8, seed=2)
        gossip = run_gossip(graph, source=0, config=GossipConfig(fanout=3), seed=3)
        flood = run_flood(graph, source=0, seed=3)
        assert gossip.messages < flood.messages

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            GossipNode(0, GossipConfig(fanout=0))

    def test_deterministic(self):
        graph = random_regular_overlay(100, degree=6, seed=4)
        a = run_gossip(graph, source=0, seed=5)
        b = run_gossip(graph, source=0, seed=5)
        assert a.messages == b.messages
        assert a.reach == b.reach

    def test_reach_non_trivial_with_moderate_fanout(self):
        graph = random_regular_overlay(100, degree=8, seed=6)
        result = run_gossip(graph, source=0, config=GossipConfig(fanout=4), seed=7)
        assert result.reach > 50
