"""Tests for the Dandelion stem/fluff baseline."""

import random

import networkx as nx
import pytest

from repro.broadcast.dandelion import (
    DandelionConfig,
    DandelionNode,
    assign_stem_successors,
    run_dandelion,
)
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay


class TestConfig:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            DandelionConfig(fluff_probability=0.0)
        with pytest.raises(ValueError):
            DandelionConfig(fluff_probability=1.5)

    def test_invalid_stem_length_rejected(self):
        with pytest.raises(ValueError):
            DandelionConfig(max_stem_length=0)


class TestStemSuccessors:
    def test_every_node_gets_a_neighbour(self):
        graph = random_regular_overlay(50, degree=4, seed=0)
        successors = assign_stem_successors(graph, random.Random(1))
        assert set(successors) == set(graph.nodes)
        for node, successor in successors.items():
            assert graph.has_edge(node, successor)

    def test_isolated_node_rejected(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(ValueError):
            assign_stem_successors(graph, random.Random(0))

    def test_reassignment_changes_some_successors(self):
        graph = random_regular_overlay(100, degree=6, seed=2)
        first = assign_stem_successors(graph, random.Random(1))
        second = assign_stem_successors(graph, random.Random(2))
        assert first != second


class TestDandelionRun:
    def test_reaches_all_nodes(self):
        graph = random_regular_overlay(200, degree=8, seed=0)
        result = run_dandelion(graph, source=0, seed=1)
        assert result.reach == 200
        assert result.completion_time is not None

    def test_has_stem_and_fluff_traffic(self):
        graph = random_regular_overlay(200, degree=8, seed=0)
        result = run_dandelion(
            graph, source=0, config=DandelionConfig(fluff_probability=0.2), seed=3
        )
        assert result.fluff_messages > 0
        assert result.stem_messages + result.fluff_messages == result.messages

    def test_stem_length_bounded(self):
        graph = random_regular_overlay(100, degree=6, seed=4)
        config = DandelionConfig(fluff_probability=0.01, max_stem_length=5)
        result = run_dandelion(graph, source=0, config=config, seed=5)
        assert result.reach == 100
        assert result.stem_messages <= 3 * 5  # a few stems may run concurrently

    def test_immediate_fluff_when_probability_one(self):
        graph = random_regular_overlay(50, degree=4, seed=6)
        config = DandelionConfig(fluff_probability=1.0)
        result = run_dandelion(graph, source=0, config=config, seed=7)
        assert result.stem_messages == 0
        assert result.reach == 50

    def test_deterministic(self):
        graph = random_regular_overlay(100, degree=6, seed=8)
        a = run_dandelion(graph, source=0, seed=9)
        b = run_dandelion(graph, source=0, seed=9)
        assert a.messages == b.messages
        assert a.stem_messages == b.stem_messages


class TestDandelionNode:
    def test_new_epoch_validates_neighbour(self):
        graph = nx.path_graph(4)
        sim = Simulator(graph, seed=0)
        successors = assign_stem_successors(graph, random.Random(0))
        sim.populate(lambda n: DandelionNode(n, stem_successor=successors[n]))
        node = sim.node(1)
        node.new_epoch(2)
        assert node.stem_successor == 2
        with pytest.raises(ValueError):
            node.new_epoch(3)

    def test_missing_successor_raises_at_use(self):
        graph = nx.path_graph(3)
        sim = Simulator(graph, seed=0)
        sim.populate(lambda n: DandelionNode(n, DandelionConfig(fluff_probability=0.001)))
        with pytest.raises(RuntimeError):
            sim.node(0).originate("tx")
            sim.run_until_idle()
