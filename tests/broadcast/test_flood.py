"""Tests for flood-and-prune broadcast."""

import networkx as nx
import pytest

from repro.broadcast.flood import FloodNode, run_flood
from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay


class TestFloodNode:
    def test_reaches_all_nodes(self):
        graph = random_regular_overlay(200, degree=8, seed=0)
        result = run_flood(graph, source=0, seed=1)
        assert result.reach == 200
        assert result.completion_time is not None

    def test_message_count_close_to_2e(self):
        graph = random_regular_overlay(200, degree=8, seed=0)
        result = run_flood(graph, source=0, seed=1)
        edges = graph.number_of_edges()
        assert graph.number_of_nodes() - 1 <= result.messages <= 2 * edges

    def test_originate_idempotent(self):
        graph = nx.path_graph(4)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        sim.node(0).originate("tx")
        sim.run_until_idle()
        # A path flooded from one endpoint needs exactly one message per edge;
        # the second originate() call must not add any traffic.
        assert sim.metrics.message_count() == graph.number_of_edges()

    def test_multiple_payloads_tracked_independently(self):
        graph = nx.cycle_graph(6)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodNode)
        sim.node(0).originate("tx-a")
        sim.node(3).originate("tx-b")
        sim.run_until_idle()
        assert sim.metrics.reach("tx-a") == 6
        assert sim.metrics.reach("tx-b") == 6

    def test_has_seen(self):
        graph = nx.path_graph(3)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        assert sim.node(0).has_seen("tx")
        assert not sim.node(2).has_seen("tx")
        sim.run_until_idle()
        assert sim.node(2).has_seen("tx")

    def test_unknown_kind_rejected(self):
        graph = nx.path_graph(3)
        sim = Simulator(graph, seed=0)
        sim.populate(FloodNode)
        with pytest.raises(ValueError):
            sim.node(1).on_message(0, Message(kind="bogus", payload_id="tx"))

    def test_deterministic(self):
        graph = random_regular_overlay(100, degree=6, seed=3)
        a = run_flood(graph, source=5, seed=4)
        b = run_flood(graph, source=5, seed=4)
        assert a.messages == b.messages
