"""Integration tests spanning multiple subsystems.

These tests exercise the same flows as the examples: wallet-created
transactions broadcast through the three-phase protocol, picked up into
mempools, mined into blocks, and attacked by a botnet adversary — all on one
simulated overlay.
"""

import random

import pytest

from repro.adversary.botnet import deploy_botnet
from repro.adversary.first_spy import FirstSpyEstimator
from repro.analysis.experiment import attack_experiment
from repro.blockchain import Blockchain, Mempool, Miner, Transaction, Wallet
from repro.core import Phase, ProtocolConfig, ThreePhaseBroadcast
from repro.network.topology import bitcoin_like_overlay, random_regular_overlay


class TestWalletToBlockFlow:
    def test_transaction_broadcast_and_mining(self):
        rng = random.Random(0)
        overlay = random_regular_overlay(80, degree=6, seed=0)
        protocol = ThreePhaseBroadcast(
            overlay, ProtocolConfig(group_size=4, diffusion_depth=2), seed=1
        )
        alice, bob = Wallet(rng, "alice"), Wallet(rng, "bob")
        tx = alice.create_transaction(bob, amount=25, fee=2)

        result = protocol.broadcast(source=10, payload=tx.serialize(),
                                    payload_id=tx.tx_id)
        assert result.delivered_fraction == 1.0

        # Every peer that received the broadcast can reconstruct the
        # transaction and add it to its mempool.
        recovered = Transaction.deserialize(tx.serialize())
        mempool = Mempool()
        assert mempool.add(recovered)

        chain = Blockchain(difficulty_bits=4)
        miner = Miner("miner", chain, mempool, rng=rng)
        block = miner.mine_block()
        assert block is not None
        assert chain.contains_transaction(tx.tx_id)
        assert miner.earned_fees == 2

    def test_broadcast_on_bitcoin_like_overlay_with_unreachable_nodes(self):
        overlay = bitcoin_like_overlay(60, 30, outgoing=6, seed=2)
        protocol = ThreePhaseBroadcast(
            overlay, ProtocolConfig(group_size=4, diffusion_depth=3), seed=3
        )
        # Broadcast from an unreachable node (the hardest case for privacy
        # according to the paper's reference [15]).
        unreachable_source = 75
        assert not overlay.nodes[unreachable_source]["reachable"]
        result = protocol.broadcast(unreachable_source, payload=b"tx from unreachable")
        assert result.delivered_fraction == 1.0


class TestPrivacyComparisonIntegration:
    @pytest.fixture(scope="class")
    def overlay(self):
        return random_regular_overlay(100, degree=8, seed=9)

    def test_three_phase_beats_flood_against_strong_botnet(self, overlay):
        flood = attack_experiment(overlay, "flood", 0.3, broadcasts=8, seed=4)
        private = attack_experiment(
            overlay, "three_phase", 0.3, broadcasts=8, seed=5,
            config=ProtocolConfig(group_size=5, diffusion_depth=3),
        )
        assert (
            private.detection.detection_probability
            <= flood.detection.detection_probability
        )

    def test_adversary_observes_dc_traffic_without_learning_sender(self, overlay):
        protocol = ThreePhaseBroadcast(
            overlay, ProtocolConfig(group_size=5, diffusion_depth=2), seed=6
        )
        source = 0
        result = protocol.broadcast(source, payload=b"observed tx")
        # Compromise two group members (not the source): the colluders see
        # all Phase-1 traffic addressed to them but every honest member sent
        # them indistinguishable random shares.
        observers = set(m for m in result.group if m != source)
        observers = set(sorted(observers, key=repr)[:2])
        estimator = FirstSpyEstimator(
            protocol.simulator, observers, kinds=("dc_exchange",)
        )
        posterior = estimator.posterior(result.payload_id)
        # The DC traffic alone singles nobody out: several honest members
        # appear as possible first relayers, not only the true source.
        assert len(posterior) >= 2
        honest_candidates = set(posterior) - {source}
        assert honest_candidates

    def test_phase_traffic_is_observable_by_botnet(self, overlay):
        protocol = ThreePhaseBroadcast(
            overlay, ProtocolConfig(group_size=4, diffusion_depth=2), seed=7
        )
        result = protocol.broadcast(source=3, payload=b"watched tx")
        botnet = deploy_botnet(overlay, 0.25, random.Random(8), protected={3})
        view_messages = [
            obs
            for obs in protocol.simulator.observations_for(botnet.observers)
            if obs.message.payload_id == result.payload_id
        ]
        # A quarter of the network sees a substantial part of the traffic.
        assert len(view_messages) > 0
        kinds = {obs.message.kind for obs in view_messages}
        assert "flood" in kinds or "ad_payload" in kinds


class TestRepeatedOperation:
    def test_many_sequential_broadcasts_stay_consistent(self):
        overlay = random_regular_overlay(60, degree=6, seed=11)
        protocol = ThreePhaseBroadcast(
            overlay, ProtocolConfig(group_size=3, diffusion_depth=2), seed=12
        )
        for index in range(5):
            result = protocol.broadcast(
                source=index * 11 % 60, payload=f"tx {index}".encode()
            )
            assert result.delivered_fraction == 1.0
            assert result.messages_total == sum(result.messages_by_phase.values())
        assert len(protocol.results) == 5

    def test_phase_ordering_holds_across_broadcasts(self):
        overlay = random_regular_overlay(60, degree=6, seed=13)
        protocol = ThreePhaseBroadcast(
            overlay, ProtocolConfig(group_size=3, diffusion_depth=2), seed=14
        )
        for index in range(3):
            result = protocol.broadcast(source=index, payload=f"tx {index}".encode())
            dc = result.timeline.start_of(Phase.DC_NET)
            diffusion = result.timeline.start_of(Phase.ADAPTIVE_DIFFUSION)
            assert dc is not None and diffusion is not None and dc <= diffusion
