"""Tests for the blockchain substrate."""

import random

import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import Miner
from repro.blockchain.transaction import Transaction
from repro.blockchain.wallet import Wallet


def make_tx(amount=10, fee=1, nonce=0, sender="alice", recipient="bob"):
    return Transaction(sender=sender, recipient=recipient, amount=amount,
                       fee=fee, nonce=nonce)


class TestTransaction:
    def test_serialization_roundtrip(self):
        tx = make_tx()
        assert Transaction.deserialize(tx.serialize()) == tx

    def test_tx_id_stable_and_unique(self):
        assert make_tx().tx_id == make_tx().tx_id
        assert make_tx(nonce=1).tx_id != make_tx(nonce=2).tx_id

    def test_invalid_amount_rejected(self):
        with pytest.raises(ValueError):
            make_tx(amount=0)

    def test_negative_fee_rejected(self):
        with pytest.raises(ValueError):
            make_tx(fee=-1)

    def test_invalid_bytes_rejected(self):
        with pytest.raises(ValueError):
            Transaction.deserialize(b"not json at all")


class TestWallet:
    def test_addresses_unique(self):
        rng = random.Random(0)
        assert Wallet(rng).address != Wallet(rng).address

    def test_create_transaction_advances_nonce(self):
        alice = Wallet(random.Random(0), label="alice")
        bob = Wallet(random.Random(1), label="bob")
        first = alice.create_transaction(bob, amount=5)
        second = alice.create_transaction(bob, amount=5)
        assert first.nonce == 0 and second.nonce == 1
        assert first.tx_id != second.tx_id
        assert first.recipient == bob.address

    def test_string_recipient_accepted(self):
        alice = Wallet(random.Random(0))
        tx = alice.create_transaction("some-address", amount=3)
        assert tx.recipient == "some-address"


class TestMempool:
    def test_add_and_duplicate(self):
        pool = Mempool()
        tx = make_tx()
        assert pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1
        assert tx.tx_id in pool

    def test_selection_orders_by_fee(self):
        pool = Mempool()
        low = make_tx(fee=1, nonce=1)
        high = make_tx(fee=10, nonce=2)
        mid = make_tx(fee=5, nonce=3)
        for tx in (low, high, mid):
            pool.add(tx)
        assert pool.select_for_block(2) == [high, mid]

    def test_eviction_when_full(self):
        pool = Mempool(max_size=2)
        pool.add(make_tx(fee=1, nonce=1))
        pool.add(make_tx(fee=5, nonce=2))
        assert pool.add(make_tx(fee=10, nonce=3))
        assert len(pool) == 2
        fees = sorted(tx.fee for tx in pool.all_transactions())
        assert fees == [5, 10]

    def test_low_fee_rejected_when_full(self):
        pool = Mempool(max_size=1)
        pool.add(make_tx(fee=5, nonce=1))
        assert not pool.add(make_tx(fee=1, nonce=2))

    def test_remove_and_get(self):
        pool = Mempool()
        tx = make_tx()
        pool.add(tx)
        assert pool.get(tx.tx_id) == tx
        assert pool.remove(tx.tx_id) == tx
        assert pool.get(tx.tx_id) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Mempool(max_size=0)
        with pytest.raises(ValueError):
            Mempool().select_for_block(-1)


class TestBlockAndChain:
    def test_genesis_exists(self):
        chain = Blockchain(difficulty_bits=0)
        assert len(chain) == 1
        assert chain.tip.height == 0

    def test_append_and_validate(self):
        chain = Blockchain(difficulty_bits=0)
        block = Block(height=1, previous_hash=chain.tip.block_hash,
                      transactions=(make_tx(),), miner="m")
        chain.append(block)
        assert len(chain) == 2
        assert chain.validate()
        assert chain.contains_transaction(make_tx().tx_id)
        assert chain.find_block_of(make_tx().tx_id) == block

    def test_wrong_previous_hash_rejected(self):
        chain = Blockchain(difficulty_bits=0)
        with pytest.raises(ValueError):
            chain.append(Block(height=1, previous_hash="bogus"))

    def test_wrong_height_rejected(self):
        chain = Blockchain(difficulty_bits=0)
        with pytest.raises(ValueError):
            chain.append(Block(height=5, previous_hash=chain.tip.block_hash))

    def test_duplicate_transaction_rejected(self):
        chain = Blockchain(difficulty_bits=0)
        tx = make_tx()
        chain.append(Block(height=1, previous_hash=chain.tip.block_hash,
                           transactions=(tx,)))
        with pytest.raises(ValueError):
            chain.append(Block(height=2, previous_hash=chain.tip.block_hash,
                               transactions=(tx,)))

    def test_difficulty_enforced(self):
        chain = Blockchain(difficulty_bits=200)  # essentially unreachable
        block = Block(height=1, previous_hash=chain.tip.block_hash)
        with pytest.raises(ValueError):
            chain.append(block)

    def test_block_fees_and_merkle(self):
        block = Block(height=1, previous_hash="x",
                      transactions=(make_tx(fee=2), make_tx(fee=3, nonce=5)))
        assert block.total_fees() == 5
        assert block.merkle_root() != Block(height=1, previous_hash="x").merkle_root()


class TestMiner:
    def test_mines_and_collects_fees(self):
        chain = Blockchain(difficulty_bits=4)
        pool = Mempool()
        for nonce in range(5):
            pool.add(make_tx(fee=nonce + 1, nonce=nonce))
        miner = Miner("miner-addr", chain, pool, block_size=3, rng=random.Random(0))
        block = miner.mine_block()
        assert block is not None
        assert len(block.transactions) == 3
        assert miner.earned_fees == sum(tx.fee for tx in block.transactions)
        assert len(pool) == 2

    def test_empty_mempool_produces_empty_block(self):
        chain = Blockchain(difficulty_bits=2)
        miner = Miner("m", chain, Mempool(), rng=random.Random(1))
        block = miner.mine_block()
        assert block is not None
        assert block.transactions == ()

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            Miner("m", Blockchain(), Mempool(), block_size=0)
