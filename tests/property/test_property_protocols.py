"""Property-based tests for protocol-level invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transitions import select_virtual_source, verify_virtual_source
from repro.crypto.pads import zero_bytes
from repro.dcnet.round import expected_messages, run_round
from repro.diffusion.virtual_source import keep_probability
from repro.groups.membership import GroupManager
from repro.groups.overlap import origin_probabilities
from repro.privacy.anonymity import anonymity_set_size
from repro.privacy.entropy import normalized_entropy, shannon_entropy


@settings(max_examples=30, deadline=None)
@given(
    group_size=st.integers(min_value=2, max_value=10),
    sender_index=st.integers(min_value=0),
    payload=st.binary(min_size=1, max_size=24),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_dcnet_round_invariants(group_size, sender_index, payload, seed):
    """One sender => everyone else recovers the message; cost is 3k(k-1)."""
    group = list(range(group_size))
    sender = group[sender_index % group_size]
    frame = payload + bytes(32 - len(payload))
    result = run_round(group, {sender: frame}, 32, random.Random(seed))
    assert result.messages_sent == expected_messages(group_size)
    for member in group:
        if member == sender:
            assert result.recovered_by(member) == zero_bytes(32)
        else:
            assert result.recovered_by(member) == frame


@settings(max_examples=40, deadline=None)
@given(
    half_t=st.integers(min_value=1, max_value=30),
    h_offset=st.integers(min_value=0),
    degree=st.integers(min_value=2, max_value=10),
)
def test_keep_probability_is_always_a_probability(half_t, h_offset, degree):
    t = 2 * half_t
    h = 1 + (h_offset % half_t)
    p = keep_probability(t, h, degree)
    assert 0.0 <= p <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=32),
    members=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                     max_size=12, unique=True),
)
def test_virtual_source_selection_is_a_member_and_verifiable(payload, members):
    selected = select_virtual_source(payload, members)
    assert selected in members
    assert verify_virtual_source(payload, members, selected)
    assert select_virtual_source(payload, list(reversed(members))) == selected


@settings(max_examples=25, deadline=None)
@given(
    population=st.integers(min_value=0, max_value=120),
    k=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_group_manager_size_invariant(population, k, seed):
    """After assigning any population, group sizes are in [k, 2k-1] whenever
    the population is at least k, and every node is in exactly one group."""
    manager = GroupManager(k, random.Random(seed))
    manager.assign_population(list(range(population)))
    members = [m for group in manager.groups for m in group.members]
    assert sorted(members) == list(range(population))
    if population >= k:
        for group in manager.groups:
            assert k <= group.size <= 2 * k - 1


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1,
                     max_size=30),
)
def test_entropy_bounds(weights):
    posterior = {index: weight for index, weight in enumerate(weights)}
    entropy = shannon_entropy(posterior)
    assert -1e-9 <= entropy
    assert 0.0 <= normalized_entropy(posterior) <= 1.0 + 1e-9
    assert 1 <= anonymity_set_size(posterior) <= len(weights)


@settings(max_examples=30, deadline=None)
@given(
    group_count=st.integers(min_value=1, max_value=5),
    group_size=st.integers(min_value=2, max_value=6),
    overlap_seed=st.integers(min_value=0, max_value=2**32 - 1),
    observed=st.integers(min_value=0),
)
def test_origin_probabilities_always_form_a_distribution(
    group_count, group_size, overlap_seed, observed
):
    rng = random.Random(overlap_seed)
    population = list(range(group_size * 3))
    groups = [rng.sample(population, group_size) for _ in range(group_count)]
    index = observed % group_count
    posterior = origin_probabilities(groups, index)
    assert abs(sum(posterior.values()) - 1.0) < 1e-9
    assert set(posterior) == set(groups[index])
    assert all(p > 0 for p in posterior.values())
