"""Property-based tests (hypothesis) for the crypto and framing substrates."""

import binascii
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.crc import append_crc, crc32, verify_crc
from repro.crypto.hashing import HASH_SPACE, hash_distance, hash_to_int
from repro.crypto.pads import combine_shares, split_into_shares, xor_bytes
from repro.dcnet.collision import decode_payload, encode_payload
from repro.dcnet.padding import pad_message, unpad_message


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_crc_matches_reference(data):
    assert crc32(data) == binascii.crc32(data)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_crc_framing_roundtrip(data):
    assert verify_crc(append_crc(data))


@settings(max_examples=60, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=128),
    flip=st.integers(min_value=0),
)
def test_crc_detects_any_single_byte_corruption(data, flip):
    framed = bytearray(append_crc(data))
    index = flip % len(framed)
    framed[index] ^= 0xFF
    assert not verify_crc(bytes(framed))


@settings(max_examples=60, deadline=None)
@given(
    message=st.binary(min_size=0, max_size=128),
    count=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_share_splitting_always_recombines(message, count, seed):
    shares = split_into_shares(message, count, random.Random(seed))
    assert len(shares) == count
    assert combine_shares(shares) == message


@settings(max_examples=60, deadline=None)
@given(
    a=st.binary(min_size=16, max_size=16),
    b=st.binary(min_size=16, max_size=16),
    c=st.binary(min_size=16, max_size=16),
)
def test_xor_is_commutative_associative_and_self_inverse(a, b, c):
    assert xor_bytes(a, b) == xor_bytes(b, a)
    assert xor_bytes(xor_bytes(a, b), c) == xor_bytes(a, xor_bytes(b, c))
    assert xor_bytes(xor_bytes(a, b), b) == a


@settings(max_examples=60, deadline=None)
@given(x=st.binary(min_size=0, max_size=64), y=st.binary(min_size=0, max_size=64))
def test_hash_distance_is_a_metric_on_the_ring(x, y):
    hx, hy = hash_to_int(x), hash_to_int(y)
    distance = hash_distance(hx, hy)
    assert 0 <= distance <= HASH_SPACE // 2
    assert hash_distance(hx, hx) == 0
    assert distance == hash_distance(hy, hx)


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=100),
    extra=st.integers(min_value=0, max_value=64),
)
def test_padding_roundtrip_for_any_fitting_frame(payload, extra):
    frame_length = len(payload) + 4 + extra
    assert unpad_message(pad_message(payload, frame_length)) == payload


@settings(max_examples=60, deadline=None)
@given(payload=st.binary(min_size=0, max_size=100), extra=st.integers(min_value=1, max_value=64))
def test_dcnet_frame_roundtrip(payload, extra):
    frame_length = len(payload) + 8 + extra
    frame = encode_payload(payload, frame_length)
    assert len(frame) == frame_length
    assert decode_payload(frame) == payload


@settings(max_examples=40, deadline=None)
@given(
    first=st.binary(min_size=1, max_size=60),
    second=st.binary(min_size=1, max_size=60),
)
def test_dcnet_collisions_are_detected(first, second):
    frame_length = max(len(first), len(second)) + 16
    a = encode_payload(first, frame_length)
    b = encode_payload(second, frame_length)
    collided = xor_bytes(a, b)
    # Either the two frames were identical (same payload) or the collision is
    # detected by the CRC.
    if first != second:
        assert decode_payload(collided) is None
