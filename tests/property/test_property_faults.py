"""Property-based invariants of the fault & adversary machinery.

Four laws the link/churn/threat layers must hold under *any* drawn
schedule, not just the committed presets:

* an offline or fully eclipsed node receives nothing, ever;
* message conservation — every ``send()`` either delivers (one
  observation) or is a counted ``churn_dropped``;
* a regional outage with a duration is fully transient: adjacency after
  the restore equals adjacency before the fault;
* the adaptive attacker's monitored sets are always valid — inside the
  overlay, outside the protected set, within budget.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.flood import FloodNode
from repro.network.churn import ChurnEvent, ChurnSchedule
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay
from repro.threat import AdaptiveMonitoringAdversary, RegionalOutageFault

NODES = 24
DEGREE = 4


def _simulator(topology_seed, sim_seed=0):
    graph = random_regular_overlay(
        num_nodes=NODES, degree=DEGREE, seed=topology_seed
    )
    simulator = Simulator(graph, seed=sim_seed)
    simulator.populate(FloodNode)
    return simulator, graph


@settings(max_examples=25, deadline=None)
@given(
    topology_seed=st.integers(min_value=0, max_value=50),
    victim=st.integers(min_value=0, max_value=NODES - 1),
    origin=st.integers(min_value=0, max_value=NODES - 1),
    eclipse=st.booleans(),
)
def test_offline_or_eclipsed_node_never_receives(
    topology_seed, victim, origin, eclipse
):
    if victim == origin:
        origin = (origin + 1) % NODES
    simulator, graph = _simulator(topology_seed)
    if eclipse:
        # Sever every overlay link of the victim (a total eclipse).
        for peer in graph.neighbors(victim):
            simulator.sever_link(victim, peer)
    else:
        simulator.fail_node(victim)
    simulator.node(origin).originate("tx")
    simulator.run_until_idle()
    assert victim not in simulator.metrics.delivered_nodes("tx")
    assert all(
        observation.receiver != victim
        for observation in simulator.store.iter_observations()
    )


@settings(max_examples=25, deadline=None)
@given(
    topology_seed=st.integers(min_value=0, max_value=50),
    events=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=NODES - 1),
            st.sampled_from(["leave", "rejoin"]),
        ),
        max_size=12,
    ),
    origins=st.lists(
        st.integers(min_value=0, max_value=NODES - 1),
        min_size=1, max_size=3, unique=True,
    ),
)
def test_churn_dropped_accounts_for_every_lost_send(
    topology_seed, events, origins
):
    simulator, graph = _simulator(topology_seed)
    ChurnSchedule(tuple(
        ChurnEvent(time, node, action) for time, node, action in events
    )).apply(simulator)

    sends = 0
    real_send = simulator.send

    def counting_send(sender, receiver, message, direct=False):
        nonlocal sends
        sends += 1
        return real_send(sender, receiver, message, direct=direct)

    simulator.send = counting_send
    for index, origin in enumerate(origins):
        simulator.node(origin).originate(f"tx-{index}")
    simulator.run_until_idle()
    # With zero loss, every transmission either lands (one observation)
    # or is a counted churn drop; nothing vanishes silently.
    receipts = len(simulator.store)
    assert simulator.churn_dropped == sends - receipts


@settings(max_examples=25, deadline=None)
@given(
    topology_seed=st.integers(min_value=0, max_value=50),
    fault_seed=st.integers(min_value=0, max_value=1000),
    radius=st.integers(min_value=1, max_value=3),
)
def test_regional_outage_restore_returns_adjacency_to_prefault_state(
    topology_seed, fault_seed, radius
):
    simulator, graph = _simulator(topology_seed)
    before = {node: simulator.neighbours_of(node) for node in graph}
    fault = RegionalOutageFault(radius=radius, start=0.5, duration=1.0)
    fault.schedule(graph, random.Random(fault_seed)).apply(simulator)
    simulator.run(until=1.0)
    assert simulator.offline_nodes  # the outage really happened
    simulator.run_until_idle()
    assert not simulator.offline_nodes
    after = {node: simulator.neighbours_of(node) for node in graph}
    assert after == before


@settings(max_examples=25, deadline=None)
@given(
    topology_seed=st.integers(min_value=0, max_value=50),
    placement_seed=st.integers(min_value=0, max_value=1000),
    protected=st.sets(
        st.integers(min_value=0, max_value=NODES - 1), max_size=4
    ),
    rounds=st.lists(
        st.dictionaries(
            # Scores may mention ids outside the overlay (a buggy or
            # adversarial estimator); the model must never monitor them.
            st.integers(min_value=-5, max_value=NODES + 5),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            max_size=8,
        ),
        min_size=1, max_size=5,
    ),
)
def test_adaptive_monitored_sets_are_always_valid(
    topology_seed, placement_seed, protected, rounds
):
    graph = random_regular_overlay(
        num_nodes=NODES, degree=DEGREE, seed=topology_seed
    )
    model = AdaptiveMonitoringAdversary(warmup=1)
    placed = model.place(
        graph, 0.2, random.Random(placement_seed), protected=protected
    )
    budget = model._budget
    assert placed <= set(graph.nodes)
    assert not placed & protected
    for index, scores in enumerate(rounds):
        monitored = model.after_broadcast(
            f"tx-{index}", 0, scores, graph, protected
        )
        if monitored is None:
            continue
        assert monitored <= set(graph.nodes)
        assert not monitored & protected
        assert len(monitored) <= budget
