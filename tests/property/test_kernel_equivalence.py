"""Golden-oracle property tests for the int-based DC-net byte kernels.

``repro.crypto.pads`` runs on Python big integers; the byte-at-a-time loop
implementations it replaced live on *here*, as reference oracles.  Two
classes of guarantee:

* **pure functions** (``xor_bytes``, ``combine_shares``, and the share
  arithmetic of ``split_into_shares`` given fixed pads) must match the
  byte-loop references exactly, on arbitrary inputs;
* **randomised pads**: the pad *stream* intentionally changed — one
  ``getrandbits(8·n)`` draw per pad instead of ``n`` single-byte draws (see
  the ``pads`` module docstring) — so the oracle for ``random_pad`` is the
  int-semantics reference, plus the distribution-free properties the DC-net
  relies on (length, determinism per seed, recombination).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pads import (
    combine_shares,
    random_pad,
    split_into_shares,
    xor_bytes,
)


# ----------------------------------------------------------------------
# Byte-loop reference implementations (pre-fast-path, kept verbatim)
# ----------------------------------------------------------------------
def reference_xor_bytes(*operands: bytes) -> bytes:
    result = bytearray(len(operands[0]))
    for op in operands:
        for i, byte in enumerate(op):
            result[i] ^= byte
    return bytes(result)


def reference_combine_shares(shares) -> bytes:
    return reference_xor_bytes(*shares)


def reference_last_share(message: bytes, other_shares) -> bytes:
    """The closing share: message XOR all random shares (byte loop)."""
    return reference_xor_bytes(message, *other_shares)


equal_length_operands = st.integers(min_value=0, max_value=96).flatmap(
    lambda n: st.lists(
        st.binary(min_size=n, max_size=n), min_size=1, max_size=6
    )
)


@settings(max_examples=80, deadline=None)
@given(operands=equal_length_operands)
def test_xor_bytes_matches_byte_loop_reference(operands):
    assert xor_bytes(*operands) == reference_xor_bytes(*operands)


@settings(max_examples=80, deadline=None)
@given(operands=equal_length_operands)
def test_combine_shares_matches_byte_loop_reference(operands):
    assert combine_shares(operands) == reference_combine_shares(operands)


@settings(max_examples=80, deadline=None)
@given(
    message=st.binary(min_size=0, max_size=96),
    count=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_split_arithmetic_matches_reference_on_its_own_pads(message, count, seed):
    """Share algebra equals the byte-loop reference, pad-for-pad.

    The random shares are whatever the generator drew; the *closing* share
    must be exactly what the byte-loop arithmetic computes from them, and
    recombination (both implementations) must return the message.
    """
    shares = split_into_shares(message, count, random.Random(seed))
    assert len(shares) == count
    assert all(len(share) == len(message) for share in shares)
    if count > 1:
        assert shares[-1] == reference_last_share(message, shares[:-1])
    assert combine_shares(shares) == message
    assert reference_combine_shares(shares) == message


@settings(max_examples=60, deadline=None)
@given(
    length=st.integers(min_value=0, max_value=96),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_pad_is_the_documented_single_draw(length, seed):
    """The pad generator is pinned to one ``getrandbits(8·n)`` per pad.

    This is the documented RNG-stream contract after the kernel rewrite: if
    it drifts (e.g. back to per-byte draws), every seeded DC-net expectation
    silently changes — so the draw semantics themselves are under test.
    """
    pad = random_pad(random.Random(seed), length)
    if length == 0:
        # Empty pads draw nothing (getrandbits(0) raises before py3.11).
        expected = b""
    else:
        expected = random.Random(seed).getrandbits(length * 8).to_bytes(
            length, "big"
        )
    assert pad == expected
    assert len(pad) == length


@settings(max_examples=60, deadline=None)
@given(
    message=st.binary(min_size=1, max_size=64),
    count=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_split_is_deterministic_per_seed(message, count, seed):
    first = split_into_shares(message, count, random.Random(seed))
    second = split_into_shares(message, count, random.Random(seed))
    assert first == second
