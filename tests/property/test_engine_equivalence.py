"""Engine-equivalence properties: every engine == the event loop, always.

The batched engine (:mod:`repro.network.batched`) re-implements delivery as
vectorised cohorts, and the sharded engine (:mod:`repro.network.sharded`)
spreads those cohorts over worker processes; both promise *bit-identical
observables*: for any seeded scenario, all engines must produce the same
observation log (time, endpoints, kind, payload, size, direct-flag — the
golden-digest definition), the same churn-drop and loss counters, and the
same delivery metrics.

The golden tests in ``tests/network/test_fastpath_determinism.py`` pin a
handful of fixed scenarios; these properties drive the same contract across
randomly drawn overlays, loss/jitter settings, node-churn schedules and
link sever/restore schedules — the regions where an engine divergence
would hide (a mid-flight topology change that one engine applies a cohort
late, a loss draw consumed out of order, a fan-out that ignores a severed
link, a cross-shard delivery ranked out of order).

For the sharded engine the draws deliberately cover both of its regimes:
flood without loss/jitter takes the multi-process window path, while
gossip (per-node RNG) and any lossy/jittery setting exercise its exact
in-process fallback.
"""

import hashlib
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.flood import FloodNode
from repro.broadcast.gossip import GossipConfig, GossipNode
from repro.network.churn import (
    random_churn_schedule,
    random_link_schedule,
)
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay


def observation_digest(sim: Simulator) -> str:
    """The golden-digest definition (same as the fast-path golden tests)."""
    digest = hashlib.sha256()
    for obs in sim.iter_observations():
        digest.update(
            repr(
                (
                    obs.time,
                    obs.receiver,
                    obs.sender,
                    obs.message.kind,
                    obs.message.payload_id,
                    obs.message.size_bytes,
                    obs.direct,
                )
            ).encode()
        )
    return digest.hexdigest()


def run_one(
    engine: str,
    protocol: str,
    overlay_seed: int,
    run_seed: int,
    size: int,
    degree: int,
    loss: float,
    jitter: float,
    churn_seed,
    link_seed,
    shards=None,
) -> dict:
    """One fully seeded broadcast on the chosen engine, all knobs applied."""
    overlay = random_regular_overlay(size, degree=degree, seed=overlay_seed)
    conditions = NetworkConditions(
        latency=ConstantLatency(0.25),
        loss_probability=loss,
        jitter=jitter,
    )
    sim = Simulator(
        overlay, seed=run_seed, conditions=conditions, engine=engine,
        shards=shards,
    )
    if protocol == "flood":
        sim.populate(FloodNode)
    else:
        config = GossipConfig(fanout=3)
        sim.populate(lambda node_id: GossipNode(node_id, config))
    # Source node 0 never churns, so the broadcast always starts.
    if churn_seed is not None:
        random_churn_schedule(
            overlay,
            leave_fraction=0.2,
            leave_time=0.4,
            rejoin_after=0.5,
            rng=random.Random(churn_seed),
            protected=(0,),
        ).apply(sim)
    if link_seed is not None:
        random_link_schedule(
            overlay,
            sever_fraction=0.25,
            sever_time=0.3,
            restore_after=0.6,
            rng=random.Random(link_seed),
        ).apply(sim)
    sim.node(0).originate("tx")
    sim.run_until_idle()
    return {
        "digest": observation_digest(sim),
        "events": len(sim.store),
        "churn_dropped": sim.churn_dropped,
        "lost": sim.dropped_messages,
        "reach": sim.metrics.reach("tx"),
        "completion": sim.metrics.completion_time("tx"),
        "delivered": sim.metrics.delivered_nodes("tx"),
        "bytes": sim.metrics.bytes_sent(),
    }


engine_params = {
    "overlay_seed": st.integers(min_value=0, max_value=2**16),
    "run_seed": st.integers(min_value=0, max_value=2**16),
    # Even sizes only: a d-regular graph needs n*d even for odd degrees.
    "size": st.integers(min_value=5, max_value=30).map(lambda n: 2 * n),
    "degree": st.integers(min_value=3, max_value=6),
}


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(["flood", "gossip"]),
    loss=st.sampled_from([0.0, 0.1, 0.3]),
    jitter=st.sampled_from([0.0, 0.05]),
    **engine_params,
)
def test_engines_identical_on_static_overlays(
    protocol, loss, jitter, overlay_seed, run_seed, size, degree
):
    """No churn: every observable matches, including lossy/jittery runs."""
    event = run_one(
        "event", protocol, overlay_seed, run_seed, size, degree,
        loss, jitter, None, None,
    )
    batched = run_one(
        "batched", protocol, overlay_seed, run_seed, size, degree,
        loss, jitter, None, None,
    )
    assert batched == event
    sharded = run_one(
        "sharded", protocol, overlay_seed, run_seed, size, degree,
        loss, jitter, None, None, shards=2,
    )
    assert sharded == event


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(["flood", "gossip"]),
    churn_seed=st.integers(min_value=0, max_value=2**16),
    **engine_params,
)
def test_engines_identical_under_node_churn(
    protocol, churn_seed, overlay_seed, run_seed, size, degree
):
    """Random leave/rejoin schedules: identical logs and churn_dropped."""
    event = run_one(
        "event", protocol, overlay_seed, run_seed, size, degree,
        0.0, 0.0, churn_seed, None,
    )
    batched = run_one(
        "batched", protocol, overlay_seed, run_seed, size, degree,
        0.0, 0.0, churn_seed, None,
    )
    assert batched == event
    sharded = run_one(
        "sharded", protocol, overlay_seed, run_seed, size, degree,
        0.0, 0.0, churn_seed, None, shards=2,
    )
    assert sharded == event


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(["flood", "gossip"]),
    link_seed=st.integers(min_value=0, max_value=2**16),
    **engine_params,
)
def test_engines_identical_under_severed_links(
    protocol, link_seed, overlay_seed, run_seed, size, degree
):
    """Random sever/restore schedules: identical logs and drop counters."""
    event = run_one(
        "event", protocol, overlay_seed, run_seed, size, degree,
        0.0, 0.0, None, link_seed,
    )
    batched = run_one(
        "batched", protocol, overlay_seed, run_seed, size, degree,
        0.0, 0.0, None, link_seed,
    )
    assert batched == event
    sharded = run_one(
        "sharded", protocol, overlay_seed, run_seed, size, degree,
        0.0, 0.0, None, link_seed, shards=2,
    )
    assert sharded == event


@settings(max_examples=15, deadline=None)
@given(
    protocol=st.sampled_from(["flood", "gossip"]),
    loss=st.sampled_from([0.0, 0.15]),
    churn_seed=st.integers(min_value=0, max_value=2**16),
    link_seed=st.integers(min_value=0, max_value=2**16),
    **engine_params,
)
def test_engines_identical_under_combined_stress(
    protocol, loss, churn_seed, link_seed,
    overlay_seed, run_seed, size, degree,
):
    """Loss + node churn + link churn at once — the full adversarial mix."""
    event = run_one(
        "event", protocol, overlay_seed, run_seed, size, degree,
        loss, 0.0, churn_seed, link_seed,
    )
    batched = run_one(
        "batched", protocol, overlay_seed, run_seed, size, degree,
        loss, 0.0, churn_seed, link_seed,
    )
    assert batched == event
    sharded = run_one(
        "sharded", protocol, overlay_seed, run_seed, size, degree,
        loss, 0.0, churn_seed, link_seed, shards=2,
    )
    assert sharded == event
