"""Tests for the virtual-source token and the alpha probability."""

import pytest

from repro.diffusion.virtual_source import (
    VirtualSourceToken,
    keep_probability,
    transfer_probability,
)


class TestKeepProbability:
    def test_is_a_probability(self):
        for degree in [2, 3, 4, 8]:
            for t in range(2, 21, 2):
                for h in range(1, t // 2 + 1):
                    p = keep_probability(t, h, degree)
                    assert 0.0 <= p <= 1.0

    def test_line_graph_formula(self):
        # d=2: alpha(t, h) = (t - 2h + 2) / (t + 2)
        assert keep_probability(4, 1, 2) == pytest.approx(4 / 6)
        assert keep_probability(4, 2, 2) == pytest.approx(2 / 6)

    def test_regular_tree_formula(self):
        # d=3, t=4, h=1: ((2)^(2) - 1) / ((2)^(3) - 1) = 3/7
        assert keep_probability(4, 1, 3) == pytest.approx(3 / 7)

    def test_monotone_in_h(self):
        # The farther the token already travelled, the more likely it keeps
        # moving (keep probability decreases with h).
        values = [keep_probability(10, h, 4) for h in range(1, 6)]
        assert values == sorted(values, reverse=True)

    def test_transfer_is_complement(self):
        assert transfer_probability(6, 2, 3) == pytest.approx(
            1 - keep_probability(6, 2, 3)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            keep_probability(3, 1, 3)  # odd t
        with pytest.raises(ValueError):
            keep_probability(0, 1, 3)
        with pytest.raises(ValueError):
            keep_probability(4, 0, 3)
        with pytest.raises(ValueError):
            keep_probability(4, 3, 3)  # h > t/2
        with pytest.raises(ValueError):
            keep_probability(4, 1, 1)  # degree < 2


class TestVirtualSourceToken:
    def test_advanced_increments_time_only(self):
        token = VirtualSourceToken(payload_id="tx", t=4, h=2, previous="a")
        advanced = token.advanced()
        assert advanced.t == 6
        assert advanced.h == 2
        assert advanced.previous == "a"

    def test_passed_to_increments_time_and_hops(self):
        token = VirtualSourceToken(payload_id="tx", t=4, h=2, previous="a", path=["a"])
        passed = token.passed_to("b", "current")
        assert passed.t == 6
        assert passed.h == 3
        assert passed.previous == "current"
        assert passed.path == ["a", "b"]

    def test_original_token_unchanged(self):
        token = VirtualSourceToken(payload_id="tx", t=2, h=1)
        token.passed_to("b", "a")
        token.advanced()
        assert token.t == 2 and token.h == 1
