"""Tests for the per-node infection bookkeeping."""

from repro.diffusion.spreading import InfectionState


class TestInfectionState:
    def test_first_reception_sets_parent_and_time(self):
        state = InfectionState(payload_id="tx")
        assert state.note_received("a", 3.5)
        assert state.parent == "a"
        assert state.delivered_at == 3.5

    def test_duplicate_reception_does_not_change_parent(self):
        state = InfectionState(payload_id="tx")
        state.note_received("a", 1.0)
        assert not state.note_received("b", 2.0)
        assert state.parent == "a"
        assert state.delivered_at == 1.0
        assert state.received_from == {"a", "b"}

    def test_origin_has_no_parent(self):
        state = InfectionState(payload_id="tx")
        assert state.note_received(None, 0.0)
        assert state.parent is None

    def test_add_children_deduplicates(self):
        state = InfectionState(payload_id="tx")
        state.add_children(["a", "b"])
        state.add_children(["b", "c"])
        assert state.children == ["a", "b", "c"]

    def test_wave_processing_is_idempotent(self):
        state = InfectionState(payload_id="tx")
        assert not state.already_processed(1)
        assert state.already_processed(1)
        assert not state.already_processed(2)

    def test_spread_targets_exclude_parent_children_and_sources(self):
        state = InfectionState(payload_id="tx")
        state.note_received("parent", 1.0)
        state.note_received("dup", 2.0)
        state.add_children(["child"])
        targets = state.spread_targets(
            ["parent", "dup", "child", "fresh1", "fresh2"], exclude="fresh2"
        )
        assert targets == ["fresh1"]

    def test_spread_targets_all_fresh(self):
        state = InfectionState(payload_id="tx")
        assert state.spread_targets(["a", "b"]) == ["a", "b"]
