"""Tests for the event-driven adaptive diffusion protocol."""

import networkx as nx
import pytest

from repro.diffusion.adaptive import (
    AdaptiveDiffusionConfig,
    AdaptiveDiffusionNode,
    run_adaptive_diffusion,
)
from repro.network.simulator import Simulator
from repro.network.topology import random_regular_overlay, regular_tree_overlay


def make_sim(graph, config=None, seed=0):
    sim = Simulator(graph, seed=seed)
    sim.populate(lambda node_id: AdaptiveDiffusionNode(node_id, config))
    return sim


class TestAdaptiveDiffusionProtocol:
    def test_reaches_all_nodes_on_regular_graph(self):
        graph = random_regular_overlay(100, degree=6, seed=1)
        result = run_adaptive_diffusion(graph, source=0, seed=2)
        assert result.reach == 100
        assert result.completion_time is not None

    def test_reaches_all_nodes_on_tree(self):
        graph = regular_tree_overlay(branching=3, depth=4)
        result = run_adaptive_diffusion(graph, source=5, seed=3)
        assert result.reach == graph.number_of_nodes()

    def test_costs_more_messages_than_spanning_tree(self):
        graph = random_regular_overlay(100, degree=6, seed=1)
        result = run_adaptive_diffusion(graph, source=0, seed=2)
        # At the very least every node but the source must receive the
        # payload once; adaptive diffusion adds control and duplicate traffic.
        assert result.payload_messages >= 99
        assert result.messages > result.payload_messages

    def test_message_kinds_present(self):
        graph = random_regular_overlay(60, degree=4, seed=4)
        result = run_adaptive_diffusion(graph, source=0, seed=5)
        kinds = result.simulator.metrics.kinds()
        assert kinds.get("ad_payload", 0) > 0
        assert kinds.get("ad_spread", 0) > 0
        # The token must have been created at least once (originator hand-off).
        assert kinds.get("ad_token", 0) >= 1

    def test_deterministic_under_seed(self):
        graph = random_regular_overlay(60, degree=4, seed=4)
        a = run_adaptive_diffusion(graph, source=0, seed=7)
        b = run_adaptive_diffusion(graph, source=0, seed=7)
        assert a.messages == b.messages
        assert a.completion_time == b.completion_time

    def test_max_rounds_sends_final_and_stops(self):
        graph = random_regular_overlay(200, degree=4, seed=8)
        config = AdaptiveDiffusionConfig(max_rounds=3)
        sim = make_sim(graph, config, seed=9)
        node = sim.node(0)
        node.originate("tx")
        sim.run_until_idle()
        kinds = sim.metrics.kinds()
        assert kinds.get("ad_final", 0) >= 1
        # With only 3 rounds the payload must not have reached the whole
        # (200-node) network: adaptive diffusion stopped early by design.
        assert sim.metrics.reach("tx") < 200

    def test_finished_hook_invoked(self):
        finished = []

        class Hooked(AdaptiveDiffusionNode):
            def on_diffusion_finished(self, payload_id):
                finished.append((self.node_id, payload_id))

        graph = random_regular_overlay(50, degree=4, seed=10)
        sim = Simulator(graph, seed=11)
        config = AdaptiveDiffusionConfig(max_rounds=2)
        sim.populate(lambda node_id: Hooked(node_id, config))
        sim.node(0).originate("tx")
        sim.run_until_idle()
        assert finished  # at least the final virtual source and tree nodes

    def test_token_moves_away_from_source(self):
        graph = regular_tree_overlay(branching=3, depth=5)
        sim = make_sim(graph, AdaptiveDiffusionConfig(max_rounds=6), seed=12)
        sim.node(0).originate("tx")
        sim.run_until_idle()
        holders = [
            node_id
            for node_id, node in sim.nodes.items()
            if node.infection_state("tx") is not None
            and node.infection_state("tx").delivered_at is not None
        ]
        assert 0 in holders
        assert len(holders) > 1

    def test_unknown_message_kind_rejected(self):
        graph = nx.path_graph(3)
        sim = make_sim(graph)
        from repro.network.message import Message

        with pytest.raises(ValueError):
            sim.node(1).on_message(0, Message(kind="bogus", payload_id="tx"))

    def test_become_virtual_source_spreads_immediately(self):
        graph = random_regular_overlay(30, degree=4, seed=13)
        sim = make_sim(graph, AdaptiveDiffusionConfig(max_rounds=2), seed=14)
        node = sim.node(5)
        node.become_virtual_source("tx")
        assert node.holds_token("tx")
        sim.run_until_idle()
        # All direct neighbours received the payload.
        for peer in sim.neighbours_of(5):
            assert sim.metrics.delivery_time(peer, "tx") is not None

    def test_run_respects_max_time(self):
        graph = random_regular_overlay(100, degree=4, seed=15)
        result = run_adaptive_diffusion(graph, source=0, seed=16, max_time=0.5)
        assert result.reach < 100
