"""End-to-end tests of the three-phase broadcast."""

import random

import pytest

from repro.adversary.botnet import deploy_botnet
from repro.adversary.collusion import group_collusion_posterior
from repro.adversary.first_spy import FirstSpyEstimator
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.phases import Phase
from repro.core.protocol import ThreePhaseNode
from repro.dcnet.round import expected_messages
from repro.network.topology import random_regular_overlay
from repro.privacy.anonymity import is_k_anonymous


@pytest.fixture(scope="module")
def overlay():
    return random_regular_overlay(150, degree=8, seed=7)


def make_protocol(overlay, k=4, d=3, seed=11):
    return ThreePhaseBroadcast(
        overlay, ProtocolConfig(group_size=k, diffusion_depth=d), seed=seed
    )


class TestThreePhaseBroadcast:
    def test_full_delivery(self, overlay):
        protocol = make_protocol(overlay)
        result = protocol.broadcast(source=0, payload=b"a transaction")
        assert result.reach == overlay.number_of_nodes()
        assert result.delivered_fraction == 1.0
        assert result.completion_time is not None

    def test_all_three_phases_produce_traffic(self, overlay):
        protocol = make_protocol(overlay)
        result = protocol.broadcast(source=0, payload=b"tx")
        assert result.messages_by_phase[Phase.DC_NET] > 0
        assert result.messages_by_phase[Phase.ADAPTIVE_DIFFUSION] > 0
        assert result.messages_by_phase[Phase.FLOOD] > 0
        assert result.messages_total == sum(result.messages_by_phase.values())

    def test_phase_timeline_ordering(self, overlay):
        protocol = make_protocol(overlay)
        result = protocol.broadcast(source=0, payload=b"tx")
        dc = result.timeline.start_of(Phase.DC_NET)
        diffusion = result.timeline.start_of(Phase.ADAPTIVE_DIFFUSION)
        flood = result.timeline.start_of(Phase.FLOOD)
        assert dc is not None and diffusion is not None and flood is not None
        assert dc <= diffusion <= flood

    def test_group_membership_and_virtual_source(self, overlay):
        protocol = make_protocol(overlay)
        result = protocol.broadcast(source=5, payload=b"tx")
        assert 5 in result.group
        assert result.virtual_source in result.group
        assert 4 <= len(result.group) <= 7  # k .. 2k-1 with k=4

    def test_dc_phase_message_count_matches_group_formula(self, overlay):
        protocol = make_protocol(overlay)
        result = protocol.broadcast(source=0, payload=b"tx")
        k = len(result.group)
        # One announcement round plus one payload round per delivery.
        assert result.messages_by_phase[Phase.DC_NET] == result.dc_rounds * 2 * expected_messages(k)

    def test_multiple_broadcasts_from_different_sources(self, overlay):
        protocol = make_protocol(overlay)
        first = protocol.broadcast(source=0, payload=b"tx one")
        second = protocol.broadcast(source=42, payload=b"tx two")
        assert first.payload_id != second.payload_id
        assert first.reach == second.reach == overlay.number_of_nodes()

    def test_node_accessor_returns_protocol_nodes(self, overlay):
        protocol = make_protocol(overlay)
        assert isinstance(protocol.node(0), ThreePhaseNode)

    def test_results_accumulate(self, overlay):
        protocol = make_protocol(overlay)
        protocol.broadcast(source=0, payload=b"tx one")
        protocol.broadcast(source=1, payload=b"tx two")
        assert len(protocol.results) == 2

    def test_explicit_payload_id_respected(self, overlay):
        protocol = make_protocol(overlay)
        result = protocol.broadcast(source=0, payload=b"tx", payload_id="my-id")
        assert result.payload_id == "my-id"

    def test_deterministic_given_seed(self, overlay):
        a = make_protocol(overlay, seed=3).broadcast(source=0, payload=b"tx")
        b = make_protocol(overlay, seed=3).broadcast(source=0, payload=b"tx")
        assert a.messages_total == b.messages_total
        assert a.virtual_source == b.virtual_source

    def test_auto_payload_ids_are_instance_local(self, overlay):
        """Auto-generated ids must not depend on process-global history.

        Two identically constructed systems hand out the same id sequence —
        the replayability property parallel sweeps rely on (a module-level
        counter would make ids depend on what else ran in the process).
        """
        first = make_protocol(overlay, seed=3)
        second = make_protocol(overlay, seed=3)
        result_a = first.broadcast(source=0, payload=b"tx")
        result_b = second.broadcast(source=0, payload=b"tx")
        assert result_a.payload_id == "payload-0"
        assert result_b.payload_id == "payload-0"
        assert first.broadcast(source=1, payload=b"tx2").payload_id == "payload-1"


class TestThreePhasePrivacy:
    def test_first_spy_rarely_identifies_source(self, overlay):
        # Compare against flooding, where the same adversary identifies the
        # source most of the time (see tests/adversary).  Here the DC-net and
        # the hash-selected virtual source decouple the first relayer from
        # the originator.
        protocol = make_protocol(overlay, seed=21)
        rng = random.Random(5)
        correct = 0
        trials = 8
        sources = [rng.randrange(overlay.number_of_nodes()) for _ in range(trials)]
        botnet = deploy_botnet(overlay, 0.2, rng, protected=set(sources))
        for index, source in enumerate(sources):
            result = protocol.broadcast(source, f"tx-{index}".encode())
            guess = FirstSpyEstimator(protocol.simulator, botnet.observers).guess(
                result.payload_id
            )
            if guess == source:
                correct += 1
        assert correct <= trials // 2

    def test_group_collusion_preserves_k_anonymity(self, overlay):
        protocol = make_protocol(overlay, k=5, seed=23)
        result = protocol.broadcast(source=0, payload=b"tx")
        compromised = [m for m in result.group if m != 0][:2]
        posterior = group_collusion_posterior(result.group, compromised, true_sender=0)
        honest = len(result.group) - len(compromised)
        assert is_k_anonymous(posterior, honest)

    def test_virtual_source_not_biased_to_originator(self, overlay):
        protocol = make_protocol(overlay, seed=29)
        hits = 0
        trials = 12
        for index in range(trials):
            result = protocol.broadcast(source=3, payload=f"tx-{index}".encode())
            if result.virtual_source == 3:
                hits += 1
        # The originator should be selected roughly 1/|group| of the time,
        # certainly not always.
        assert hits < trials
