"""Tests for the protocol configuration, phases and the hash transition rule."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.phases import Phase, PhaseTimeline
from repro.core.transitions import select_virtual_source, verify_virtual_source


class TestProtocolConfig:
    def test_defaults_are_valid(self):
        config = ProtocolConfig()
        assert config.group_size >= 2
        assert config.max_group_size == 2 * config.group_size - 1

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            ProtocolConfig(group_size=1)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ProtocolConfig(diffusion_depth=0)

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            ProtocolConfig(dc_round_interval=0)
        with pytest.raises(ValueError):
            ProtocolConfig(diffusion_round_interval=-1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ProtocolConfig(payload_size_bytes=0)
        with pytest.raises(ValueError):
            ProtocolConfig(control_size_bytes=0)

    def test_frozen(self):
        config = ProtocolConfig()
        with pytest.raises(Exception):
            config.group_size = 10  # type: ignore[misc]


class TestPhaseTimeline:
    def test_record_keeps_first_occurrence(self):
        timeline = PhaseTimeline()
        timeline.record(Phase.DC_NET, 0.0)
        timeline.record(Phase.DC_NET, 5.0)
        assert timeline.start_of(Phase.DC_NET) == 0.0

    def test_missing_phase_is_none(self):
        timeline = PhaseTimeline()
        assert timeline.start_of(Phase.FLOOD) is None
        assert timeline.duration_of(Phase.FLOOD, end_time=10.0) is None

    def test_durations_partition_the_run(self):
        timeline = PhaseTimeline()
        timeline.record(Phase.DC_NET, 0.0)
        timeline.record(Phase.ADAPTIVE_DIFFUSION, 2.0)
        timeline.record(Phase.FLOOD, 6.0)
        assert timeline.duration_of(Phase.DC_NET, end_time=10.0) == 2.0
        assert timeline.duration_of(Phase.ADAPTIVE_DIFFUSION, end_time=10.0) == 4.0
        assert timeline.duration_of(Phase.FLOOD, end_time=10.0) == 4.0


class TestVirtualSourceSelection:
    def test_deterministic_and_verifiable(self):
        group = list(range(8))
        selected = select_virtual_source(b"some tx", group)
        assert selected in group
        assert verify_virtual_source(b"some tx", group, selected)

    def test_wrong_claim_detected(self):
        group = list(range(8))
        selected = select_virtual_source(b"some tx", group)
        impostor = next(member for member in group if member != selected)
        assert not verify_virtual_source(b"some tx", group, impostor)

    def test_independent_of_member_order(self):
        group = list(range(8))
        assert select_virtual_source(b"tx", group) == select_virtual_source(
            b"tx", list(reversed(group))
        )

    def test_varies_with_message(self):
        group = list(range(30))
        winners = {select_virtual_source(f"tx-{i}".encode(), group) for i in range(40)}
        assert len(winners) > 3

    def test_selection_roughly_uniform_over_members(self):
        # The hash rule must not favour particular members, otherwise the
        # virtual source (and its neighbourhood) would become predictable.
        group = list(range(5))
        counts = {member: 0 for member in group}
        for i in range(400):
            counts[select_virtual_source(f"payload-{i}".encode(), group)] += 1
        assert min(counts.values()) > 40

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            select_virtual_source(b"tx", [])
