"""Seed-for-seed equivalence of the registry harness with the legacy loop.

The golden numbers below were captured by running the pre-registry
``attack_experiment`` (the hard-coded if/elif implementation) at the commit
that introduced the protocol registry.  The shim must keep reproducing them
exactly: same detection counts, same mean message counts, for each of the
three protocol names the legacy signature supported.
"""

import pytest

from repro.analysis.experiment import attack_experiment, run_attack_experiment
from repro.broadcast.dandelion import DandelionConfig
from repro.core.config import ProtocolConfig
from repro.network import ConstantLatency, NetworkConditions
from repro.network.topology import random_regular_overlay
from repro.protocols import create_protocol

# (protocol, kwargs, (total, guesses, correct, messages_per_broadcast, floor))
GOLDEN = [
    ("flood", dict(adversary_fraction=0.3, broadcasts=6, seed=0),
     (6, 6, 3, 301.0, 1)),
    ("flood", dict(adversary_fraction=0.15, broadcasts=5, seed=7),
     (5, 5, 4, 301.0, 1)),
    ("dandelion", dict(adversary_fraction=0.2, broadcasts=5, seed=1),
     (5, 5, 1, 308.0, 1)),
    ("dandelion", dict(adversary_fraction=0.3, broadcasts=4, seed=3,
                       dandelion_config=DandelionConfig(fluff_probability=0.2)),
     (4, 4, 1, 307.25, 1)),
    ("three_phase", dict(adversary_fraction=0.2, broadcasts=4, seed=2,
                         config=ProtocolConfig(group_size=4, diffusion_depth=2)),
     (4, 4, 0, 531.25, 4)),
    ("three_phase", dict(adversary_fraction=0.3, broadcasts=3, seed=5,
                         config=ProtocolConfig(group_size=5, diffusion_depth=2)),
     (3, 3, 1, 681.3333333333334, 5)),
]


@pytest.fixture(scope="module")
def overlay():
    return random_regular_overlay(60, degree=6, seed=1)


class TestLegacyShimEquivalence:
    @pytest.mark.parametrize(
        "protocol, kwargs, expected",
        GOLDEN,
        ids=[f"{p}-seed{kw['seed']}" for p, kw, _ in GOLDEN],
    )
    def test_shim_reproduces_pre_registry_results(
        self, overlay, protocol, kwargs, expected
    ):
        result = attack_experiment(overlay, protocol, **kwargs)
        total, guesses, correct, messages, floor = expected
        assert result.protocol == protocol
        assert result.detection.total == total
        assert result.detection.guesses == guesses
        assert result.detection.correct == correct
        assert result.messages_per_broadcast == pytest.approx(messages)
        assert result.anonymity_floor == floor

    def test_shim_matches_explicit_registry_call(self, overlay):
        """The shim is exactly run_attack_experiment + legacy conditions."""
        via_shim = attack_experiment(
            overlay, "flood", adversary_fraction=0.3, broadcasts=6, seed=0
        )
        explicit = run_attack_experiment(
            overlay,
            create_protocol("flood"),
            adversary_fraction=0.3,
            broadcasts=6,
            seed=0,
            conditions=NetworkConditions(),
        )
        assert via_shim == explicit

    def test_shim_matches_explicit_three_phase_call(self, overlay):
        config = ProtocolConfig(group_size=4, diffusion_depth=2)
        via_shim = attack_experiment(
            overlay, "three_phase", adversary_fraction=0.2, broadcasts=4,
            seed=2, config=config,
        )
        explicit = run_attack_experiment(
            overlay,
            create_protocol("three_phase", config=config),
            adversary_fraction=0.2,
            broadcasts=4,
            seed=2,
            conditions=NetworkConditions(latency=ConstantLatency(0.1)),
        )
        assert via_shim == explicit

    def test_shim_rejects_unknown_protocol(self, overlay):
        with pytest.raises(ValueError):
            attack_experiment(overlay, "carrier-pigeon", 0.1)

    def test_shim_accepts_newly_registered_protocols(self, overlay):
        """Gossip and adaptive diffusion are reachable from the shim too."""
        result = attack_experiment(
            overlay, "gossip", adversary_fraction=0.2, broadcasts=3, seed=4
        )
        assert result.protocol == "gossip"
        assert result.detection.total == 3
        assert 0.0 < result.mean_reach <= 1.0


class TestDeterminism:
    def test_experiment_is_seed_deterministic(self, overlay):
        runs = [
            run_attack_experiment(
                overlay, "dandelion", adversary_fraction=0.25,
                broadcasts=4, seed=9,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_estimators_are_pluggable(self, overlay):
        first_spy = run_attack_experiment(
            overlay, "flood", adversary_fraction=0.3, broadcasts=3, seed=6,
            estimator="first_spy",
        )
        snapshot = run_attack_experiment(
            overlay, "flood", adversary_fraction=0.3, broadcasts=3, seed=6,
            estimator="rumor_centrality",
        )
        assert first_spy.estimator == "first_spy"
        assert snapshot.estimator == "rumor_centrality"
        # Same protocol runs (same seeds), different adversary analytics.
        assert first_spy.messages_per_broadcast == snapshot.messages_per_broadcast
        assert snapshot.detection.total == 3

    def test_unknown_estimator_rejected(self, overlay):
        with pytest.raises(ValueError, match="unknown estimator"):
            run_attack_experiment(
                overlay, "flood", 0.2, broadcasts=2, seed=0,
                estimator="crystal-ball",
            )
