"""Tests for NetworkConditions: loss, jitter, and their simulator threading."""

import networkx as nx
import pytest

from repro.analysis.experiment import run_attack_experiment
from repro.diffusion.adaptive import AdaptiveDiffusionConfig
from repro.network import ConstantLatency, NetworkConditions, PerEdgeLatency, Simulator
from repro.network.message import Message
from repro.network.node import Node
from repro.network.topology import random_regular_overlay
from repro.protocols import available_protocols, create_protocol


class SilentNode(Node):
    """Receives and records; never forwards."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now, sender, message))


class TestConditionsValidation:
    def test_loss_probability_range(self):
        with pytest.raises(ValueError):
            NetworkConditions(loss_probability=-0.1)
        with pytest.raises(ValueError):
            NetworkConditions(loss_probability=1.5)
        assert NetworkConditions(loss_probability=1.0).loss_probability == 1.0

    def test_jitter_must_be_non_negative(self):
        with pytest.raises(ValueError):
            NetworkConditions(jitter=-1.0)

    def test_lossy_flag(self):
        assert not NetworkConditions().lossy
        assert NetworkConditions(loss_probability=0.1).lossy
        assert NetworkConditions(jitter=0.5).lossy

    def test_build_latency_returns_instance_as_is(self):
        import random

        model = ConstantLatency(0.2)
        conditions = NetworkConditions(latency=model)
        assert conditions.build_latency(random.Random(0)) is model

    def test_build_latency_calls_factory_with_rng(self):
        import random

        conditions = NetworkConditions.internet_like(low=0.01, high=0.02)
        model = conditions.build_latency(random.Random(0))
        assert isinstance(model, PerEdgeLatency)
        assert 0.01 <= model.delay(0, 1) <= 0.02


class TestSimulatorThreading:
    def _pair_sim(self, conditions, seed=0):
        sim = Simulator(
            nx.path_graph(2),
            latency=ConstantLatency(1.0),
            seed=seed,
            conditions=conditions,
        )
        sim.populate(SilentNode)
        return sim

    def test_total_loss_drops_every_overlay_send(self):
        sim = self._pair_sim(NetworkConditions(loss_probability=1.0))
        for _ in range(5):
            sim.send(0, 1, Message(kind="m", payload_id="tx"))
        sim.run_until_idle()
        assert sim.node(1).received == []
        assert sim.dropped_messages == 5
        assert sim.dropped_count("tx") == 5
        assert sim.metrics.message_count(payload_id="tx") == 0

    def test_direct_sends_bypass_loss(self):
        sim = self._pair_sim(NetworkConditions(loss_probability=1.0))
        sim.send(0, 1, Message(kind="m", payload_id="tx"), direct=True)
        sim.run_until_idle()
        assert len(sim.node(1).received) == 1
        assert sim.dropped_messages == 0

    def test_jitter_adds_bounded_extra_delay(self):
        sim = self._pair_sim(NetworkConditions(jitter=3.0), seed=4)
        for _ in range(10):
            sim.send(0, 1, Message(kind="m", payload_id="tx"))
        sim.run_until_idle()
        arrival_times = [time for time, _, _ in sim.node(1).received]
        assert len(arrival_times) == 10
        assert all(1.0 <= time <= 4.0 for time in arrival_times)
        assert max(arrival_times) > 1.0  # some jitter was actually drawn

    def test_lossless_conditions_leave_runs_identical(self):
        """Zero loss/jitter consumes no randomness: same run as without."""

        def flood_reach(conditions):
            from repro.protocols import create_protocol

            graph = random_regular_overlay(20, degree=4, seed=2)
            proto = create_protocol("dandelion")
            session = proto.build(graph, conditions, seed=6)
            return proto.broadcast(session, 0, "tx")

        plain = flood_reach(NetworkConditions(latency=ConstantLatency(0.1)))
        lossless = flood_reach(
            NetworkConditions(
                latency=ConstantLatency(0.1), loss_probability=0.0, jitter=0.0
            )
        )
        assert plain == lossless

    def test_loss_is_seed_deterministic(self):
        def run(seed):
            sim = self._pair_sim(
                NetworkConditions(loss_probability=0.5), seed=seed
            )
            for index in range(20):
                sim.send(0, 1, Message(kind="m", payload_id=f"tx-{index}"))
            sim.run_until_idle()
            return [message.payload_id for _, _, message in sim.node(1).received]

        assert run(3) == run(3)
        assert run(3) != run(4)


def _registry_protocol(name):
    """Protocol instances bounded enough for lossy-loop tests."""
    if name == "adaptive_diffusion":
        return create_protocol(
            name,
            config=AdaptiveDiffusionConfig(max_rounds=8),
            max_time=200.0,
        )
    return create_protocol(name)


class TestLossDegradesReach:
    @pytest.mark.parametrize("name", available_protocols())
    def test_reach_degrades_monotonically_with_loss(self, name):
        """More link loss never helps delivery, for every registered protocol."""
        overlay = random_regular_overlay(24, degree=4, seed=9)
        reaches = []
        for loss in (0.0, 0.35, 0.85):
            conditions = NetworkConditions(
                latency=ConstantLatency(0.1), loss_probability=loss
            )
            result = run_attack_experiment(
                overlay,
                _registry_protocol(name),
                adversary_fraction=0.1,
                broadcasts=4,
                seed=11,
                conditions=conditions,
            )
            reaches.append(result.mean_reach)
        assert reaches[0] >= reaches[1] >= reaches[2]
        # Lossless delivery is (near-)complete; heavy loss visibly hurts.
        assert reaches[0] >= 0.9
        assert reaches[2] < reaches[0]

    def test_three_phase_keeps_group_reach_under_total_loss(self):
        """The DC-net phase uses reliable channels: the group always learns."""
        overlay = random_regular_overlay(20, degree=4, seed=3)
        conditions = NetworkConditions(
            latency=ConstantLatency(0.1), loss_probability=1.0
        )
        from repro.core.config import ProtocolConfig

        proto = create_protocol(
            "three_phase", config=ProtocolConfig(group_size=4)
        )
        session = proto.build(overlay, conditions, seed=5)
        outcome = proto.broadcast(session, 0, "tx-loss")
        assert outcome.reach >= 4  # at least the DC-net group
        assert outcome.delivered_fraction < 1.0
