"""Tests for the protocol registry and the adapter interface."""

import pytest

from repro.network import NetworkConditions
from repro.network.topology import random_regular_overlay
from repro.protocols import (
    BroadcastProtocol,
    FloodProtocol,
    SessionBroadcast,
    ThreePhaseProtocol,
    available_protocols,
    create_protocol,
    protocol_class,
    register_protocol,
)
from repro.protocols.registry import _REGISTRY


@pytest.fixture(scope="module")
def overlay():
    return random_regular_overlay(30, degree=4, seed=5)


class TestRegistry:
    def test_all_five_protocols_registered(self):
        assert available_protocols() == (
            "adaptive_diffusion",
            "dandelion",
            "flood",
            "gossip",
            "three_phase",
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            create_protocol("carrier-pigeon")

    def test_protocol_class_lookup(self):
        assert protocol_class("flood") is FloodProtocol

    def test_duplicate_registration_rejected(self):
        class Duplicate(FloodProtocol):
            name = "flood"

        with pytest.raises(ValueError, match="already registered"):
            register_protocol(Duplicate)
        assert _REGISTRY["flood"] is FloodProtocol

    def test_unnamed_protocol_rejected(self):
        class Nameless(BroadcastProtocol):
            def build(self, graph, conditions=None, seed=None):
                raise NotImplementedError

            def broadcast(self, session, source, payload_id):
                raise NotImplementedError

        with pytest.raises(ValueError, match="declares no protocol name"):
            register_protocol(Nameless)

    def test_options_forwarded_to_adapter(self):
        from repro.core.config import ProtocolConfig

        proto = create_protocol(
            "three_phase", config=ProtocolConfig(group_size=7)
        )
        assert proto.anonymity_floor() == 7


class TestAdapterInterface:
    def test_declared_message_kinds(self):
        assert create_protocol("flood").message_kinds == ("flood",)
        assert create_protocol("dandelion").message_kinds == (
            "dandelion_stem",
            "dandelion_fluff",
        )
        assert "ad_token" in create_protocol("adaptive_diffusion").message_kinds
        three_phase = create_protocol("three_phase")
        assert "dc_exchange" in three_phase.message_kinds
        assert "flood" in three_phase.message_kinds

    def test_anonymity_floors(self):
        assert create_protocol("flood").anonymity_floor() == 1
        assert create_protocol("gossip").anonymity_floor() == 1
        assert isinstance(create_protocol("three_phase"), ThreePhaseProtocol)
        assert create_protocol("three_phase").anonymity_floor() >= 2

    def test_only_three_phase_shares_sessions(self):
        shared = {
            name: create_protocol(name).shared_session
            for name in available_protocols()
        }
        assert shared == {
            "adaptive_diffusion": False,
            "dandelion": False,
            "flood": False,
            "gossip": False,
            "three_phase": True,
        }

    @pytest.mark.parametrize("name", [
        "adaptive_diffusion", "dandelion", "flood", "gossip", "three_phase",
    ])
    def test_every_protocol_runs_under_shared_conditions(self, overlay, name):
        """The acceptance criterion: one entry point, one environment."""
        conditions = NetworkConditions.ideal(delay=0.1)
        protocol = create_protocol(name)
        session = protocol.build(overlay, conditions, seed=3)
        assert session.conditions is conditions
        source = sorted(overlay.nodes)[0]
        outcome = protocol.broadcast(session, source, "tx-registry")
        assert isinstance(outcome, SessionBroadcast)
        assert outcome.source == source
        assert outcome.messages > 0
        # Under lossless conditions every protocol but gossip (bounded
        # fanout) delivers to the whole overlay.
        if name == "gossip":
            assert outcome.reach >= overlay.number_of_nodes() // 2
        else:
            assert outcome.reach == overlay.number_of_nodes()
            assert outcome.delivered_fraction == 1.0
            assert outcome.completion_time is not None

    def test_sessions_are_reproducible(self, overlay):
        protocol = create_protocol("dandelion")
        conditions = NetworkConditions()
        results = []
        for _ in range(2):
            session = protocol.build(overlay, conditions, seed=11)
            results.append(protocol.broadcast(session, 0, "tx"))
        assert results[0] == results[1]
