"""Hashing helpers for identities, messages and the phase transition rule.

The core protocol (Section IV-B of the paper) selects the initial virtual
source of Phase 2 as *"the node whose hashed identity, e.g., public key, is
closest to the hash of the message"*.  This module provides the identity and
message hashing as well as the distance metric and the selection helper used
by :mod:`repro.core.transitions`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, Union

HashableIdentity = Union[int, str, bytes]

#: Number of bits of the SHA-256 digest interpreted as an integer.
DIGEST_BITS = 256

#: Size of the identity/message hash space.
HASH_SPACE = 1 << DIGEST_BITS


def _to_bytes(value: HashableIdentity) -> bytes:
    """Convert an identity or message into bytes for hashing."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        # Fixed-width, signed-free representation so that hashing is stable.
        length = max(1, (value.bit_length() + 7) // 8)
        return value.to_bytes(length, "big")
    raise TypeError(f"cannot hash value of type {type(value)!r}")


def hash_bytes(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_to_int(data: HashableIdentity, *, domain: str = "") -> int:
    """Hash ``data`` into an integer in ``[0, HASH_SPACE)``.

    ``domain`` separates hash usages (identities vs. messages) so that a node
    identity can never accidentally collide with a message hash.
    """
    prefix = domain.encode("utf-8") + b"|" if domain else b""
    digest = hashlib.sha256(prefix + _to_bytes(data)).digest()
    return int.from_bytes(digest, "big")


def hash_identity(identity: HashableIdentity) -> int:
    """Hash a node identity (public key stand-in) into the hash space."""
    return hash_to_int(identity, domain="identity")


def hash_message(message: HashableIdentity) -> int:
    """Hash a message/transaction payload into the hash space."""
    return hash_to_int(message, domain="message")


def hash_distance(a: int, b: int) -> int:
    """Distance between two points of the hash space.

    The metric is the circular distance on the ring of size ``HASH_SPACE``.
    A ring metric (rather than plain absolute difference) keeps the selection
    unbiased for identities close to 0 or close to the maximum.
    """
    diff = abs(a - b) % HASH_SPACE
    return min(diff, HASH_SPACE - diff)


def closest_identity(
    message: HashableIdentity,
    identities: Iterable[HashableIdentity],
) -> HashableIdentity:
    """Return the identity whose hash is closest to the hash of ``message``.

    This is the deterministic, originator-independent and verifiable rule the
    paper uses for the Phase 1 to Phase 2 transition.  Ties are broken by the
    smaller identity hash, which every group member can verify locally.

    Raises:
        ValueError: if ``identities`` is empty.
    """
    candidates: Sequence[HashableIdentity] = list(identities)
    if not candidates:
        raise ValueError("cannot select the closest identity of an empty group")
    target = hash_message(message)

    def sort_key(identity: HashableIdentity):
        identity_hash = hash_identity(identity)
        return (hash_distance(identity_hash, target), identity_hash)

    return min(candidates, key=sort_key)
