"""Table-driven CRC-32 used to detect DC-net collisions.

The paper notes (Section III-B and V-A) that DC-net payloads *"should carry
CRC bits or a similar protection"* so that simultaneous senders — whose XORed
payloads produce garbage — are detected and can retry with a backoff.  This
module implements the standard CRC-32 (IEEE 802.3, reflected polynomial
``0xEDB88320``) from scratch so the library carries no hidden dependencies
for its integrity checks.
"""

from __future__ import annotations

from typing import List, Tuple

#: Reflected generator polynomial of CRC-32 (IEEE 802.3).
_POLYNOMIAL = 0xEDB88320

#: Number of bytes a CRC-32 checksum occupies when framed onto a payload.
CRC_BYTES = 4


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLYNOMIAL
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


class CRC32:
    """Incremental CRC-32 computation.

    Example:
        >>> crc = CRC32()
        >>> crc.update(b"hello ")
        >>> crc.update(b"world")
        >>> crc.digest() == crc32(b"hello world")
        True
    """

    def __init__(self) -> None:
        self._value = 0xFFFFFFFF

    def update(self, data: bytes) -> None:
        """Feed ``data`` into the running checksum."""
        value = self._value
        for byte in data:
            value = _TABLE[(value ^ byte) & 0xFF] ^ (value >> 8)
        self._value = value

    def digest(self) -> int:
        """Return the checksum of all data fed so far."""
        return self._value ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """Compute the CRC-32 checksum of ``data`` in one call."""
    crc = CRC32()
    crc.update(data)
    return crc.digest()


def append_crc(payload: bytes) -> bytes:
    """Frame ``payload`` with its 4-byte big-endian CRC-32 appended."""
    return payload + crc32(payload).to_bytes(CRC_BYTES, "big")


def split_crc(framed: bytes) -> Tuple[bytes, int]:
    """Split a framed message into ``(payload, checksum)``.

    Raises:
        ValueError: if ``framed`` is shorter than the checksum itself.
    """
    if len(framed) < CRC_BYTES:
        raise ValueError("framed message is shorter than a CRC-32 checksum")
    payload, checksum = framed[:-CRC_BYTES], framed[-CRC_BYTES:]
    return payload, int.from_bytes(checksum, "big")


def verify_crc(framed: bytes) -> bool:
    """Return ``True`` iff the framed message carries a valid checksum."""
    try:
        payload, checksum = split_crc(framed)
    except ValueError:
        return False
    return crc32(payload) == checksum
