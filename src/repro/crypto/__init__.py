"""Lightweight cryptographic substrate used by the privacy protocols.

The paper relies on a handful of cryptographic primitives: hashing node
identities and messages (for the Phase-1 to Phase-2 transition), pairwise
secret pads for the DC-network, CRC integrity bits to detect DC-net
collisions, and hash commitments for the blame protocol.  This package
implements all of them from scratch on top of :mod:`hashlib` and a
deterministic pad generator so that every experiment is reproducible.

Nothing in this package performs real network cryptography; the simulated
channels only need to be *unpredictable to non-members*, which a seeded
keystream provides while keeping experiments deterministic.
"""

from repro.crypto.crc import CRC32, append_crc, crc32, split_crc, verify_crc
from repro.crypto.commitments import Commitment, commit, verify_commitment
from repro.crypto.channels import ChannelKeystore, PairwiseChannel
from repro.crypto.hashing import (
    closest_identity,
    hash_bytes,
    hash_distance,
    hash_identity,
    hash_message,
    hash_to_int,
)
from repro.crypto.pads import random_pad, split_into_shares, xor_bytes, zero_bytes

__all__ = [
    "CRC32",
    "append_crc",
    "crc32",
    "split_crc",
    "verify_crc",
    "Commitment",
    "commit",
    "verify_commitment",
    "ChannelKeystore",
    "PairwiseChannel",
    "closest_identity",
    "hash_bytes",
    "hash_distance",
    "hash_identity",
    "hash_message",
    "hash_to_int",
    "random_pad",
    "split_into_shares",
    "xor_bytes",
    "zero_bytes",
]
