"""Simulated pairwise channels between DC-net group members.

The DC-net construction of the paper assumes that *"all nodes need to share
pairwise encrypted channels"*.  In this reproduction the channel does not
encrypt real network traffic; it models the two properties the privacy
argument needs:

* both endpoints derive the same keystream (so pads can be generated from
  shared secrets rather than transmitted, the classic DC-net optimisation),
* nobody outside the pair can predict the keystream.

Keystreams are derived with SHA-256 in counter mode from a per-pair seed,
which keeps every simulation deterministic under a fixed master seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Hashable, Tuple


class PairwiseChannel:
    """A shared-secret channel between two nodes.

    Both endpoints construct the channel with the same (unordered) pair of
    identities and the same secret seed, and therefore derive identical
    keystream bytes.

    Example:
        >>> a = PairwiseChannel(1, 2, secret=b"s")
        >>> b = PairwiseChannel(2, 1, secret=b"s")
        >>> a.keystream(0, 8) == b.keystream(0, 8)
        True
    """

    def __init__(self, local: Hashable, remote: Hashable, secret: bytes) -> None:
        self.local = local
        self.remote = remote
        first, second = sorted([repr(local), repr(remote)])
        self._label = f"{first}|{second}".encode("utf-8")
        self._secret = secret

    @property
    def endpoints(self) -> Tuple[Hashable, Hashable]:
        """The unordered pair of endpoints as ``(local, remote)``."""
        return (self.local, self.remote)

    def keystream(self, round_id: int, length: int) -> bytes:
        """Derive ``length`` keystream bytes for round ``round_id``.

        The same ``(pair, secret, round_id)`` always yields the same bytes on
        both endpoints, while different rounds yield independent streams.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        output = bytearray()
        counter = 0
        while len(output) < length:
            block = hashlib.sha256(
                self._secret
                + b"|"
                + self._label
                + b"|"
                + round_id.to_bytes(8, "big", signed=True)
                + b"|"
                + counter.to_bytes(8, "big")
            ).digest()
            output.extend(block)
            counter += 1
        return bytes(output[:length])


class ChannelKeystore:
    """Creates and caches pairwise channels for a set of nodes.

    A single keystore is shared by a simulation; each unordered node pair is
    assigned an independent random secret drawn from the keystore's RNG, so
    the whole construction is reproducible from one master seed.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._secrets: Dict[Tuple[str, str], bytes] = {}

    def _pair_key(self, a: Hashable, b: Hashable) -> Tuple[str, str]:
        first, second = sorted([repr(a), repr(b)])
        return (first, second)

    def channel(self, local: Hashable, remote: Hashable) -> PairwiseChannel:
        """Return the channel between ``local`` and ``remote``.

        The same secret is used regardless of which endpoint asks first.

        Raises:
            ValueError: if both endpoints are the same node.
        """
        if local == remote:
            raise ValueError("a pairwise channel needs two distinct endpoints")
        key = self._pair_key(local, remote)
        if key not in self._secrets:
            self._secrets[key] = bytes(
                self._rng.getrandbits(8) for _ in range(32)
            )
        return PairwiseChannel(local, remote, self._secrets[key])

    def __len__(self) -> int:
        return len(self._secrets)
