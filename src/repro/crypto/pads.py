"""XOR pads and share splitting for the DC-network.

Step 1 of the DC-net round (Fig. 4 of the paper) requires every member to
generate ``k`` random pads ``r_1 ... r_k`` of length ``n`` such that their
XOR equals the member's message (or the all-zero message when the member has
nothing to send).  These helpers implement the XOR arithmetic and the share
splitting used by :mod:`repro.dcnet`.

Implementation note — the kernels run on Python big integers, not byte
loops: a whole frame is one ``int.from_bytes``/``to_bytes`` round-trip and
one CPU-side XOR, which turns the per-byte interpreter loop (the dominant
cost of a DC-net round at kibibyte frame sizes) into a few C-level calls.
The byte-loop reference implementations live on as golden oracles in
``tests/property/test_kernel_equivalence.py``.

RNG stream change (documented, intentional): :func:`random_pad` draws each
pad as a *single* ``getrandbits(8 * n)`` call instead of ``n`` separate
``getrandbits(8)`` calls.  Pads are still uniform and deterministic per
seed, but a given seed now yields different pad bytes than the pre-fast-path
byte-at-a-time generator did, so any expectation pinned to exact pad bytes
of a seed had to be re-derived once (none of the repository's tests pinned
such bytes; determinism and recombination properties are unchanged and
remain under test).
"""

from __future__ import annotations

import random
from typing import List, Sequence


def zero_bytes(length: int) -> bytes:
    """Return ``length`` zero bytes (the DC-net "no message" payload)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return bytes(length)


def xor_bytes(*operands: bytes) -> bytes:
    """XOR an arbitrary number of equally long byte strings.

    Raises:
        ValueError: if no operands are given or the lengths differ.
    """
    if not operands:
        raise ValueError("xor_bytes needs at least one operand")
    length = len(operands[0])
    accumulator = 0
    for op in operands:
        if len(op) != length:
            raise ValueError(
                f"all operands must have the same length, got {len(op)} != {length}"
            )
        accumulator ^= int.from_bytes(op, "big")
    return accumulator.to_bytes(length, "big")


def random_pad(rng: random.Random, length: int) -> bytes:
    """Generate a uniformly random pad of ``length`` bytes.

    One ``getrandbits(8 * length)`` draw per pad (see the module docstring
    for the resulting RNG-stream change versus the byte-at-a-time reference).
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        # getrandbits(0) is a ValueError before Python 3.11, and the
        # byte-at-a-time reference drew nothing for empty pads either.
        return b""
    return rng.getrandbits(length * 8).to_bytes(length, "big")


def split_into_shares(
    message: bytes, count: int, rng: random.Random
) -> List[bytes]:
    """Split ``message`` into ``count`` shares whose XOR equals ``message``.

    The first ``count - 1`` shares are uniformly random; the last one is the
    XOR of the message with all other shares.  Any strict subset of shares is
    therefore uniformly distributed and reveals nothing about the message —
    the property the DC-net privacy argument relies on.

    Raises:
        ValueError: if ``count`` is not positive.
    """
    if count <= 0:
        raise ValueError("the number of shares must be positive")
    if count == 1:
        return [bytes(message)]
    length = len(message)
    if length == 0:
        # No bits to draw (getrandbits(0) raises before Python 3.11); the
        # reference behaviour for empty frames is empty shares, no draws.
        return [b""] * count
    bits = length * 8
    accumulator = int.from_bytes(message, "big")
    shares: List[bytes] = []
    for _ in range(count - 1):
        pad = rng.getrandbits(bits)
        accumulator ^= pad
        shares.append(pad.to_bytes(length, "big"))
    shares.append(accumulator.to_bytes(length, "big"))
    return shares


def combine_shares(shares: Sequence[bytes]) -> bytes:
    """Recombine shares produced by :func:`split_into_shares`."""
    if not shares:
        raise ValueError("cannot combine an empty share list")
    return xor_bytes(*shares)
