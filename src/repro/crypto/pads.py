"""XOR pads and share splitting for the DC-network.

Step 1 of the DC-net round (Fig. 4 of the paper) requires every member to
generate ``k`` random pads ``r_1 ... r_k`` of length ``n`` such that their
XOR equals the member's message (or the all-zero message when the member has
nothing to send).  These helpers implement the byte-level XOR arithmetic and
the share splitting used by :mod:`repro.dcnet`.
"""

from __future__ import annotations

import random
from typing import List, Sequence


def zero_bytes(length: int) -> bytes:
    """Return ``length`` zero bytes (the DC-net "no message" payload)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return bytes(length)


def xor_bytes(*operands: bytes) -> bytes:
    """XOR an arbitrary number of equally long byte strings.

    Raises:
        ValueError: if no operands are given or the lengths differ.
    """
    if not operands:
        raise ValueError("xor_bytes needs at least one operand")
    length = len(operands[0])
    for op in operands:
        if len(op) != length:
            raise ValueError(
                f"all operands must have the same length, got {len(op)} != {length}"
            )
    result = bytearray(length)
    for op in operands:
        for i, byte in enumerate(op):
            result[i] ^= byte
    return bytes(result)


def random_pad(rng: random.Random, length: int) -> bytes:
    """Generate a uniformly random pad of ``length`` bytes."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return bytes(rng.getrandbits(8) for _ in range(length))


def split_into_shares(
    message: bytes, count: int, rng: random.Random
) -> List[bytes]:
    """Split ``message`` into ``count`` shares whose XOR equals ``message``.

    The first ``count - 1`` shares are uniformly random; the last one is the
    XOR of the message with all other shares.  Any strict subset of shares is
    therefore uniformly distributed and reveals nothing about the message —
    the property the DC-net privacy argument relies on.

    Raises:
        ValueError: if ``count`` is not positive.
    """
    if count <= 0:
        raise ValueError("the number of shares must be positive")
    if count == 1:
        return [bytes(message)]
    shares = [random_pad(rng, len(message)) for _ in range(count - 1)]
    last = xor_bytes(message, *shares) if shares else bytes(message)
    shares.append(last)
    return shares


def combine_shares(shares: Sequence[bytes]) -> bytes:
    """Recombine shares produced by :func:`split_into_shares`."""
    if not shares:
        raise ValueError("cannot combine an empty share list")
    return xor_bytes(*shares)
