"""Hash commitments used by the simplified blame protocol.

Von Ahn et al. (the paper's reference [19]) make DC-net disruptions
attributable by having every member commit to its pads before the round and
open the commitments when a collision is suspected.  The blame protocol in
:mod:`repro.dcnet.blame` uses the binding-and-hiding hash commitments
implemented here.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

#: Number of random bytes used to blind a commitment.
NONCE_BYTES = 16


@dataclass(frozen=True)
class Commitment:
    """An opened or unopened commitment to a byte string.

    Attributes:
        digest: the published commitment value.
        value: the committed value; ``None`` while the commitment is unopened.
        nonce: the blinding nonce; ``None`` while the commitment is unopened.
    """

    digest: bytes
    value: bytes = None  # type: ignore[assignment]
    nonce: bytes = None  # type: ignore[assignment]

    def opened(self, value: bytes, nonce: bytes) -> "Commitment":
        """Return a copy of this commitment with the opening attached."""
        return Commitment(digest=self.digest, value=value, nonce=nonce)

    @property
    def is_open(self) -> bool:
        """Whether the opening information is attached."""
        return self.value is not None and self.nonce is not None


def _digest(value: bytes, nonce: bytes) -> bytes:
    return hashlib.sha256(b"commit|" + nonce + b"|" + value).digest()


def commit(value: bytes, rng: random.Random) -> Commitment:
    """Commit to ``value`` with a fresh random nonce.

    The returned :class:`Commitment` carries the opening so the committer can
    later publish it; only the ``digest`` field should be shared initially.
    """
    nonce = bytes(rng.getrandbits(8) for _ in range(NONCE_BYTES))
    return Commitment(digest=_digest(value, nonce), value=value, nonce=nonce)


def verify_commitment(commitment: Commitment) -> bool:
    """Check that an opened commitment is consistent with its digest."""
    if not commitment.is_open:
        return False
    return _digest(commitment.value, commitment.nonce) == commitment.digest
