"""Declarative scenario engine: specs, registry, presets and runner.

One layer describes every experiment of this repository as data — overlay
topology, network conditions, protocol, adversary, workload, seeds and
churn — and one runner executes it:

    >>> from repro.scenarios import ScenarioRunner, scenario
    >>> result = ScenarioRunner(processes=1).run(scenario("stress_lossy_wan"))
    >>> 0.0 < result.aggregate["mean_reach"] < 1.0
    True

``scripts/scenario.py`` is the CLI over this package (``list`` /
``describe`` / ``run``); ``docs/SCENARIOS.md`` catalogues the registered
presets.  Importing the package registers the built-in presets.
"""

from repro.scenarios.registry import (
    available_scenarios,
    register_scenario,
    scenario,
)
from repro.scenarios.runner import (
    CompiledScenario,
    ScenarioResult,
    ScenarioRunner,
    build_protocol,
    build_session,
    compile_scenario,
    experiment_metrics,
    observation_log_digest,
    run_scenario_once,
)
from repro.scenarios.spec import (
    TOPOLOGY_FAMILIES,
    AdversarySpec,
    ChurnSpec,
    ConditionsSpec,
    FaultSpec,
    PrivacySpec,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    WorkloadSpec,
)

from repro.scenarios import presets as _presets  # noqa: F401  (registers presets)

__all__ = [
    "available_scenarios",
    "register_scenario",
    "scenario",
    "CompiledScenario",
    "ScenarioResult",
    "ScenarioRunner",
    "build_protocol",
    "build_session",
    "compile_scenario",
    "experiment_metrics",
    "observation_log_digest",
    "run_scenario_once",
    "TOPOLOGY_FAMILIES",
    "AdversarySpec",
    "ChurnSpec",
    "ConditionsSpec",
    "FaultSpec",
    "PrivacySpec",
    "ScenarioSpec",
    "SeedPolicy",
    "TopologySpec",
    "WorkloadSpec",
]
