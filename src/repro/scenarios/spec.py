"""Declarative experiment specifications.

Every experiment in this repository is a point in the same grid: an overlay
*topology*, one set of *network conditions*, a *protocol* from the registry,
an *adversary* with an estimator, a *workload* of broadcasts, a *seed
policy*, and optionally a *churn* schedule.  :class:`ScenarioSpec` captures
that point as pure data — every field JSON-serializable, every run derivable
from the spec alone — so experiments can be named, catalogued
(:mod:`repro.scenarios.registry`), listed and executed from one CLI
(``scripts/scenario.py``), and diffed as text instead of as setup code.

A spec never holds live objects (graphs, simulators, protocol adapters);
compilation into those lives in :mod:`repro.scenarios.runner`.  The split
mirrors declarative simulation frameworks for sensor networks, where a
``models/`` layer describes scenarios and a single ``run`` entry point
enumerates and executes them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import networkx as nx

from repro.network.churn import ChurnEvent, ChurnSchedule, random_churn_schedule
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency
from repro.privacy.metrics import DEFAULT_TOP_K, PrivacyConfig
from repro.network.topology import (
    barabasi_albert_overlay,
    bitcoin_like_overlay,
    complete_overlay,
    erdos_renyi_overlay,
    line_overlay,
    random_regular_overlay,
    regular_tree_overlay,
    scale_free_overlay,
    small_world_overlay,
    watts_strogatz_overlay,
)

#: Topology families addressable from a :class:`TopologySpec`.  Every value
#: is a generator from :mod:`repro.network.topology` (all guarantee a
#: connected overlay).
TOPOLOGY_FAMILIES = {
    "random_regular": random_regular_overlay,
    "erdos_renyi": erdos_renyi_overlay,
    "barabasi_albert": barabasi_albert_overlay,
    "watts_strogatz": watts_strogatz_overlay,
    "small_world": small_world_overlay,
    "scale_free": scale_free_overlay,
    "line": line_overlay,
    "regular_tree": regular_tree_overlay,
    "complete": complete_overlay,
    "bitcoin_like": bitcoin_like_overlay,
}


@dataclass(frozen=True)
class TopologySpec:
    """An overlay topology as (family name, generator parameters).

    Example:
        >>> TopologySpec("random_regular",
        ...              {"num_nodes": 200, "degree": 8, "seed": 43})
        TopologySpec(family='random_regular', params={'num_nodes': 200, 'degree': 8, 'seed': 43})

    Pin a ``seed`` in ``params`` when the overlay must be identical across
    runs (every registered preset does); families without a ``seed``
    parameter (``line``, ``regular_tree``, ``complete``) are deterministic
    by construction.
    """

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            known = ", ".join(sorted(TOPOLOGY_FAMILIES))
            raise ValueError(
                f"unknown topology family {self.family!r} (known: {known})"
            )

    def build(self) -> nx.Graph:
        """Generate the overlay this spec describes."""
        return TOPOLOGY_FAMILIES[self.family](**dict(self.params))


@dataclass(frozen=True)
class ConditionsSpec:
    """A serializable description of :class:`NetworkConditions`.

    Two kinds cover every environment the experiments use:

    * ``"ideal"`` — constant ``delay`` per link (the paper's abstract time
      units);
    * ``"internet_like"`` — stable per-edge delays drawn uniformly from
      ``[low, high]`` (the Bitcoin-measurement-style environment).

    Both combine with ``loss_probability`` and ``jitter`` exactly as
    :class:`~repro.network.conditions.NetworkConditions` defines them.
    """

    kind: str = "internet_like"
    delay: float = 0.1
    low: float = 0.05
    high: float = 0.3
    loss_probability: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("ideal", "internet_like"):
            raise ValueError(
                f"unknown conditions kind {self.kind!r} "
                "(expected 'ideal' or 'internet_like')"
            )

    def build(self) -> NetworkConditions:
        """Instantiate the :class:`NetworkConditions` this spec describes."""
        if self.kind == "ideal":
            return NetworkConditions(
                latency=ConstantLatency(self.delay),
                loss_probability=self.loss_probability,
                jitter=self.jitter,
            )
        return NetworkConditions.internet_like(
            self.low,
            self.high,
            loss_probability=self.loss_probability,
            jitter=self.jitter,
        )


@dataclass(frozen=True)
class AdversarySpec:
    """The observer coalition, its source estimator and its behaviour model.

    ``fraction=0.0`` means no adversary (pure dissemination scenarios, e.g.
    the message-overhead benchmarks); the estimator then always abstains.

    ``model`` names an :class:`~repro.threat.base.AdversaryModel` from the
    :mod:`repro.threat` registry (``"static"``, ``"adaptive"``,
    ``"eclipse"``, ``"byzantine_dcnet"``, ...), configured through the
    flat, JSON-serializable ``model_params``.  The default ``"static"``
    with empty params is the historical uniform botnet and is omitted from
    the serialized form, so pre-existing spec digests stay valid.

    Both the estimator and the model are validated at construction time:
    unknown names raise ``KeyError`` listing the registered alternatives,
    so a typo in a scenario file fails before anything runs.
    """

    fraction: float = 0.2
    estimator: str = "first_spy"
    model: str = "static"
    model_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError("adversary fraction must be in [0, 1)")
        # Late imports: the registries live above the scenario layer.
        from repro.analysis.experiment import ESTIMATORS
        from repro.threat import create_adversary_model

        if self.estimator not in ESTIMATORS:
            known = ", ".join(sorted(ESTIMATORS))
            raise KeyError(
                f"unknown estimator {self.estimator!r} (registered: {known})"
            )
        object.__setattr__(self, "model_params", dict(self.model_params))
        # Raises KeyError for an unknown model name (registered names
        # listed) and TypeError for params the model does not accept.
        create_adversary_model(self.model, self.model_params)

    def build(self):
        """A fresh model instance for one run (``None`` for the static one).

        Models are stateful across a run's broadcasts, so every run gets
        its own instance; the static default returns ``None`` to keep the
        experiment loop on its historical code path.
        """
        if self.model == "static" and not self.model_params:
            return None
        from repro.threat import create_adversary_model

        return create_adversary_model(self.model, self.model_params)


@dataclass(frozen=True)
class FaultSpec:
    """One named correlated-fault model and its parameters.

    ``model`` names a :class:`~repro.threat.base.FaultModel` from the
    :mod:`repro.threat` registry (``"regional_outage"``,
    ``"flaky_links"``); unknown names raise ``KeyError`` listing the
    registered alternatives at construction time.  Each fault compiles
    into a deterministic churn schedule per session from the run seed.
    """

    model: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.threat import create_fault_model

        object.__setattr__(self, "params", dict(self.params))
        create_fault_model(self.model, self.params)

    def build(self):
        """A fresh fault-model instance."""
        from repro.threat import create_fault_model

        return create_fault_model(self.model, self.params)


@dataclass(frozen=True)
class PrivacySpec:
    """The privacy-metrics configuration of a scenario.

    Every run reports the information-theoretic anonymity metrics by
    default (entropy, min-entropy, anonymity set, expected rank, top-k
    success) plus the multi-round intersection attack; the metrics enter
    the per-repetition runs and therefore the run digest.  ``enabled=False``
    turns the whole measurement off (the runs then carry only the
    detection metrics, as before the privacy subsystem existed).
    """

    enabled: bool = True
    top_k: Tuple[int, ...] = DEFAULT_TOP_K
    intersection: bool = True

    def __post_init__(self) -> None:
        # Delegate the cutoff validation to the config the engine runs on.
        PrivacyConfig(top_k=tuple(self.top_k), intersection=self.intersection)
        # JSON round-trips deliver lists; store the canonical tuple.
        object.__setattr__(self, "top_k", tuple(self.top_k))

    def build(self) -> Optional[PrivacyConfig]:
        """The engine config this spec describes (``None`` when disabled)."""
        if not self.enabled:
            return None
        return PrivacyConfig(
            top_k=self.top_k, intersection=self.intersection
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """How many broadcasts a run performs and who originates them.

    ``sender_pool=None`` draws every source from the whole overlay (the
    historical schedule); an integer restricts the sources to a fixed
    random pool of that many nodes — the mixed multi-sender workload where
    a handful of wallet hosts originate all traffic.
    """

    broadcasts: int = 10
    sender_pool: Optional[int] = None

    def __post_init__(self) -> None:
        if self.broadcasts < 1:
            raise ValueError("a workload needs at least one broadcast")
        if self.sender_pool is not None and self.sender_pool < 1:
            raise ValueError("sender_pool must be positive when given")


@dataclass(frozen=True)
class SeedPolicy:
    """Master seed and repetition fan-out of a scenario.

    Repetition ``r`` runs with seed ``base_seed + r`` (the
    :func:`repro.analysis.sweep.derive_seed` schedule for one value with
    one repetition per sweep point), so results are reproducible run for
    run and independent of execution order or parallelism.
    """

    base_seed: int = 0
    repetitions: int = 1

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")

    def seed_for(self, repetition: int) -> int:
        """The run seed of one repetition."""
        return self.base_seed + repetition


@dataclass(frozen=True)
class ChurnSpec:
    """Declarative node churn: who leaves when, and whether they return.

    The random part (``leave_fraction`` of the overlay leaving at
    ``leave_time``) is drawn per session from ``run_seed + seed_offset``,
    so two repetitions churn different node sets while each stays exactly
    reproducible.  ``events`` adds explicit, fully pinned churn events on
    top (serialized as ``[time, node, action]`` triples).
    """

    leave_fraction: float = 0.0
    leave_time: float = 0.25
    rejoin_after: Optional[float] = None
    seed_offset: int = 0xC4A2
    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.leave_fraction < 1.0:
            raise ValueError("leave_fraction must be in [0, 1)")
        if self.leave_time < 0:
            raise ValueError("leave_time must be non-negative")
        if self.rejoin_after is not None and self.rejoin_after <= 0:
            raise ValueError("rejoin_after must be positive when given")

    def compile(self, graph: nx.Graph, run_seed: int) -> ChurnSchedule:
        """The concrete schedule for one session."""
        import random

        schedule = random_churn_schedule(
            graph,
            self.leave_fraction,
            self.leave_time,
            rejoin_after=self.rejoin_after,
            rng=random.Random(run_seed + self.seed_offset),
        )
        if self.events:
            return ChurnSchedule(schedule.events + self.events)
        return schedule


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully serializable experiment definition.

    Example:
        >>> spec = ScenarioSpec(
        ...     name="demo",
        ...     topology=TopologySpec("random_regular",
        ...                           {"num_nodes": 60, "degree": 6, "seed": 1}),
        ...     protocol="flood",
        ... )
        >>> ScenarioSpec.from_json(spec.to_json()) == spec
        True

    Attributes:
        name: registry identifier.
        topology: the overlay family and parameters.
        conditions: the network environment.
        protocol: a protocol name from :mod:`repro.protocols`.
        protocol_options: keyword options for the protocol's config (e.g.
            ``{"group_size": 5, "diffusion_depth": 3}`` for ``three_phase``).
        adversary: observer fraction, estimator and behaviour model.
        workload: broadcast count and sender pool.
        seeds: master seed and repetition fan-out.
        churn: optional failure/rejoin schedule.
        faults: correlated fault models applied to every session.
        privacy: which anonymity metrics the run reports.
        engine: simulator delivery engine every session runs on
            (``"event"``, ``"batched"`` or ``"sharded"``).  All engines are
            seed-for-seed identical in every observable, so the choice
            affects wall-clock time only — run digests are
            engine-independent.
        shards: worker-process count for ``engine="sharded"`` (``None`` =
            the engine's default).  Behaviour is shard-count independent,
            so the field — like ``engine`` — never changes a run digest.
        description: one line for catalogues and the CLI.
        tags: free-form labels (``"paper"``, ``"stress"``, ...).
    """

    name: str
    topology: TopologySpec
    conditions: ConditionsSpec = ConditionsSpec()
    protocol: str = "flood"
    protocol_options: Mapping[str, Any] = field(default_factory=dict)
    adversary: AdversarySpec = AdversarySpec()
    workload: WorkloadSpec = WorkloadSpec()
    seeds: SeedPolicy = SeedPolicy()
    churn: Optional[ChurnSpec] = None
    faults: Tuple[FaultSpec, ...] = ()
    privacy: PrivacySpec = PrivacySpec()
    engine: str = "event"
    shards: Optional[int] = None
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        from repro.network.simulator import ENGINES

        if self.engine not in ENGINES:
            known = ", ".join(sorted(ENGINES))
            raise KeyError(
                f"unknown engine {self.engine!r} (registered: {known})"
            )
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 when given")
        # JSON round-trips deliver lists; store the canonical tuple.
        object.__setattr__(self, "faults", tuple(self.faults))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def derive(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced.

        The declarative counterpart of copy-pasting setup code: sweeps and
        benchmark variants derive their grid points from one registered
        preset (``spec.derive(adversary=AdversarySpec(fraction=0.3))``).
        """
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dictionary representation.

        Fields that post-date the digest goldens — the adversary's
        behaviour model and the fault list — are omitted at their default
        values, so every spec (and run digest) from before they existed
        serializes byte-for-byte as it always did.
        """
        data = asdict(self)
        data["topology"]["params"] = dict(self.topology.params)
        data["protocol_options"] = dict(self.protocol_options)
        data["tags"] = list(self.tags)
        data["privacy"]["top_k"] = list(self.privacy.top_k)
        if self.adversary.model == "static" and not self.adversary.model_params:
            del data["adversary"]["model"]
            del data["adversary"]["model_params"]
        else:
            data["adversary"]["model_params"] = dict(
                self.adversary.model_params
            )
        if self.faults:
            data["faults"] = [
                {"model": fault.model, "params": dict(fault.params)}
                for fault in self.faults
            ]
        else:
            del data["faults"]
        if self.engine == "event":
            del data["engine"]
        if self.shards is None:
            del data["shards"]
        if self.churn is not None:
            data["churn"]["events"] = [
                [event.time, event.node, event.action]
                for event in self.churn.events
            ]
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the spec to JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Reconstruct a spec from :meth:`to_dict` output."""
        churn_data = data.get("churn")
        churn = None
        if churn_data is not None:
            churn = ChurnSpec(
                leave_fraction=churn_data.get("leave_fraction", 0.0),
                leave_time=churn_data.get("leave_time", 0.25),
                rejoin_after=churn_data.get("rejoin_after"),
                seed_offset=churn_data.get("seed_offset", 0xC4A2),
                events=tuple(
                    ChurnEvent(time, node, action)
                    for time, node, action in churn_data.get("events", ())
                ),
            )
        return cls(
            name=data["name"],
            topology=TopologySpec(
                family=data["topology"]["family"],
                params=dict(data["topology"].get("params", {})),
            ),
            conditions=ConditionsSpec(**data.get("conditions", {})),
            protocol=data.get("protocol", "flood"),
            protocol_options=dict(data.get("protocol_options", {})),
            adversary=AdversarySpec(**data.get("adversary", {})),
            workload=WorkloadSpec(**data.get("workload", {})),
            seeds=SeedPolicy(**data.get("seeds", {})),
            churn=churn,
            faults=tuple(
                FaultSpec(
                    model=fault["model"], params=dict(fault.get("params", {}))
                )
                for fault in data.get("faults", ())
            ),
            privacy=PrivacySpec(**data.get("privacy", {})),
            engine=data.get("engine", "event"),
            shards=data.get("shards"),
            description=data.get("description", ""),
            tags=tuple(data.get("tags", ())),
        )

    @classmethod
    def from_json(cls, payload: str) -> "ScenarioSpec":
        """Reconstruct a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
