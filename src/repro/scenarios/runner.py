"""Compiling and running :class:`~repro.scenarios.spec.ScenarioSpec`.

The runner is the bridge from the declarative layer to the live objects:

* :func:`compile_scenario` turns a spec into a :class:`CompiledScenario` —
  the generated overlay, the built :class:`NetworkConditions`, the
  instantiated protocol adapter and the session hook that installs the
  churn schedule;
* :func:`run_scenario_once` executes one seeded run through
  :func:`repro.analysis.experiment.run_attack_experiment` (the same code
  path every benchmark uses, so a preset reproduces its benchmark's
  numbers seed for seed);
* :class:`ScenarioRunner` fans a spec's repetitions out over
  :class:`~repro.analysis.parallel.ParallelSweep` workers and returns a
  structured, JSON-ready :class:`ScenarioResult` whose :attr:`digest`
  pins the full per-repetition metrics;
* :func:`observation_log_digest` / :meth:`ScenarioRunner.observation_digest`
  hash a run's raw delivery log — the golden-digest mechanism that keeps
  every registered preset's behaviour pinned across engine changes.
"""

from __future__ import annotations

import hashlib
import json
import logging
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.experiment import ExperimentResult, run_attack_experiment
from repro.analysis.parallel import ParallelSweep
from repro.network.conditions import NetworkConditions
from repro.network.simulator import Simulator
from repro.protocols import BroadcastProtocol, protocol_class
from repro.protocols.base import ProtocolSession
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.export import aggregate_telemetry
from repro.telemetry.recorder import NULL_RECORDER, Recorder, TelemetryRecorder

logger = logging.getLogger(__name__)


def build_protocol(name: str, options: Dict[str, Any]) -> BroadcastProtocol:
    """Instantiate a registered protocol from flat, serializable options.

    A spec carries plain key/value options so it stays JSON-serializable;
    each adapter knows how to consume them through
    :meth:`~repro.protocols.base.BroadcastProtocol.from_options` (options
    become the declared ``config_class``, keys in ``extra_option_keys`` go
    to the constructor).  Protocols registered by third parties therefore
    work here without any scenario-layer changes.

    Raises:
        ValueError: for an unknown protocol name.
        TypeError: for options the adapter does not accept.
    """
    return protocol_class(name).from_options(**dict(options))


@dataclass
class CompiledScenario:
    """A spec resolved into the live objects one run needs.

    The graph is freshly generated per compilation (specs pin the topology
    seed, so repeated compilations are isomorphic-identical); nothing is
    shared with other compilations, which keeps parallel repetitions safe.
    """

    spec: ScenarioSpec
    graph: nx.Graph
    conditions: NetworkConditions
    protocol: BroadcastProtocol
    session_hook: Optional[Callable[[ProtocolSession], None]] = None


#: Seed-stream offset separating fault-model randomness from churn's
#: (``ChurnSpec.seed_offset`` default 0xC4A2) and the run seed itself.
FAULT_SEED_OFFSET = 0xFA07


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Resolve ``spec`` into overlay, conditions, protocol and hooks."""
    churn = spec.churn
    faults = spec.faults
    hook: Optional[Callable[[ProtocolSession], None]] = None
    wants_churn = churn is not None and (
        churn.leave_fraction > 0 or churn.events
    )
    if wants_churn or faults:
        def hook(session: ProtocolSession) -> None:
            run_seed = session.seed or 0
            if wants_churn:
                churn.compile(session.graph, run_seed).apply(
                    session.simulator
                )
            # Each fault draws from its own deterministic stream, so adding
            # a fault never perturbs churn (or another fault's) sampling.
            for index, fault in enumerate(faults):
                rng = random.Random(run_seed + FAULT_SEED_OFFSET + index)
                fault.build().schedule(session.graph, rng).apply(
                    session.simulator
                )

    return CompiledScenario(
        spec=spec,
        graph=spec.topology.build(),
        conditions=spec.conditions.build(),
        protocol=build_protocol(spec.protocol, dict(spec.protocol_options)),
        session_hook=hook,
    )


def run_scenario_once(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    telemetry: Optional[Recorder] = None,
) -> ExperimentResult:
    """One seeded run of ``spec`` through the canonical experiment loop.

    Args:
        spec: the scenario to run.
        seed: the run's master seed; defaults to the spec's base seed.
        telemetry: optional recorder; when enabled, the topology build is
            timed under a ``topology_build`` span and the recorder is
            handed to :func:`run_attack_experiment` for the remaining
            phase spans and engine counters.  Telemetry never changes the
            run itself — metrics and observation logs are bit-identical
            with or without it.

    Returns:
        The :class:`~repro.analysis.experiment.ExperimentResult` that
        ``run_attack_experiment`` produces for exactly this setting — which
        is why a preset and its benchmark agree number for number.
    """
    tel = telemetry if telemetry is not None and telemetry.enabled else None
    rec = tel if tel is not None else NULL_RECORDER
    with rec.span("topology_build", scenario=spec.name):
        compiled = compile_scenario(spec)
    privacy = spec.privacy.build()
    return run_attack_experiment(
        compiled.graph,
        compiled.protocol,
        spec.adversary.fraction,
        broadcasts=spec.workload.broadcasts,
        seed=spec.seeds.base_seed if seed is None else seed,
        conditions=compiled.conditions,
        estimator=spec.adversary.estimator,
        sender_pool=spec.workload.sender_pool,
        session_hook=compiled.session_hook,
        privacy=privacy if privacy is not None else False,
        # A fresh model per run: models are stateful across broadcasts
        # (suspicion mass, expelled members), never across runs.
        adversary=spec.adversary.build(),
        engine=spec.engine,
        shards=spec.shards,
        telemetry=tel,
    )


def build_session(
    spec: ScenarioSpec, seed: Optional[int] = None
) -> ProtocolSession:
    """A ready protocol session for ``spec`` (hooks applied, nothing run).

    For callers that drive broadcasts themselves — the examples and the
    golden-digest machinery — instead of going through the attack loop.
    """
    compiled = compile_scenario(spec)
    session = compiled.protocol.build(
        compiled.graph,
        compiled.conditions,
        seed=spec.seeds.base_seed if seed is None else seed,
        engine=spec.engine,
        shards=spec.shards,
    )
    if compiled.session_hook is not None:
        compiled.session_hook(session)
    return session


def experiment_metrics(result: ExperimentResult) -> Dict[str, float]:
    """Flatten an :class:`ExperimentResult` into a metrics dictionary.

    With privacy measurement enabled (the default for every spec) the
    dictionary also carries the anonymity metrics —
    ``privacy_entropy``, ``privacy_min_entropy``, ``privacy_anonymity_set``,
    ``privacy_norm_anonymity``, ``privacy_expected_rank``, one
    ``privacy_top<k>`` per configured cutoff and, when the intersection
    attack ran, ``privacy_intersection_entropy`` /
    ``privacy_intersection_top1`` / ``privacy_entropy_reduction`` — so run
    digests pin the full privacy surface of a scenario.
    """
    metrics = {
        "broadcasts": float(result.detection.total),
        "guesses": float(result.detection.guesses),
        "correct": float(result.detection.correct),
        "detection_probability": float(
            result.detection.detection_probability
        ),
        "precision": float(result.detection.precision),
        "messages_per_broadcast": float(result.messages_per_broadcast),
        "mean_reach": float(result.mean_reach),
        "anonymity_floor": float(result.anonymity_floor),
    }
    if result.privacy is not None:
        metrics.update(result.privacy.to_metrics())
    # Active adversary models report their own counters (repositionings,
    # blame verdicts, severed links).  The static attacker reports none,
    # keeping every pre-existing run digest unchanged.
    for key, value in result.adversary_metrics.items():
        metrics[f"adversary_{key}"] = float(value)
    return metrics


def observation_log_digest(simulator: Simulator) -> str:
    """Stable SHA-256 over everything a run's observation log contains.

    The same digest definition as the fast-path golden tests: every
    observation's time, endpoints, message kind/payload/size and
    direct-flag, in log order.
    """
    digest = hashlib.sha256()
    for obs in simulator.iter_observations():
        digest.update(
            repr(
                (
                    obs.time,
                    obs.receiver,
                    obs.sender,
                    obs.message.kind,
                    obs.message.payload_id,
                    obs.message.size_bytes,
                    obs.direct,
                )
            ).encode()
        )
    return digest.hexdigest()


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario run (JSON-ready).

    Attributes:
        spec: the executed spec.
        seeds: the per-repetition master seeds, in repetition order.
        runs: one metrics dictionary per repetition (see
            :func:`experiment_metrics`).
        aggregate: every metric meaned over the repetitions, plus
            execution metadata (``repetitions``, ``effective_processes``,
            ``engine_effective``) that stays outside the digest.
        telemetry: the scenario-level telemetry document (see
            :func:`repro.telemetry.export.aggregate_telemetry`) when the
            runner recorded one, ``None`` otherwise.  Never hashed into
            the digest — spans carry wall-clock timings that differ run
            to run.
    """

    spec: ScenarioSpec
    seeds: List[int]
    runs: List[Dict[str, float]]
    aggregate: Dict[str, Any] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def digest(self) -> str:
        """SHA-256 over the spec and every per-repetition metric.

        Two runs of the same spec on the same code produce the same digest;
        any behavioural drift — engine, protocol, adversary, churn — shows
        up as a digest change.  This is what the committed preset goldens
        pin.
        """
        canonical = json.dumps(
            {"spec": self.spec.to_dict(), "seeds": self.seeds,
             "runs": self.runs},
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """The JSON document ``scripts/scenario.py run --json-out`` writes."""
        document = {
            "spec": self.spec.to_dict(),
            "seeds": self.seeds,
            "runs": self.runs,
            "aggregate": self.aggregate,
            "digest": self.digest,
        }
        if self.telemetry is not None:
            document["telemetry"] = self.telemetry
        return document


class ScenarioRunner:
    """Executes specs, fanning repetitions out over worker processes.

    Example:
        >>> from repro.scenarios import scenario
        >>> runner = ScenarioRunner(processes=1)
        >>> result = runner.run(scenario("e4_broadcast_deanonymization"))
        >>> result.aggregate["mean_reach"]
        1.0

    Args:
        processes: worker processes for the repetition fan-out (defaults
            to the CPU count; ``1`` forces the serial path).  Repetition
            seeds follow :class:`~repro.scenarios.spec.SeedPolicy`, so the
            results are identical at any parallelism.
        telemetry: when ``True``, every repetition runs under a fresh
            :class:`~repro.telemetry.recorder.TelemetryRecorder` whose
            document (counters, phase-span tree, per-shard stats) is
            collected into :attr:`ScenarioResult.telemetry` via
            :func:`~repro.telemetry.export.aggregate_telemetry`.  Metrics,
            runs and the digest are bit-identical either way.
    """

    def __init__(
        self, processes: Optional[int] = None, telemetry: bool = False
    ) -> None:
        self.processes = processes
        self.telemetry = telemetry

    def run(
        self,
        spec: ScenarioSpec,
        repetitions: Optional[int] = None,
    ) -> ScenarioResult:
        """Run every repetition of ``spec`` and aggregate the metrics.

        Args:
            spec: the scenario to run.
            repetitions: override of the spec's repetition count.
        """
        reps = spec.seeds.repetitions if repetitions is None else repetitions
        if reps < 1:
            raise ValueError("repetitions must be at least 1")
        seeds = [spec.seeds.seed_for(rep) for rep in range(reps)]
        record = self.telemetry
        logger.debug(
            "running scenario %s: repetitions=%d engine=%s telemetry=%s",
            spec.name, reps, spec.engine, record,
        )

        def _run_repetition(
            value: int, seed: int
        ) -> Tuple[Dict[str, float], Dict[str, Any]]:
            recorder = TelemetryRecorder() if record else None
            if recorder is not None:
                with recorder.span("repetition", scenario=spec.name,
                                   seed=seed):
                    result = run_scenario_once(
                        spec, seed=seed, telemetry=recorder
                    )
            else:
                result = run_scenario_once(spec, seed=seed)
            payload = {
                "engine_effective": result.engine_effective,
                "telemetry": (
                    recorder.to_dict() if recorder is not None else None
                ),
            }
            return experiment_metrics(result), payload

        # One ParallelSweep value per repetition with repetitions=1 makes
        # derive_seed assign exactly SeedPolicy's ``base_seed + r`` — so the
        # per-value "aggregates" the engine returns *are* the raw per-run
        # metrics, computed with the same fan-out machinery the analysis
        # layer uses everywhere else.  Telemetry documents and engine
        # metadata ride back as payloads: they are not metrics and must
        # stay out of the aggregation.
        engine = ParallelSweep(
            repetitions=1,
            base_seed=spec.seeds.base_seed,
            processes=self.processes,
        )
        try:
            raw, payloads = engine.run_with_payloads(
                list(range(reps)), _run_repetition
            )
            effective = engine.effective_processes or 1
        finally:
            engine.close()
        runs = [
            {
                key: value
                for key, value in entry.items()
                if key not in ("value", "repetitions")
            }
            for entry in raw
        ]
        aggregate: Dict[str, Any] = {
            key: sum(run[key] for run in runs) / len(runs)
            for key in runs[0]
        }
        aggregate["repetitions"] = float(len(runs))
        # Execution metadata, not a behavioural metric: lives only in the
        # aggregate (the digest hashes spec + seeds + runs), so a machine
        # that silently degraded to the serial path still shows up in
        # persisted results without perturbing any golden digest.
        aggregate["effective_processes"] = float(effective)
        # Same digest-neutral treatment for the engine that actually ran:
        # a spec may request "sharded" and silently fall back — the
        # aggregate makes the fallback visible in persisted results.
        engines = {payload["engine_effective"] for payload in payloads}
        aggregate["engine_effective"] = (
            engines.pop() if len(engines) == 1 else "mixed"
        )
        telemetry_doc: Optional[Dict[str, Any]] = None
        if record:
            telemetry_doc = aggregate_telemetry(
                [p["telemetry"] for p in payloads if p["telemetry"]]
            )
        return ScenarioResult(
            spec=spec, seeds=seeds, runs=runs, aggregate=aggregate,
            telemetry=telemetry_doc,
        )

    def observation_digest(self, spec: ScenarioSpec) -> str:
        """Golden digest of one seeded broadcast's full observation log.

        Builds a session with the spec's base seed (churn schedule
        installed), broadcasts one payload from the overlay's first node
        (deterministic ``repr`` order) and hashes the resulting delivery
        log.  Cheaper than a full workload but sensitive to every layer a
        spec configures — topology, conditions, protocol options, churn —
        which makes it the right shape for per-preset golden pinning.
        """
        session = build_session(spec)
        source = sorted(session.graph.nodes, key=repr)[0]
        session.protocol.broadcast(session, source, f"digest-{spec.name}")
        return observation_log_digest(session.simulator)
