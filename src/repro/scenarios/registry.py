"""Name-based registry of scenario presets.

The registry does for *experiments* what :mod:`repro.protocols.registry`
does for protocols: every :class:`~repro.scenarios.spec.ScenarioSpec`
registered here is addressable by name from the CLI
(``scripts/scenario.py``), the benchmarks and the examples.  Importing
:mod:`repro.scenarios` registers the built-in presets — the paper's E1–E12
evaluation settings plus the stress scenarios (see
:mod:`repro.scenarios.presets` and ``docs/SCENARIOS.md``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry under ``spec.name``.

    Returns the spec so preset modules can register and bind in one line.

    Raises:
        ValueError: when the name is already taken.
    """
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def available_scenarios(tag: str = "") -> Tuple[str, ...]:
    """Sorted names of every registered scenario (optionally one tag only)."""
    return tuple(
        sorted(
            name
            for name, spec in _REGISTRY.items()
            if not tag or tag in spec.tags
        )
    )


def scenario(name: str) -> ScenarioSpec:
    """The spec registered under ``name``.

    Raises:
        ValueError: for an unknown scenario name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ValueError(
            f"unknown scenario {name!r} (registered: {known})"
        ) from None
