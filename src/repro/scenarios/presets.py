"""Registered scenario presets: the paper's E1–E12 settings plus stress.

Importing this module (which ``import repro.scenarios`` does) registers two
families of presets:

* ``e1``–``e13`` — the network settings of the benchmark suite
  (``benchmarks/test_bench_e*.py``), one preset per experiment id, with the
  same overlays (family, size, seed), conditions, protocol parameters and
  master seeds the benchmarks use.  Benchmarks that sweep a parameter
  derive their grid points from the preset with
  :meth:`~repro.scenarios.spec.ScenarioSpec.derive`.
* ``stress_*`` — scenarios beyond the paper's evaluation: a lossy
  wide-area network, a hub-dominated scale-free overlay, node churn with
  and without rejoin, and a mixed multi-sender workload.
* ``adv_*`` / ``fault_*`` — the active adversary models of
  :mod:`repro.threat` (adaptive monitoring, eclipse, Byzantine DC-net
  members driving the blame protocol) and the correlated fault models
  (regional outage, flaky links); see ``docs/ADVERSARIES.md``.

``docs/SCENARIOS.md`` catalogues every preset with its intent and expected
behaviour; ``scripts/scenario.py list`` prints this registry.
"""

from __future__ import annotations

from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    AdversarySpec,
    ChurnSpec,
    ConditionsSpec,
    FaultSpec,
    ScenarioSpec,
    SeedPolicy,
    TopologySpec,
    WorkloadSpec,
)

# ---------------------------------------------------------------------------
# Shared building blocks (the benchmark fixtures, as data)
# ---------------------------------------------------------------------------

#: The paper's evaluation overlay: 1,000 peers, Bitcoin-like degree 8.
OVERLAY_1000 = TopologySpec(
    "random_regular", {"num_nodes": 1000, "degree": 8, "seed": 42}
)
#: The attack-experiment overlay (kept small for many repetitions).
OVERLAY_200 = TopologySpec(
    "random_regular", {"num_nodes": 200, "degree": 8, "seed": 43}
)
#: The sweep overlay of the face-off experiments.
OVERLAY_100 = TopologySpec(
    "random_regular", {"num_nodes": 100, "degree": 8, "seed": 44}
)
#: The scale benchmark overlay (E11).
OVERLAY_2000 = TopologySpec(
    "random_regular", {"num_nodes": 2000, "degree": 8, "seed": 45}
)

#: Constant 0.1 latency: the historical three-phase environment.
IDEAL = ConditionsSpec(kind="ideal", delay=0.1)
#: Stable per-edge 50–300 ms delays: the historical baseline environment.
INTERNET = ConditionsSpec()

NO_ADVERSARY = AdversarySpec(fraction=0.0)

# ---------------------------------------------------------------------------
# Paper presets (E1–E12)
# ---------------------------------------------------------------------------

E1 = register_scenario(ScenarioSpec(
    name="e1_message_overhead",
    description="Flood message cost on the paper's 1,000-peer overlay",
    topology=OVERLAY_1000,
    conditions=IDEAL,
    protocol="flood",
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=3),
    seeds=SeedPolicy(base_seed=0, repetitions=3),
    tags=("paper", "e1"),
))

E2 = register_scenario(ScenarioSpec(
    name="e2_dcnet_cost",
    description="Three-phase broadcast with a large (k=8) DC-net group",
    topology=TopologySpec("complete", {"num_nodes": 24}),
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 8, "diffusion_depth": 2},
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=2),
    seeds=SeedPolicy(base_seed=2),
    tags=("paper", "e2"),
))

E3 = register_scenario(ScenarioSpec(
    name="e3_privacy_performance_landscape",
    description="The paper's protocol in the privacy-performance landscape",
    topology=OVERLAY_200,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=10),
    seeds=SeedPolicy(base_seed=3),
    tags=("paper", "e3"),
))

E4 = register_scenario(ScenarioSpec(
    name="e4_broadcast_deanonymization",
    description="First-spy botnet attack against plain flooding",
    topology=OVERLAY_200,
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=12),
    seeds=SeedPolicy(base_seed=10),
    tags=("paper", "e4"),
))

E5 = register_scenario(ScenarioSpec(
    name="e5_dandelion_baseline",
    description="Dandelion stem/fluff lowering first-spy accuracy",
    topology=OVERLAY_200,
    conditions=INTERNET,
    protocol="dandelion",
    protocol_options={"fluff_probability": 0.1},
    adversary=AdversarySpec(fraction=0.25),
    workload=WorkloadSpec(broadcasts=12),
    seeds=SeedPolicy(base_seed=21),
    tags=("paper", "e5"),
))

E6 = register_scenario(ScenarioSpec(
    name="e6_dcnet_round",
    description="DC-net round traffic inside a complete group overlay",
    topology=TopologySpec("complete", {"num_nodes": 16}),
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 8, "diffusion_depth": 1},
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=1),
    seeds=SeedPolicy(base_seed=0),
    tags=("paper", "e6"),
))

E7 = register_scenario(ScenarioSpec(
    name="e7_three_phase_end_to_end",
    description="The three-phase protocol end to end on 200 peers",
    topology=OVERLAY_200,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=5),
    seeds=SeedPolicy(base_seed=5),
    tags=("paper", "e7"),
))

E8 = register_scenario(ScenarioSpec(
    name="e8_privacy_bounds",
    description="Outside-observer detection against the three-phase protocol",
    topology=OVERLAY_200,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 6, "diffusion_depth": 3},
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=10),
    seeds=SeedPolicy(base_seed=31),
    tags=("paper", "e8"),
))

E9 = register_scenario(ScenarioSpec(
    name="e9_group_overlap",
    description="Groups of 5 over 60 peers (the overlap-smoothing setting)",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 60, "degree": 6, "seed": 9}
    ),
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 2},
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=3),
    seeds=SeedPolicy(base_seed=9),
    tags=("paper", "e9"),
))

E10 = register_scenario(ScenarioSpec(
    name="e10_latency_tradeoff",
    description="Completion-time cost of the privacy phases",
    topology=OVERLAY_200,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=1),
    seeds=SeedPolicy(base_seed=1),
    tags=("paper", "e10"),
))

E11 = register_scenario(ScenarioSpec(
    name="e11_scale",
    description="Flood at 2,000 peers (the scale benchmark's smallest size)",
    topology=OVERLAY_2000,
    conditions=IDEAL,
    protocol="flood",
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=1),
    seeds=SeedPolicy(base_seed=7, repetitions=2),
    tags=("paper", "e11"),
))

E12 = register_scenario(ScenarioSpec(
    name="e12_protocol_faceoff",
    description="Registry face-off environment (derive per-protocol variants)",
    topology=OVERLAY_100,
    conditions=INTERNET,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=6),
    seeds=SeedPolicy(base_seed=12),
    tags=("paper", "e12"),
))

E13 = register_scenario(ScenarioSpec(
    name="e13_anonymity_curves",
    description="Anonymity-metric curves vs adversary fraction (base cell)",
    topology=OVERLAY_100,
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=13),
    tags=("privacy", "e13"),
))

# ---------------------------------------------------------------------------
# Stress presets (beyond the paper)
# ---------------------------------------------------------------------------

STRESS_LOSSY_WAN = register_scenario(ScenarioSpec(
    name="stress_lossy_wan",
    description="Flood across a lossy, jittery wide-area network",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 150, "degree": 8, "seed": 101}
    ),
    conditions=ConditionsSpec(
        kind="internet_like", low=0.1, high=0.6,
        loss_probability=0.15, jitter=0.2,
    ),
    protocol="flood",
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=10),
    seeds=SeedPolicy(base_seed=7, repetitions=3),
    tags=("stress", "lossy"),
))

STRESS_SUPERNODE_HUB = register_scenario(ScenarioSpec(
    name="stress_supernode_hub",
    description="Dandelion on a hub-dominated scale-free overlay",
    topology=TopologySpec(
        "scale_free",
        {"num_nodes": 150, "attachments": 6,
         "triangle_probability": 0.3, "seed": 102},
    ),
    conditions=INTERNET,
    protocol="dandelion",
    protocol_options={"fluff_probability": 0.1},
    adversary=AdversarySpec(fraction=0.25),
    workload=WorkloadSpec(broadcasts=10),
    seeds=SeedPolicy(base_seed=8, repetitions=3),
    tags=("stress", "topology"),
))

STRESS_NODE_CHURN = register_scenario(ScenarioSpec(
    name="stress_node_churn",
    description="20% of peers crash mid-broadcast and never return",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 150, "degree": 8, "seed": 103}
    ),
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(fraction=0.1),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=9, repetitions=3),
    churn=ChurnSpec(leave_fraction=0.2, leave_time=0.15),
    tags=("stress", "churn"),
))

STRESS_CHURN_REJOIN = register_scenario(ScenarioSpec(
    name="stress_churn_rejoin",
    description="30% of peers flap (leave, rejoin one time unit later)",
    topology=TopologySpec(
        "small_world",
        {"num_nodes": 120, "neighbours": 8,
         "shortcut_probability": 0.1, "seed": 104},
    ),
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(fraction=0.1),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=10, repetitions=3),
    churn=ChurnSpec(leave_fraction=0.3, leave_time=0.1, rejoin_after=1.0),
    tags=("stress", "churn"),
))

STRESS_MIXED_SENDERS = register_scenario(ScenarioSpec(
    name="stress_mixed_senders",
    description="All traffic from five wallet hosts, three-phase protocol",
    topology=TopologySpec(
        "small_world",
        {"num_nodes": 150, "neighbours": 8,
         "shortcut_probability": 0.1, "seed": 105},
    ),
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=AdversarySpec(fraction=0.2),
    workload=WorkloadSpec(broadcasts=10, sender_pool=5),
    seeds=SeedPolicy(base_seed=11, repetitions=3),
    tags=("stress", "workload"),
))

# ---------------------------------------------------------------------------
# Adversary-model presets (the active attackers of docs/ADVERSARIES.md)
# ---------------------------------------------------------------------------

#: The mixed-senders overlay, reused so the adversary presets compare
#: apples-to-apples against ``stress_mixed_senders``.
MIXED_OVERLAY = TopologySpec(
    "small_world",
    {"num_nodes": 150, "neighbours": 8,
     "shortcut_probability": 0.1, "seed": 105},
)

ADV_ADAPTIVE_MIXED_SENDERS = register_scenario(ScenarioSpec(
    name="adv_adaptive_mixed_senders",
    description="Posterior-chasing adaptive attacker vs the wallet hosts",
    topology=MIXED_OVERLAY,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=AdversarySpec(fraction=0.2, model="adaptive"),
    workload=WorkloadSpec(broadcasts=10, sender_pool=5),
    seeds=SeedPolicy(base_seed=11, repetitions=3),
    tags=("adversary", "adaptive"),
))

ADV_ECLIPSE_VICTIM = register_scenario(ScenarioSpec(
    name="adv_eclipse_victim",
    description="Victim node 3 permanently eclipsed from the overlay",
    topology=MIXED_OVERLAY,
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(
        fraction=0.2,
        model="eclipse",
        model_params={"victim": 3, "start": 0.0},
    ),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=14, repetitions=2),
    tags=("adversary", "eclipse"),
))

ADV_BYZANTINE_BLAME_EXPEL = register_scenario(ScenarioSpec(
    name="adv_byzantine_blame_expel",
    description="Byzantine member flips shares; blame attributes, group expels",
    topology=MIXED_OVERLAY,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=AdversarySpec(
        fraction=0.2,
        model="byzantine_dcnet",
        model_params={"tamper": "flip", "policy": "expel"},
    ),
    workload=WorkloadSpec(broadcasts=10, sender_pool=5),
    seeds=SeedPolicy(base_seed=11, repetitions=2),
    tags=("adversary", "byzantine"),
))

ADV_BYZANTINE_BLAME_DISSOLVE = register_scenario(ScenarioSpec(
    name="adv_byzantine_blame_dissolve",
    description="Byzantine member withholds shares; unattributable, group dissolves",
    topology=MIXED_OVERLAY,
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 3},
    adversary=AdversarySpec(
        fraction=0.2,
        model="byzantine_dcnet",
        model_params={"tamper": "withhold", "policy": "dissolve"},
    ),
    workload=WorkloadSpec(broadcasts=10, sender_pool=5),
    seeds=SeedPolicy(base_seed=11, repetitions=2),
    tags=("adversary", "byzantine"),
))

# ---------------------------------------------------------------------------
# Correlated-fault presets (beyond independent churn)
# ---------------------------------------------------------------------------

FAULT_REGIONAL_OUTAGE = register_scenario(ScenarioSpec(
    name="fault_regional_outage",
    description="A one-hop region around node 7 crashes together, then recovers",
    topology=MIXED_OVERLAY,
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(fraction=0.1),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=15, repetitions=2),
    faults=(FaultSpec("regional_outage", {
        "epicenter": 7, "radius": 1, "start": 0.25, "duration": 1.5,
    }),),
    tags=("fault", "outage"),
))

FAULT_FLAKY_LINKS = register_scenario(ScenarioSpec(
    name="fault_flaky_links",
    description="Bursts of link flapping: eight links sever and restore twice",
    topology=MIXED_OVERLAY,
    conditions=INTERNET,
    protocol="flood",
    adversary=AdversarySpec(fraction=0.1),
    workload=WorkloadSpec(broadcasts=8),
    seeds=SeedPolicy(base_seed=16, repetitions=2),
    faults=(FaultSpec("flaky_links", {
        "links": 8, "bursts": 2, "start": 0.1,
        "period": 0.5, "down_time": 0.25,
    }),),
    tags=("fault", "links"),
))

# ---------------------------------------------------------------------------
# Example presets
# ---------------------------------------------------------------------------

QUICKSTART = register_scenario(ScenarioSpec(
    name="quickstart",
    description="One three-phase broadcast on 300 peers (the README demo)",
    topology=TopologySpec(
        "random_regular", {"num_nodes": 300, "degree": 8, "seed": 1}
    ),
    conditions=IDEAL,
    protocol="three_phase",
    protocol_options={"group_size": 5, "diffusion_depth": 4},
    adversary=NO_ADVERSARY,
    workload=WorkloadSpec(broadcasts=1),
    seeds=SeedPolicy(base_seed=2),
    tags=("example",),
))
