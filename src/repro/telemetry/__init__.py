"""Runtime telemetry: counters, gauges, phase spans, trace export.

Zero-overhead-when-disabled instrumentation for the three delivery
engines.  See ``docs/OBSERVABILITY.md`` for the recorder API, the
counter glossary and the trace-export workflow.

Quick start::

    from repro.telemetry import TelemetryRecorder, recording

    recorder = TelemetryRecorder()
    with recording(recorder):
        result = run_flood(overlay, source=0, seed=0)
    print(recorder.counters["events_dispatched"])
"""

import logging

from repro.telemetry.export import aggregate_telemetry, chrome_trace, write_json
from repro.telemetry.recorder import (
    NULL_RECORDER,
    Recorder,
    TelemetryRecorder,
    current_recorder,
    recording,
)
from repro.telemetry.schema import SchemaError, validate

logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "Recorder",
    "TelemetryRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "recording",
    "aggregate_telemetry",
    "chrome_trace",
    "write_json",
    "SchemaError",
    "validate",
]
