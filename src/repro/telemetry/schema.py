"""A dependency-free structural validator for the telemetry schema.

The container bakes in no ``jsonschema`` package, so the CI smoke job and
the tests validate telemetry documents with this deliberately small
interpreter of the JSON-Schema subset the committed schema file uses:

``type`` (including lists of types), ``properties``, ``required``,
``additionalProperties`` (bool or schema), ``items``, ``enum``,
``minimum`` and local ``$ref``s of the form ``#/$defs/<name>``.

Anything outside that subset raises ``SchemaError`` at validation time
rather than passing silently, so schema drift is caught in review.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["SchemaError", "validate"]

_SUPPORTED_KEYS = {
    "type",
    "properties",
    "required",
    "additionalProperties",
    "items",
    "enum",
    "minimum",
    "$ref",
    "$defs",
    # Annotations carried for humans; no validation semantics here.
    "title",
    "description",
    "$schema",
}


class SchemaError(ValueError):
    """A document failed validation (or the schema is unsupported)."""


def _type_ok(value: Any, name: str) -> bool:
    # bool subclasses int, so integer/number must exclude it explicitly.
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    if name == "string":
        return isinstance(value, str)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "null":
        return value is None
    raise SchemaError(f"unsupported type name {name!r}")


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise SchemaError(f"unsupported $ref {ref!r} (only local refs)")
    node: Any = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"$ref {ref!r} does not resolve")
        node = node[part]
    if not isinstance(node, dict):
        raise SchemaError(f"$ref {ref!r} resolves to a non-schema")
    return node


def _validate(
    value: Any, schema: Dict[str, Any], root: Dict[str, Any], path: str
) -> None:
    unsupported = set(schema) - _SUPPORTED_KEYS
    if unsupported:
        raise SchemaError(
            f"{path}: schema uses unsupported keywords {sorted(unsupported)}"
        )

    ref = schema.get("$ref")
    if ref is not None:
        _validate(value, _resolve_ref(ref, root), root, path)
        return

    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, name) for name in names):
            raise SchemaError(
                f"{path}: expected type {expected}, "
                f"got {type(value).__name__}"
            )

    enum = schema.get("enum")
    if enum is not None and value not in enum:
        raise SchemaError(f"{path}: {value!r} not in enum {enum}")

    minimum = schema.get("minimum")
    if minimum is not None:
        if not isinstance(value, (int, float)) or value < minimum:
            raise SchemaError(f"{path}: {value!r} below minimum {minimum}")

    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                raise SchemaError(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in properties:
                _validate(item, properties[key], root, f"{path}.{key}")
            elif isinstance(additional, dict):
                _validate(item, additional, root, f"{path}.{key}")
            elif additional is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")

    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for index, item in enumerate(value):
                _validate(item, items, root, f"{path}[{index}]")


def validate(document: Any, schema: Dict[str, Any]) -> List[str]:
    """Validate ``document`` against ``schema``; raise SchemaError on failure.

    Returns an empty list on success (a shape convenient for asserts).
    """
    _validate(document, schema, schema, "$")
    return []
