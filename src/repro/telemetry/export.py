"""Exporters: scenario-level aggregation and Chrome trace-event output.

Two document shapes travel through this module:

* a *recorder document* — ``TelemetryRecorder.to_dict()``, one per
  repetition;
* a *scenario document* — ``aggregate_telemetry([...])``: the
  per-repetition documents verbatim under ``"repetitions"`` plus summed
  counters/fallbacks, max-merged gauges and per-shard counter totals,
  which is what ``ScenarioResult.telemetry`` and ``--telemetry out.json``
  carry.

``chrome_trace`` accepts either shape and emits the Trace Event Format
JSON that ``chrome://tracing`` (and Perfetto) load directly: one ``"X"``
(complete) event per span, with each repetition on its own ``tid`` row.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["aggregate_telemetry", "chrome_trace", "write_json"]


def _merge_sum(target: Dict[str, int], source: Dict[str, int]) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0) + value


def aggregate_telemetry(docs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-repetition recorder documents into a scenario document."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    fallbacks: Dict[str, int] = {}
    shards: Dict[str, Dict[str, int]] = {}
    for doc in docs:
        _merge_sum(counters, doc.get("counters", {}))
        _merge_sum(fallbacks, doc.get("fallbacks", {}))
        for name, value in doc.get("gauges", {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for shard, shard_counters in doc.get("shards", {}).items():
            _merge_sum(shards.setdefault(str(shard), {}), shard_counters)
    return {
        "repetitions": list(docs),
        "counters": counters,
        "gauges": gauges,
        "fallbacks": fallbacks,
        "shards": shards,
    }


def _span_events(
    spans: Iterable[Dict[str, Any]], pid: int, tid: int
) -> List[Dict[str, Any]]:
    events = []
    pending = list(spans)
    while pending:
        span = pending.pop()
        event = {
            "name": span.get("name", "span"),
            "ph": "X",
            "ts": span.get("start_us", 0),
            "dur": span.get("dur_us") or 0,
            "pid": pid,
            "tid": tid,
            "cat": "repro",
        }
        attrs = span.get("attrs")
        if attrs:
            event["args"] = attrs
        events.append(event)
        pending.extend(span.get("children", []))
    return events


def chrome_trace(telemetry: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a recorder or scenario document to Trace Event Format."""
    docs = telemetry.get("repetitions")
    if docs is None:
        docs = [telemetry]
    events: List[Dict[str, Any]] = []
    for tid, doc in enumerate(docs):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"repetition {tid}"},
            }
        )
        events.extend(_span_events(doc.get("spans", []), pid=0, tid=tid))
        counters = doc.get("counters")
        if counters:
            events.append(
                {
                    "name": "counters",
                    "ph": "I",
                    "ts": 0,
                    "pid": 0,
                    "tid": tid,
                    "s": "t",
                    "args": dict(counters),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_json(path: str, document: Dict[str, Any]) -> None:
    """Write a document as stable, human-diffable JSON."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def maybe_chrome_trace(telemetry: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """``chrome_trace`` that tolerates a missing document."""
    if telemetry is None:
        return None
    return chrome_trace(telemetry)
