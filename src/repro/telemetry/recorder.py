"""Recorder protocol and the concrete in-memory telemetry recorder.

The subsystem is built around one rule: when telemetry is off (the
default) the engines must not change behaviour *or* pay for the
instrumentation.  That is achieved structurally rather than by runtime
checks in hot loops:

* ``Recorder`` is a no-op base class with ``enabled = False``; callers
  that hold a recorder reference normalise it to ``None`` when it is not
  enabled, so the per-event paths never see a recorder at all.
* Counters the engines maintain anyway (churn drops, loss drops) are
  read as before/after deltas at ``Simulator.run()`` boundaries.
* The only genuinely per-event observation — queue depth tracking — is
  opt-in (``TelemetryRecorder(queue_depth=True)``) because it shadows
  ``EventQueue.push`` with a counting wrapper.

A recorder is installed either explicitly (the ``telemetry=`` keyword on
``Simulator``/``run_attack_experiment``) or ambiently via the
``recording()`` context manager, which every ``Simulator`` consults at
construction time.  The ambient route is what lets the scenario runner
and the benchmark harness instrument protocol sessions without touching
any protocol build signature.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

logger = logging.getLogger(__name__)

__all__ = [
    "Recorder",
    "TelemetryRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "recording",
]


class _NullSpan:
    """Reusable, stateless context manager for no-op spans."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """No-op recorder: the default when telemetry is disabled.

    Every method is safe to call and does nothing; ``enabled`` is the
    single flag engines consult (once, at construction) to decide
    whether to keep a reference at all.
    """

    enabled = False
    #: Opt-in per-event queue depth tracking (see TelemetryRecorder).
    queue_depth = False

    def incr(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the gauge ``name`` to ``value`` if it is a new peak."""

    def fallback(self, reason: str) -> None:
        """Count one engine-fallback occurrence under ``reason``."""

    def record_shard(self, shard: int, counters: Dict[str, int]) -> None:
        """Merge a worker's counter dict under its shard index."""

    def span(self, name: str, **attrs: Any) -> Any:
        """Context manager timing a phase; no-op here."""
        return _NULL_SPAN

    def sample_rss(self) -> None:
        """Record the process's peak RSS into the gauges."""


#: Shared no-op instance; handy for ``telemetry or NULL_RECORDER``.
NULL_RECORDER = Recorder()


class TelemetryRecorder(Recorder):
    """Concrete recorder: counters, gauges, histograms, spans, shards.

    All state is plain Python dicts/lists of JSON-serialisable values so
    a recorder document survives ``pickle`` (multiprocessing sweeps) and
    ``json.dump`` unchanged.  Timings use ``time.perf_counter`` relative
    to the recorder's creation, expressed in integer microseconds.

    ``queue_depth=True`` additionally asks simulators to track the event
    queue's live-entry peak; that shadows the queue's push methods with
    counting wrappers and therefore costs a little per event, which is
    why it is not the default.
    """

    enabled = True

    #: Hard cap on recorded spans; protocols that poll ``run()`` in a
    #: loop would otherwise grow the tree without bound.  Overflow is
    #: counted in the ``spans_dropped`` counter.
    MAX_SPANS = 10_000

    def __init__(self, queue_depth: bool = False) -> None:
        self.queue_depth = queue_depth
        self._origin = time.perf_counter()
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, Any]] = {}
        self.fallbacks: Dict[str, int] = {}
        self.shards: Dict[int, Dict[str, int]] = {}
        self.spans: List[Dict[str, Any]] = []
        self._stack: List[Dict[str, Any]] = []
        self._span_count = 0

    # -- clocks ---------------------------------------------------------

    def _now_us(self) -> int:
        return int((time.perf_counter() - self._origin) * 1_000_000)

    # -- scalar instruments --------------------------------------------

    def incr(self, name: str, value: int = 1) -> None:
        if value:
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {
                "count": 0,
                "sum": 0,
                "min": value,
                "max": value,
                "buckets": {},
            }
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value
        # Power-of-two bucket upper bounds keyed as strings for JSON:
        # value v lands in the smallest 2**k >= v (0 gets its own bucket).
        if value <= 0:
            key = "0"
        else:
            key = str(1 << max(0, int(value - 1).bit_length()))
        buckets = hist["buckets"]
        buckets[key] = buckets.get(key, 0) + 1

    def gauge_max(self, name: str, value: float) -> None:
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def record_shard(self, shard: int, counters: Dict[str, int]) -> None:
        slot = self.shards.setdefault(int(shard), {})
        for key, value in counters.items():
            slot[key] = slot.get(key, 0) + int(value)

    def sample_rss(self) -> None:
        try:
            import resource
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux; macOS reports bytes but the gauge is
        # informational, so we keep the raw platform unit and name it so.
        self.gauge_max("peak_rss_kib", float(usage.ru_maxrss))

    # -- spans ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Dict[str, Any]]]:
        """Time a phase; nests into a tree following ``with`` nesting."""
        node = self._open_span(name, attrs)
        try:
            yield node
        finally:
            self._close_span(node)

    def _open_span(
        self, name: str, attrs: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        if self._span_count >= self.MAX_SPANS:
            self.incr("spans_dropped")
            return None
        self._span_count += 1
        node: Dict[str, Any] = {
            "name": name,
            "start_us": self._now_us(),
            "dur_us": None,
            "children": [],
        }
        if attrs:
            node["attrs"] = dict(attrs)
        parent = self._stack[-1] if self._stack else None
        (parent["children"] if parent is not None else self.spans).append(node)
        self._stack.append(node)
        return node

    def _close_span(self, node: Optional[Dict[str, Any]]) -> None:
        if node is None:
            return
        node["dur_us"] = max(0, self._now_us() - node["start_us"])
        # Pop down to the node so a mispaired close cannot corrupt the
        # stack for subsequent spans.
        while self._stack:
            if self._stack.pop() is node:
                break

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Snapshot as a JSON document (see tests/telemetry/*.schema.json)."""
        now = self._now_us()

        def _copy(span: Dict[str, Any]) -> Dict[str, Any]:
            out = dict(span)
            if out["dur_us"] is None:  # still open: report elapsed so far
                out["dur_us"] = max(0, now - out["start_us"])
            out["children"] = [_copy(child) for child in span["children"]]
            return out

        return {
            "version": 1,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {**hist, "buckets": dict(hist["buckets"])}
                for name, hist in self.histograms.items()
            },
            "fallbacks": dict(self.fallbacks),
            "shards": {
                str(shard): dict(counters)
                for shard, counters in self.shards.items()
            },
            "spans": [_copy(span) for span in self.spans],
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """This recorder alone as a ``chrome://tracing`` document."""
        from repro.telemetry.export import chrome_trace

        return chrome_trace(self.to_dict())


# -- ambient recorder ----------------------------------------------------

_CURRENT: Optional[Recorder] = None


def current_recorder() -> Optional[Recorder]:
    """The ambiently installed recorder, or ``None``.

    ``Simulator`` consults this at construction when no explicit
    ``telemetry=`` argument is given, so an enclosing ``recording()``
    block instruments every simulator built inside it — including the
    ones protocol adapters build internally.
    """
    return _CURRENT


@contextmanager
def recording(recorder: Optional[Recorder]) -> Iterator[Optional[Recorder]]:
    """Install ``recorder`` as the ambient recorder for the block.

    ``recording(None)`` (and recorders with ``enabled`` false) is a
    transparent no-op, so call sites can wrap unconditionally.
    """
    global _CURRENT
    if recorder is None or not recorder.enabled:
        yield None
        return
    previous = _CURRENT
    _CURRENT = recorder
    try:
        yield recorder
    finally:
        _CURRENT = previous
