"""Flood-and-prune broadcast.

The reference dissemination mechanism of blockchain peer-to-peer networks and
Phase 3 of the paper's protocol: on the first reception of a payload a node
forwards it to every neighbour except the one it came from; duplicates are
dropped ("pruned").  Delivery to all nodes of a connected overlay is
guaranteed, at a cost of roughly ``2·|E| − |V| + 1`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Set

import networkx as nx

from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message
from repro.network.node import Node
from repro.network.simulator import Simulator


class FloodNode(Node):
    """A peer performing flood-and-prune broadcasts."""

    #: Message kind used on the wire.
    MESSAGE_KIND = "flood"

    def __init__(self, node_id: Hashable, payload_size_bytes: int = 256) -> None:
        super().__init__(node_id)
        self.payload_size_bytes = payload_size_bytes
        self._seen: Set[Hashable] = set()

    def originate(self, payload_id: Hashable) -> None:
        """Introduce a payload and flood it to every neighbour."""
        if payload_id in self._seen:
            return
        self._seen.add(payload_id)
        self.mark_delivered(payload_id)
        self._forward(payload_id, exclude=None)

    def on_message(self, sender: Hashable, message: Message) -> None:
        if message.kind != self.MESSAGE_KIND:
            self.on_unhandled_message(sender, message)
            return
        if message.payload_id in self._seen:
            return  # prune
        self._seen.add(message.payload_id)
        self.mark_delivered(message.payload_id)
        self._forward(message.payload_id, exclude=sender)

    def on_unhandled_message(self, sender: Hashable, message: Message) -> None:
        """Hook for subclasses that mix flooding with other message kinds."""
        raise ValueError(
            f"unexpected message kind {message.kind!r} at node {self.node_id!r}"
        )

    def has_seen(self, payload_id: Hashable) -> bool:
        """Whether this node already processed the payload."""
        return payload_id in self._seen

    def _forward(self, payload_id: Hashable, exclude: Optional[Hashable]) -> None:
        for peer in self.neighbours:
            if peer != exclude:
                self.send(
                    peer,
                    Message(
                        kind=self.MESSAGE_KIND,
                        payload_id=payload_id,
                        size_bytes=self.payload_size_bytes,
                    ),
                )


@dataclass
class FloodRunResult:
    """Outcome of a standalone flood-and-prune run."""

    messages: int
    reach: int
    completion_time: Optional[float]
    simulator: Simulator


def run_flood(
    graph: nx.Graph,
    source: Hashable,
    payload_id: Hashable = "tx",
    seed: Optional[int] = None,
    latency: Optional[LatencyModel] = None,
) -> FloodRunResult:
    """Broadcast one payload with flood-and-prune and report the cost."""
    simulator = Simulator(graph, latency=latency or ConstantLatency(0.1), seed=seed)
    simulator.populate(FloodNode)
    origin = simulator.node(source)
    assert isinstance(origin, FloodNode)
    origin.originate(payload_id)
    simulator.run_until_idle()
    reach = simulator.metrics.reach(payload_id)
    return FloodRunResult(
        messages=simulator.metrics.message_count(payload_id=payload_id),
        reach=reach,
        completion_time=simulator.metrics.completion_time(payload_id)
        if reach == graph.number_of_nodes()
        else None,
        simulator=simulator,
    )
