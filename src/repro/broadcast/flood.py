"""Flood-and-prune broadcast.

The reference dissemination mechanism of blockchain peer-to-peer networks and
Phase 3 of the paper's protocol: on the first reception of a payload a node
forwards it to every neighbour except the one it came from; duplicates are
dropped ("pruned").  Delivery to all nodes of a connected overlay is
guaranteed, at a cost of roughly ``2·|E| − |V| + 1`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Set

import networkx as nx
import numpy as np

from repro.network.batched import CohortKernel
from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message
from repro.network.node import Node
from repro.network.simulator import Simulator


class FloodNode(Node):
    """A peer performing flood-and-prune broadcasts."""

    #: Message kind used on the wire.
    MESSAGE_KIND = "flood"

    def __init__(self, node_id: Hashable, payload_size_bytes: int = 256) -> None:
        super().__init__(node_id)
        self.payload_size_bytes = payload_size_bytes
        self._seen: Set[Hashable] = set()

    def originate(self, payload_id: Hashable) -> None:
        """Introduce a payload and flood it to every neighbour."""
        if payload_id in self._seen:
            return
        self._seen.add(payload_id)
        self.mark_delivered(payload_id)
        self._forward(payload_id, exclude=None)

    def on_message(self, sender: Hashable, message: Message) -> None:
        if message.kind != self.MESSAGE_KIND:
            self.on_unhandled_message(sender, message)
            return
        if message.payload_id in self._seen:
            return  # prune
        self._seen.add(message.payload_id)
        self.mark_delivered(message.payload_id)
        self._forward(message.payload_id, exclude=sender)

    def on_unhandled_message(self, sender: Hashable, message: Message) -> None:
        """Hook for subclasses that mix flooding with other message kinds."""
        raise ValueError(
            f"unexpected message kind {message.kind!r} at node {self.node_id!r}"
        )

    def has_seen(self, payload_id: Hashable) -> bool:
        """Whether this node already processed the payload."""
        return payload_id in self._seen

    def _forward(self, payload_id: Hashable, exclude: Optional[Hashable]) -> None:
        for peer in self.neighbours:
            if peer != exclude:
                self.send(
                    peer,
                    Message(
                        kind=self.MESSAGE_KIND,
                        payload_id=payload_id,
                        size_bytes=self.payload_size_bytes,
                    ),
                )


class FloodCohortKernel(CohortKernel):
    """Vectorised flood-and-prune cohorts for the batched engine.

    The fan-out is the CSR form of :meth:`FloodNode._forward`: every
    neighbour except the delivering sender, with offline nodes and severed
    links masked out exactly as ``neighbours_of`` excludes them.  One
    :class:`~repro.network.message.Message` is shared across a node's
    forwards (the event engine allocates one per forward); uid order still
    equals log order among equal-time deliveries, and digests exclude uids,
    so every observable — including first-spy tie-breaking — is identical.
    """

    node_type = FloodNode
    kind = FloodNode.MESSAGE_KIND
    # Flooding consumes no randomness at all — no coin flips, no sampling —
    # so shard workers can process cohorts without any shared RNG stream.
    rng_free = True
    # Forward to every neighbour except the delivering sender: the one
    # fan-out shape shard workers implement natively.
    shard_fanout = "exclude_sender"

    def _node_has_seen(self, node: FloodNode, payload_id: Hashable) -> bool:
        return payload_id in node._seen

    def _mark_node_seen(self, node: FloodNode, payload_id: Hashable) -> None:
        node._seen.add(payload_id)

    def prior_seen_ids(self, payload_id: Hashable):
        # Every flood code path writes ``_seen`` and ``mark_delivered``
        # together, so ``_seen`` holders are a subset of the delivered
        # index; filtering that (usually tiny) index through the node
        # state keeps the answer exact even if a caller marked a node
        # delivered out of band.
        nodes = self.simulator._nodes
        entries = self.simulator.metrics._deliveries_by_payload.get(
            payload_id, ()
        )
        return [
            node_id
            for _, node_id in entries
            if payload_id in nodes[node_id]._seen
        ]

    def shard_node_sizes(self) -> np.ndarray:
        nodes = self.simulator._nodes
        return np.fromiter(
            (nodes[node_id].payload_size_bytes
             for node_id in self._topology.ids),
            dtype=np.int64,
            count=self._topology.n,
        )

    def _fan_out(
        self,
        time: float,
        fresh_receivers: np.ndarray,
        fresh_exclude: np.ndarray,
        payload_id: Hashable,
    ) -> None:
        topology = self._topology
        indptr = topology.indptr
        starts = indptr[fresh_receivers]
        counts = indptr[fresh_receivers + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return
        # Flat CSR positions of every (forwarder, neighbour) pair: repeat
        # each row start, then add a per-row 0..degree-1 ramp.
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        flat = np.repeat(starts, counts) + offsets
        targets = topology.indices[flat]
        senders = np.repeat(fresh_receivers, counts)
        keep = targets != np.repeat(fresh_exclude, counts)
        if self._has_churn:
            keep &= self._online[targets]
            keep &= self._edge_ok[flat]

        nodes = self.simulator._nodes
        ids = topology.ids
        fresh_count = len(fresh_receivers)
        node_messages = np.empty(fresh_count, dtype=object)
        node_sizes = np.empty(fresh_count, dtype=np.int64)
        for i, r in enumerate(fresh_receivers.tolist()):
            size = nodes[ids[r]].payload_size_bytes
            node_sizes[i] = size
            node_messages[i] = Message(
                kind=self.kind, payload_id=payload_id, size_bytes=size
            )
        self._emit(
            time,
            senders[keep],
            targets[keep],
            np.repeat(node_messages, counts)[keep],
            np.repeat(node_sizes, counts)[keep],
            payload_id,
        )


FloodNode.COHORT_KERNEL = FloodCohortKernel


@dataclass
class FloodRunResult:
    """Outcome of a standalone flood-and-prune run."""

    messages: int
    reach: int
    completion_time: Optional[float]
    simulator: Simulator


def run_flood(
    graph: nx.Graph,
    source: Hashable,
    payload_id: Hashable = "tx",
    seed: Optional[int] = None,
    latency: Optional[LatencyModel] = None,
    engine: str = "event",
    shards: Optional[int] = None,
) -> FloodRunResult:
    """Broadcast one payload with flood-and-prune and report the cost."""
    simulator = Simulator(
        graph,
        latency=latency or ConstantLatency(0.1),
        seed=seed,
        engine=engine,
        shards=shards,
    )
    simulator.populate(FloodNode)
    origin = simulator.node(source)
    assert isinstance(origin, FloodNode)
    origin.originate(payload_id)
    simulator.run_until_idle()
    reach = simulator.metrics.reach(payload_id)
    return FloodRunResult(
        messages=simulator.metrics.message_count(payload_id=payload_id),
        reach=reach,
        completion_time=simulator.metrics.completion_time(payload_id)
        if reach == graph.number_of_nodes()
        else None,
        simulator=simulator,
    )
