"""Dandelion: two-phase statistical spreading (Section III-A of the paper).

Dandelion (Bojja Venkatakrishnan et al., 2017) spreads a transaction in two
phases.  In the *stem* phase the transaction travels along an approximation
of a Hamiltonian path: every node forwards it to exactly one successor.  At
each stem hop the message switches to the *fluff* phase with probability
``q``; from that node on, a regular flood-and-prune broadcast delivers it to
everyone.  Anonymity comes from the stem: the node starting the fluff phase
is many unbiased hops away from the true originator.

The stem successors are re-randomised periodically ("epochs") to limit
topology-learning attacks; :meth:`DandelionNode.new_epoch` and
:func:`assign_stem_successors` implement that re-randomisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

import networkx as nx

from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message
from repro.network.node import Node
from repro.network.simulator import Simulator


@dataclass
class DandelionConfig:
    """Parameters of the Dandelion protocol.

    Attributes:
        fluff_probability: probability ``q`` of switching from stem to fluff
            at every stem hop (Dandelion++ uses q = 0.1 by default).
        max_stem_length: hard upper bound on stem hops; guarantees the switch
            to fluff even with an adversarially small ``q``.
        payload_size_bytes: accounted message size.
    """

    fluff_probability: float = 0.1
    max_stem_length: int = 20
    payload_size_bytes: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.fluff_probability <= 1.0:
            raise ValueError("fluff probability must be in (0, 1]")
        if self.max_stem_length < 1:
            raise ValueError("max stem length must be at least 1")


def assign_stem_successors(
    graph: nx.Graph, rng: random.Random
) -> Dict[Hashable, Hashable]:
    """Pick one stem successor per node, approximating a Hamiltonian path.

    Every node selects a uniformly random neighbour as its successor.  The
    resulting functional graph is the line-graph approximation Dandelion
    uses; repeating the selection each epoch prevents long-lived topology
    leaks.
    """
    successors: Dict[Hashable, Hashable] = {}
    for node in sorted(graph.nodes, key=repr):
        neighbours = sorted(graph.neighbors(node), key=repr)
        if not neighbours:
            raise ValueError(f"node {node!r} has no neighbours")
        successors[node] = rng.choice(neighbours)
    return successors


class DandelionNode(Node):
    """A peer running the Dandelion stem/fluff protocol."""

    STEM_KIND = "dandelion_stem"
    FLUFF_KIND = "dandelion_fluff"

    def __init__(
        self,
        node_id: Hashable,
        config: Optional[DandelionConfig] = None,
        stem_successor: Optional[Hashable] = None,
    ) -> None:
        super().__init__(node_id)
        self.config = config or DandelionConfig()
        self.stem_successor = stem_successor
        self._seen: Set[Hashable] = set()
        #: payload_id -> node at which the fluff phase started (local view).
        self.fluff_started: Dict[Hashable, Hashable] = {}

    # ------------------------------------------------------------------
    # Epoch management
    # ------------------------------------------------------------------
    def new_epoch(self, successor: Hashable) -> None:
        """Install a freshly drawn stem successor for the new epoch."""
        if successor not in self.neighbours:
            raise ValueError(
                f"stem successor {successor!r} is not a neighbour of "
                f"{self.node_id!r}"
            )
        self.stem_successor = successor

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def originate(self, payload_id: Hashable) -> None:
        """Introduce a payload; it enters the stem phase immediately."""
        if payload_id in self._seen:
            return
        self._seen.add(payload_id)
        self.mark_delivered(payload_id)
        self._stem_or_fluff(payload_id, hops=0)

    def on_message(self, sender: Hashable, message: Message) -> None:
        payload_id = message.payload_id
        if message.kind == self.STEM_KIND:
            if payload_id not in self._seen:
                self._seen.add(payload_id)
                self.mark_delivered(payload_id)
            self._stem_or_fluff(payload_id, hops=message.body["hops"])
        elif message.kind == self.FLUFF_KIND:
            if payload_id in self._seen and payload_id in self.fluff_started:
                return  # prune
            if payload_id not in self._seen:
                self._seen.add(payload_id)
                self.mark_delivered(payload_id)
            self.fluff_started.setdefault(payload_id, sender)
            self._flood(payload_id, exclude=sender)
        else:
            raise ValueError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stem_or_fluff(self, payload_id: Hashable, hops: int) -> None:
        switch = (
            hops >= self.config.max_stem_length
            or self.simulator.rng.random() < self.config.fluff_probability
        )
        if switch:
            self.fluff_started[payload_id] = self.node_id
            self._flood(payload_id, exclude=None)
            return
        successor = self.stem_successor
        if successor is None:
            raise RuntimeError(
                f"node {self.node_id!r} has no stem successor assigned"
            )
        self.send(
            successor,
            Message(
                kind=self.STEM_KIND,
                payload_id=payload_id,
                body={"hops": hops + 1},
                size_bytes=self.config.payload_size_bytes,
            ),
        )

    def _flood(self, payload_id: Hashable, exclude: Optional[Hashable]) -> None:
        for peer in self.neighbours:
            if peer != exclude:
                self.send(
                    peer,
                    Message(
                        kind=self.FLUFF_KIND,
                        payload_id=payload_id,
                        size_bytes=self.config.payload_size_bytes,
                    ),
                )


@dataclass
class DandelionRunResult:
    """Outcome of a standalone Dandelion run."""

    messages: int
    stem_messages: int
    fluff_messages: int
    reach: int
    completion_time: Optional[float]
    simulator: Simulator


def run_dandelion(
    graph: nx.Graph,
    source: Hashable,
    payload_id: Hashable = "tx",
    config: Optional[DandelionConfig] = None,
    seed: Optional[int] = None,
    latency: Optional[LatencyModel] = None,
) -> DandelionRunResult:
    """Broadcast one payload with Dandelion and report traffic statistics."""
    config = config or DandelionConfig()
    rng = random.Random(seed)
    simulator = Simulator(graph, latency=latency or ConstantLatency(0.1), seed=seed)
    successors = assign_stem_successors(graph, rng)
    simulator.populate(
        lambda node_id: DandelionNode(node_id, config, successors[node_id])
    )
    origin = simulator.node(source)
    assert isinstance(origin, DandelionNode)
    origin.originate(payload_id)
    simulator.run_until_idle()
    reach = simulator.metrics.reach(payload_id)
    return DandelionRunResult(
        messages=simulator.metrics.message_count(payload_id=payload_id),
        stem_messages=simulator.metrics.message_count(
            kind=DandelionNode.STEM_KIND, payload_id=payload_id
        ),
        fluff_messages=simulator.metrics.message_count(
            kind=DandelionNode.FLUFF_KIND, payload_id=payload_id
        ),
        reach=reach,
        completion_time=simulator.metrics.completion_time(payload_id)
        if reach == graph.number_of_nodes()
        else None,
        simulator=simulator,
    )
