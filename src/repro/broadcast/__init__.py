"""Baseline dissemination protocols: flood-and-prune, gossip and Dandelion.

These are the comparison points of the paper's evaluation:

* flood-and-prune (:mod:`repro.broadcast.flood`) is both the efficiency
  baseline (Section V-A) and Phase 3 of the proposed protocol;
* probabilistic gossip (:mod:`repro.broadcast.gossip`) is a common
  lower-overhead alternative included for the ablation benchmarks;
* Dandelion (:mod:`repro.broadcast.dandelion`) is the topological privacy
  mechanism of Section III-A: a stem phase along a line graph followed by a
  fluff phase using plain flooding.
"""

from repro.broadcast.dandelion import DandelionConfig, DandelionNode, run_dandelion
from repro.broadcast.flood import FloodNode, run_flood
from repro.broadcast.gossip import GossipConfig, GossipNode, run_gossip

__all__ = [
    "DandelionConfig",
    "DandelionNode",
    "run_dandelion",
    "FloodNode",
    "run_flood",
    "GossipConfig",
    "GossipNode",
    "run_gossip",
]
