"""Probabilistic gossip broadcast.

A lower-overhead alternative to flooding: on first reception a node forwards
the payload to a random subset of ``fanout`` neighbours.  Gossip trades a
small probability of incomplete delivery for fewer messages; it is included
as an additional baseline for the overhead ablation (not part of the paper's
protocol, but a standard point of comparison for dissemination cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Set

import networkx as nx
import numpy as np

from repro.network.batched import CohortKernel
from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message
from repro.network.node import Node
from repro.network.simulator import Simulator


@dataclass
class GossipConfig:
    """Parameters of the gossip protocol.

    Attributes:
        fanout: number of neighbours a node forwards each new payload to.
        payload_size_bytes: accounted message size.
    """

    fanout: int = 4
    payload_size_bytes: int = 256


class GossipNode(Node):
    """A peer forwarding new payloads to ``fanout`` random neighbours."""

    MESSAGE_KIND = "gossip"

    def __init__(self, node_id: Hashable, config: Optional[GossipConfig] = None) -> None:
        super().__init__(node_id)
        self.config = config or GossipConfig()
        if self.config.fanout < 1:
            raise ValueError("gossip fanout must be at least 1")
        self._seen: Set[Hashable] = set()

    def originate(self, payload_id: Hashable) -> None:
        """Introduce a payload and gossip it onwards."""
        if payload_id in self._seen:
            return
        self._seen.add(payload_id)
        self.mark_delivered(payload_id)
        self._forward(payload_id, exclude=None)

    def on_message(self, sender: Hashable, message: Message) -> None:
        if message.kind != self.MESSAGE_KIND:
            raise ValueError(f"unexpected message kind {message.kind!r}")
        if message.payload_id in self._seen:
            return
        self._seen.add(message.payload_id)
        self.mark_delivered(message.payload_id)
        self._forward(message.payload_id, exclude=sender)

    def _forward(self, payload_id: Hashable, exclude: Optional[Hashable]) -> None:
        candidates = [peer for peer in self.neighbours if peer != exclude]
        if not candidates:
            return
        count = min(self.config.fanout, len(candidates))
        for peer in self.simulator.rng.sample(candidates, count):
            self.send(
                peer,
                Message(
                    kind=self.MESSAGE_KIND,
                    payload_id=payload_id,
                    size_bytes=self.config.payload_size_bytes,
                ),
            )


class GossipCohortKernel(CohortKernel):
    """Gossip cohorts for the batched engine.

    Deliveries, records and churn filtering are fully vectorised; the
    fan-out itself stays per fresh node because it must reproduce
    :meth:`GossipNode._forward` exactly — the same candidate list (CSR rows
    are already in ``neighbours_of`` order, minus offline peers, severed
    links and the delivering sender) fed to ``simulator.rng.sample`` in the
    same processing order, so the protocol RNG stream is draw-for-draw
    identical to the event engine's.
    """

    node_type = GossipNode
    kind = GossipNode.MESSAGE_KIND

    def _node_has_seen(self, node: GossipNode, payload_id: Hashable) -> bool:
        return payload_id in node._seen

    def _mark_node_seen(self, node: GossipNode, payload_id: Hashable) -> None:
        node._seen.add(payload_id)

    def _fan_out(
        self,
        time: float,
        fresh_receivers: np.ndarray,
        fresh_exclude: np.ndarray,
        payload_id: Hashable,
    ) -> None:
        topology = self._topology
        indptr = topology.indptr
        indices = topology.indices
        ids = topology.ids
        index = topology.index
        simulator = self.simulator
        rng = simulator.rng
        nodes = simulator._nodes
        has_churn = self._has_churn
        online = self._online
        edge_ok = self._edge_ok
        send_list: List[int] = []
        target_list: List[int] = []
        message_list: List[Message] = []
        size_list: List[int] = []
        for r, excluded in zip(
            fresh_receivers.tolist(), fresh_exclude.tolist()
        ):
            lo = indptr[r]
            hi = indptr[r + 1]
            row = indices[lo:hi]
            if has_churn:
                row = row[online[row] & edge_ok[lo:hi]]
            candidates = [ids[j] for j in row.tolist() if j != excluded]
            if not candidates:
                continue
            config = nodes[ids[r]].config
            count = min(config.fanout, len(candidates))
            message = Message(
                kind=self.kind,
                payload_id=payload_id,
                size_bytes=config.payload_size_bytes,
            )
            for peer in rng.sample(candidates, count):
                send_list.append(r)
                target_list.append(index[peer])
                message_list.append(message)
                size_list.append(config.payload_size_bytes)
        if not target_list:
            return
        messages = np.empty(len(message_list), dtype=object)
        messages[:] = message_list
        self._emit(
            time,
            np.asarray(send_list, dtype=np.int64),
            np.asarray(target_list, dtype=np.int64),
            messages,
            np.asarray(size_list, dtype=np.int64),
            payload_id,
        )


GossipNode.COHORT_KERNEL = GossipCohortKernel


@dataclass
class GossipRunResult:
    """Outcome of a standalone gossip run."""

    messages: int
    reach: int
    delivered_fraction: float
    simulator: Simulator


def run_gossip(
    graph: nx.Graph,
    source: Hashable,
    payload_id: Hashable = "tx",
    config: Optional[GossipConfig] = None,
    seed: Optional[int] = None,
    latency: Optional[LatencyModel] = None,
    engine: str = "event",
    shards: Optional[int] = None,
) -> GossipRunResult:
    """Broadcast one payload with gossip and report reach and cost."""
    simulator = Simulator(
        graph,
        latency=latency or ConstantLatency(0.1),
        seed=seed,
        engine=engine,
        shards=shards,
    )
    config = config or GossipConfig()
    simulator.populate(lambda node_id: GossipNode(node_id, config))
    origin = simulator.node(source)
    assert isinstance(origin, GossipNode)
    origin.originate(payload_id)
    simulator.run_until_idle()
    reach = simulator.metrics.reach(payload_id)
    return GossipRunResult(
        messages=simulator.metrics.message_count(payload_id=payload_id),
        reach=reach,
        delivered_fraction=reach / graph.number_of_nodes(),
        simulator=simulator,
    )
