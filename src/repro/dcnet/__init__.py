"""Dining-cryptographers network (Phase 1 of the paper's protocol).

This package implements the DC-net variant given in Fig. 4 of the paper:
every member splits its (possibly empty) message into ``k`` XOR shares, one
per other group member, and two further accumulation exchanges let every
member recover the XOR of all *other* members' messages without learning who
sent what.  On top of the raw round algorithm the package provides

* payload framing with length prefix and CRC-32 (collision detection),
* the 32-bit length-announcement optimisation of Section V-A,
* collision handling with randomised exponential backoff,
* a simplified von-Ahn-style blame protocol based on share commitments,
* a :class:`~repro.dcnet.group_session.DCNetGroupSession` that strings rounds
  together over time and is what Phase 1 of the core protocol drives.
"""

from repro.dcnet.announcement import (
    ANNOUNCEMENT_FRAME_BYTES,
    decode_announcement,
    encode_announcement,
)
from repro.dcnet.blame import BlameProtocol, BlameVerdict
from repro.dcnet.collision import BackoffPolicy, decode_payload, encode_payload
from repro.dcnet.group_session import DCNetGroupSession, RoundOutcome, SessionStats
from repro.dcnet.member import DCNetMember
from repro.dcnet.padding import pad_message, unpad_message
from repro.dcnet.round import DCNetRoundResult, run_round

__all__ = [
    "ANNOUNCEMENT_FRAME_BYTES",
    "decode_announcement",
    "encode_announcement",
    "BlameProtocol",
    "BlameVerdict",
    "BackoffPolicy",
    "decode_payload",
    "encode_payload",
    "DCNetGroupSession",
    "RoundOutcome",
    "SessionStats",
    "DCNetMember",
    "pad_message",
    "unpad_message",
    "DCNetRoundResult",
    "run_round",
]
