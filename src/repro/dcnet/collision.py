"""Collision detection and backoff for DC-net rounds.

When two or more members transmit in the same round the recovered frame is
the XOR of their messages — garbage.  Following the paper (Fig. 4 caption and
Section V-A), payloads carry CRC bits so receivers can detect the collision,
and colliding senders retry after a randomised backoff.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.crypto.crc import append_crc, split_crc, verify_crc
from repro.dcnet.padding import pad_message, unpad_message

#: Overhead added to a payload by framing: 4-byte length prefix + 4-byte CRC.
FRAME_OVERHEAD_BYTES = 8


def encode_payload(payload: bytes, frame_length: int) -> bytes:
    """Frame ``payload`` for a DC-net round of ``frame_length`` bytes.

    The payload is padded (length prefix + zero fill) to ``frame_length - 4``
    bytes and the CRC-32 of the padded content is appended, so the resulting
    frame is exactly ``frame_length`` bytes long.

    Raises:
        ValueError: if the payload does not fit in the frame.
    """
    if frame_length <= FRAME_OVERHEAD_BYTES:
        raise ValueError(
            f"frame length must exceed the framing overhead of "
            f"{FRAME_OVERHEAD_BYTES} bytes"
        )
    padded = pad_message(payload, frame_length - 4)
    return append_crc(padded)


def decode_payload(frame: bytes) -> Optional[bytes]:
    """Recover the payload from a frame, or ``None`` on a detected collision.

    A frame whose CRC does not verify is treated as a collision (or garbage),
    mirroring how the protocol distinguishes "exactly one sender" from
    "multiple senders collided".
    """
    if not verify_crc(frame):
        return None
    padded, _ = split_crc(frame)
    try:
        return unpad_message(padded)
    except ValueError:
        return None


class BackoffPolicy:
    """Randomised exponential backoff, measured in DC-net rounds.

    After the ``n``-th consecutive collision a sender waits a number of rounds
    drawn uniformly from ``[1, min(2**n, max_window)]`` before retrying.
    """

    def __init__(
        self,
        rng: random.Random,
        base_window: int = 2,
        max_window: int = 32,
    ) -> None:
        if base_window < 1 or max_window < base_window:
            raise ValueError("need 1 <= base_window <= max_window")
        self._rng = rng
        self._base_window = base_window
        self._max_window = max_window

    def delay_rounds(self, attempt: int) -> int:
        """Rounds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        window = min(self._base_window ** attempt, self._max_window)
        return self._rng.randint(1, window)
