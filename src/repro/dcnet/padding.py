"""Fixed-length payload padding for DC-net rounds.

A DC-net round transports exactly ``n`` bytes (the "maximum message length"
of Fig. 4), so shorter payloads are padded.  The framing used here is a
4-byte big-endian length prefix followed by the payload and zero padding,
which makes unpadding unambiguous even when the payload itself ends in zero
bytes.
"""

from __future__ import annotations

#: Number of bytes used by the length prefix.
LENGTH_PREFIX_BYTES = 4


def padded_length(payload_length: int) -> int:
    """Frame size needed to carry a payload of ``payload_length`` bytes."""
    if payload_length < 0:
        raise ValueError("payload length must be non-negative")
    return LENGTH_PREFIX_BYTES + payload_length


def pad_message(payload: bytes, frame_length: int) -> bytes:
    """Pad ``payload`` into a frame of exactly ``frame_length`` bytes.

    Raises:
        ValueError: if the payload (plus its length prefix) does not fit.
    """
    required = padded_length(len(payload))
    if frame_length < required:
        raise ValueError(
            f"payload of {len(payload)} bytes does not fit into a "
            f"{frame_length}-byte frame (needs {required})"
        )
    prefix = len(payload).to_bytes(LENGTH_PREFIX_BYTES, "big")
    return prefix + payload + bytes(frame_length - required)


def unpad_message(frame: bytes) -> bytes:
    """Extract the payload from a frame produced by :func:`pad_message`.

    Raises:
        ValueError: if the frame is malformed (too short or inconsistent
            length prefix).
    """
    if len(frame) < LENGTH_PREFIX_BYTES:
        raise ValueError("frame is shorter than the length prefix")
    declared = int.from_bytes(frame[:LENGTH_PREFIX_BYTES], "big")
    if LENGTH_PREFIX_BYTES + declared > len(frame):
        raise ValueError(
            f"declared payload length {declared} exceeds frame size {len(frame)}"
        )
    return frame[LENGTH_PREFIX_BYTES : LENGTH_PREFIX_BYTES + declared]
