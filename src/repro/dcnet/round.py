"""Execution of one complete DC-net round across a whole group.

:func:`run_round` wires the per-member state machines of
:class:`~repro.dcnet.member.DCNetMember` together: it performs the three
exchange steps for every member, counts every transmitted share (the paper's
O(k²) cost), and reports what each member recovered.

The function is deliberately independent of the network simulator so it can
be unit-tested and benchmarked in isolation; the simulator-facing integration
lives in :mod:`repro.dcnet.group_session` and :mod:`repro.core`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional

from repro.crypto.pads import zero_bytes
from repro.dcnet.member import DCNetMember


@dataclass
class DCNetRoundResult:
    """Outcome of one DC-net round.

    Attributes:
        recovered: per member, the XOR of all *other* members' framed messages.
        messages_sent: total number of point-to-point transmissions.
        messages_per_member: transmissions per member (three per peer).
        frame_length: the fixed frame size used.
        senders: members that contributed a non-zero message (simulation-side
            ground truth; not derivable from the protocol messages).
    """

    recovered: Dict[Hashable, bytes]
    messages_sent: int
    messages_per_member: Dict[Hashable, int]
    frame_length: int
    senders: List[Hashable] = field(default_factory=list)

    def recovered_by(self, member: Hashable) -> bytes:
        """The frame recovered by ``member``."""
        return self.recovered[member]

    @property
    def anyone_sent(self) -> bool:
        """Whether the round carried at least one non-zero message."""
        return any(value != zero_bytes(self.frame_length) for value in self.recovered.values())


def expected_messages(group_size: int) -> int:
    """Total transmissions of one round for a group of ``group_size``.

    Every member sends one value to every peer in each of the three exchange
    steps, i.e. ``3 * group_size * (group_size - 1)`` — the O(k²) per-round
    cost the paper quotes in Section V-A.
    """
    if group_size < 2:
        raise ValueError("a DC-net group needs at least two members")
    return 3 * group_size * (group_size - 1)


def run_round(
    group: Iterable[Hashable],
    messages: Dict[Hashable, bytes],
    frame_length: int,
    rng: random.Random,
    tampered_shares: Optional[Dict[Hashable, bytes]] = None,
) -> DCNetRoundResult:
    """Run one DC-net round.

    Args:
        group: identities of all group members.
        messages: framed messages per sending member; members not present
            contribute the all-zero message.  Frames must already be padded to
            ``frame_length`` (see :mod:`repro.dcnet.padding`).
        frame_length: fixed frame size of the round.
        rng: randomness source for the share splitting.
        tampered_shares: optional map ``{member: replacement_share}`` used by
            the tests and the blame-protocol experiments to model a disruptor
            that replaces every share it sends with the given bytes.  Honest
            runs leave this ``None``.

    Returns:
        A :class:`DCNetRoundResult` with per-member recovery and traffic cost.
    """
    member_ids = sorted(set(group), key=repr)
    if len(member_ids) < 2:
        raise ValueError("a DC-net group needs at least two members")
    unknown_senders = set(messages) - set(member_ids)
    if unknown_senders:
        raise ValueError(f"messages from non-members: {sorted(unknown_senders, key=repr)}")

    members = {
        member_id: DCNetMember(member_id, member_ids, frame_length)
        for member_id in member_ids
    }
    messages_per_member: Dict[Hashable, int] = {m: 0 for m in member_ids}

    # Step 1 + 2: every member prepares and "sends" its shares.
    outgoing_shares: Dict[Hashable, Dict[Hashable, bytes]] = {}
    for member_id in member_ids:
        frame = messages.get(member_id)
        shares = members[member_id].prepare_shares(frame, rng)
        if tampered_shares and member_id in tampered_shares:
            replacement = tampered_shares[member_id]
            if len(replacement) != frame_length:
                raise ValueError("tampered share must match the frame length")
            shares = {peer: replacement for peer in shares}
        outgoing_shares[member_id] = shares
        messages_per_member[member_id] += len(shares)

    # Step 3 + 4 + 5: deliver shares, compute S, produce first accumulations.
    first_accumulations: Dict[Hashable, Dict[Hashable, bytes]] = {}
    for member_id in member_ids:
        inbox = {
            sender: outgoing_shares[sender][member_id]
            for sender in member_ids
            if sender != member_id
        }
        first_accumulations[member_id] = members[member_id].receive_shares(inbox)
        messages_per_member[member_id] += len(first_accumulations[member_id])

    # Step 6 + 7 + 8: deliver accumulations, compute T, produce final values.
    for member_id in member_ids:
        inbox = {
            sender: first_accumulations[sender][member_id]
            for sender in member_ids
            if sender != member_id
        }
        final_values = members[member_id].receive_accumulations(inbox)
        messages_per_member[member_id] += len(final_values)

    recovered = {member_id: members[member_id].recover() for member_id in member_ids}
    senders = [
        member_id
        for member_id, frame in messages.items()
        if frame and frame != zero_bytes(frame_length)
    ]
    return DCNetRoundResult(
        recovered=recovered,
        messages_sent=sum(messages_per_member.values()),
        messages_per_member=messages_per_member,
        frame_length=frame_length,
        senders=sorted(senders, key=repr),
    )
