"""Multi-round DC-net group session.

One :class:`DCNetGroupSession` models the periodic operation of a single
group of ``k`` nodes (Phase 1 of the paper's protocol): at every round
interval the group runs a cheap 32-bit *announcement* round; when exactly one
member announced a pending payload, a follow-up round of exactly the
announced size transports it.  Collisions (two members announcing in the same
round) are detected through the CRC and resolved with randomised backoff.

The session is self-contained — it does not need the network simulator — and
reports detailed statistics (rounds, transmissions, bytes, collisions) that
the E2 benchmark and the core protocol consume.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, Iterable, List, Optional

from repro.dcnet.announcement import (
    ANNOUNCEMENT_FRAME_BYTES,
    decode_announcement,
    encode_announcement,
)
from repro.dcnet.collision import BackoffPolicy, decode_payload, encode_payload
from repro.dcnet.round import DCNetRoundResult, expected_messages, run_round


@dataclass
class RoundOutcome:
    """What happened in one call to :meth:`DCNetGroupSession.run_round`.

    Attributes:
        round_index: sequential round number within the session.
        kind: one of ``"idle"``, ``"collision"``, ``"delivery"``.
        payload: the delivered payload bytes (``"delivery"`` only).
        true_sender: ground-truth sender of the delivered payload; available
            to the simulation for evaluation, never derived from protocol
            messages.
        messages_sent: total point-to-point transmissions of this round
            (announcement plus, if any, the payload round).
        bytes_sent: total bytes of those transmissions.
    """

    round_index: int
    kind: str
    payload: Optional[bytes] = None
    true_sender: Optional[Hashable] = None
    messages_sent: int = 0
    bytes_sent: int = 0


@dataclass
class SessionStats:
    """Aggregated statistics of a session."""

    rounds: int = 0
    idle_rounds: int = 0
    collisions: int = 0
    deliveries: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    per_round_messages: List[int] = field(default_factory=list)


class DCNetGroupSession:
    """Drives announcement and payload rounds for one DC-net group.

    Args:
        group: member identities; the group size is the paper's parameter
            ``k`` (typically between four and ten).
        rng: randomness source (share splitting, backoff, announcement
            collisions are all derived from it).
        announcement_rounds: when ``True`` (default) the session uses the
            32-bit length-announcement optimisation; when ``False`` every
            round is a full frame of ``fixed_frame_length`` bytes.
        fixed_frame_length: frame size used when announcements are disabled.
    """

    def __init__(
        self,
        group: Iterable[Hashable],
        rng: random.Random,
        announcement_rounds: bool = True,
        fixed_frame_length: int = 256,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.group: List[Hashable] = sorted(set(group), key=repr)
        if len(self.group) < 2:
            raise ValueError("a DC-net group needs at least two members")
        self.rng = rng
        self.announcement_rounds = announcement_rounds
        self.fixed_frame_length = fixed_frame_length
        self.backoff = backoff or BackoffPolicy(rng)
        self.stats = SessionStats()
        self._queues: Dict[Hashable, Deque[bytes]] = {
            member: deque() for member in self.group
        }
        self._backoff_until: Dict[Hashable, int] = {}
        self._attempts: Dict[Hashable, int] = {member: 0 for member in self.group}
        self._round_index = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def group_size(self) -> int:
        """Number of members (the anonymity parameter ``k``)."""
        return len(self.group)

    def queue_message(self, member: Hashable, payload: bytes) -> None:
        """Enqueue ``payload`` for anonymous transmission by ``member``."""
        if member not in self._queues:
            raise ValueError(f"{member!r} is not a member of this group")
        if not payload:
            raise ValueError("cannot queue an empty payload")
        self._queues[member].append(bytes(payload))

    def pending_messages(self) -> int:
        """Total number of queued, not yet delivered payloads."""
        return sum(len(queue) for queue in self._queues.values())

    def run_round(self) -> RoundOutcome:
        """Run one protocol round (announcement plus optional payload round)."""
        self._round_index += 1
        if self.announcement_rounds:
            outcome = self._run_with_announcement()
        else:
            outcome = self._run_fixed_frame()
        self._record(outcome)
        return outcome

    def run_until_empty(self, max_rounds: int = 1000) -> List[RoundOutcome]:
        """Run rounds until all queued payloads are delivered.

        Raises:
            RuntimeError: if the queue does not drain within ``max_rounds``.
        """
        outcomes: List[RoundOutcome] = []
        for _ in range(max_rounds):
            if self.pending_messages() == 0:
                return outcomes
            outcomes.append(self.run_round())
        if self.pending_messages() > 0:
            raise RuntimeError(
                f"queued payloads not drained within {max_rounds} rounds"
            )
        return outcomes

    # ------------------------------------------------------------------
    # Round flavours
    # ------------------------------------------------------------------
    def _eligible_senders(self) -> List[Hashable]:
        return [
            member
            for member in self.group
            if self._queues[member]
            and self._backoff_until.get(member, 0) <= self._round_index
        ]

    def _run_with_announcement(self) -> RoundOutcome:
        eligible = self._eligible_senders()
        announcements = {
            member: encode_announcement(len(self._queues[member][0]))
            for member in eligible
        }
        # Idle members implicitly contribute zero frames (run_round default).
        announcement_result = run_round(
            self.group,
            announcements,
            ANNOUNCEMENT_FRAME_BYTES,
            self.rng,
        )
        messages = announcement_result.messages_sent
        bytes_sent = messages * ANNOUNCEMENT_FRAME_BYTES

        # Every member recovers the same value (XOR of others' frames); idle
        # members are the relevant receivers, use any non-sender perspective,
        # falling back to the collision check below when all members sent.
        announced = self._recovered_value(announcement_result, eligible)
        if announced == 0 and not eligible:
            return RoundOutcome(
                round_index=self._round_index,
                kind="idle",
                messages_sent=messages,
                bytes_sent=bytes_sent,
            )
        if announced is None or len(eligible) > 1:
            self._register_collision(eligible)
            return RoundOutcome(
                round_index=self._round_index,
                kind="collision",
                messages_sent=messages,
                bytes_sent=bytes_sent,
            )

        # Exactly one announcer: run the payload round at the announced size.
        sender = eligible[0]
        payload = self._queues[sender][0]
        frame_length = max(len(payload) + 8, 16)
        payload_result = run_round(
            self.group,
            {sender: encode_payload(payload, frame_length)},
            frame_length,
            self.rng,
        )
        messages += payload_result.messages_sent
        bytes_sent += payload_result.messages_sent * frame_length

        recovered = decode_payload(
            payload_result.recovered_by(self._any_non_sender(sender))
        )
        if recovered is None:
            # Should not happen with a single honest sender; treat as collision.
            self._register_collision([sender])
            return RoundOutcome(
                round_index=self._round_index,
                kind="collision",
                messages_sent=messages,
                bytes_sent=bytes_sent,
            )

        self._queues[sender].popleft()
        self._attempts[sender] = 0
        return RoundOutcome(
            round_index=self._round_index,
            kind="delivery",
            payload=recovered,
            true_sender=sender,
            messages_sent=messages,
            bytes_sent=bytes_sent,
        )

    def _run_fixed_frame(self) -> RoundOutcome:
        eligible = self._eligible_senders()
        frame_length = self.fixed_frame_length
        frames = {}
        for member in eligible:
            payload = self._queues[member][0]
            frames[member] = encode_payload(payload, frame_length)
        result = run_round(self.group, frames, frame_length, self.rng)
        messages = result.messages_sent
        bytes_sent = messages * frame_length

        if not eligible:
            return RoundOutcome(
                round_index=self._round_index,
                kind="idle",
                messages_sent=messages,
                bytes_sent=bytes_sent,
            )
        if len(eligible) > 1:
            self._register_collision(eligible)
            return RoundOutcome(
                round_index=self._round_index,
                kind="collision",
                messages_sent=messages,
                bytes_sent=bytes_sent,
            )
        sender = eligible[0]
        recovered = decode_payload(result.recovered_by(self._any_non_sender(sender)))
        if recovered is None:
            self._register_collision([sender])
            return RoundOutcome(
                round_index=self._round_index,
                kind="collision",
                messages_sent=messages,
                bytes_sent=bytes_sent,
            )
        self._queues[sender].popleft()
        self._attempts[sender] = 0
        return RoundOutcome(
            round_index=self._round_index,
            kind="delivery",
            payload=recovered,
            true_sender=sender,
            messages_sent=messages,
            bytes_sent=bytes_sent,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _any_non_sender(self, sender: Hashable) -> Hashable:
        for member in self.group:
            if member != sender:
                return member
        raise RuntimeError("group has a single member")  # pragma: no cover

    def _recovered_value(
        self, result: DCNetRoundResult, eligible: List[Hashable]
    ) -> Optional[int]:
        """Decode the announcement recovered by a member that did not send."""
        observer = None
        for member in self.group:
            if member not in eligible:
                observer = member
                break
        if observer is None:
            # Everyone announced; certainly a collision for group size >= 2.
            return None
        return decode_announcement(result.recovered_by(observer))

    def _register_collision(self, colliders: List[Hashable]) -> None:
        for member in colliders:
            self._attempts[member] += 1
            delay = self.backoff.delay_rounds(self._attempts[member])
            self._backoff_until[member] = self._round_index + delay

    def _record(self, outcome: RoundOutcome) -> None:
        self.stats.rounds += 1
        self.stats.messages_sent += outcome.messages_sent
        self.stats.bytes_sent += outcome.bytes_sent
        self.stats.per_round_messages.append(outcome.messages_sent)
        if outcome.kind == "idle":
            self.stats.idle_rounds += 1
        elif outcome.kind == "collision":
            self.stats.collisions += 1
        elif outcome.kind == "delivery":
            self.stats.deliveries += 1

    def expected_round_messages(self) -> int:
        """O(k²) message count of a single round for this group size."""
        return expected_messages(self.group_size)
