"""The 32-bit length-announcement optimisation (Section V-A of the paper).

To avoid paying the O(k²) cost for full-size frames when nobody has anything
to send, the paper proposes restricting the base round to a 32-bit integer
carrying the length of the next message.  If the recovered integer is
non-zero, a follow-up round of exactly that size transports the payload.  The
integer is CRC-protected so colliding announcements are detected.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.crc import append_crc, split_crc, verify_crc

#: Bytes of the announced length value.
_LENGTH_BYTES = 4

#: Total size of an announcement frame: 32-bit length + 32-bit CRC.
ANNOUNCEMENT_FRAME_BYTES = 8

#: Largest length announceable in 32 bits.
MAX_ANNOUNCEABLE_LENGTH = 2**32 - 1


def encode_announcement(length: int) -> bytes:
    """Encode the length of the next message into an announcement frame.

    ``length == 0`` means "nothing to send" and is what idle members
    contribute (their frame is all zero bytes only if the CRC of zero is
    appended consistently, so idle members must use :func:`idle_announcement`
    instead — see its docstring).

    Raises:
        ValueError: if ``length`` is negative or does not fit in 32 bits.
    """
    if length < 0 or length > MAX_ANNOUNCEABLE_LENGTH:
        raise ValueError("announced length must fit in an unsigned 32-bit int")
    return append_crc(length.to_bytes(_LENGTH_BYTES, "big"))


def idle_announcement() -> bytes:
    """The all-zero frame an idle member contributes.

    Idle members must contribute the all-zero DC-net message (not the CRC
    framing of the integer 0), otherwise their CRC bytes would collide with a
    real sender's frame and corrupt every announcement round.
    """
    return bytes(ANNOUNCEMENT_FRAME_BYTES)


def decode_announcement(frame: bytes) -> Optional[int]:
    """Decode a recovered announcement frame.

    Returns:
        * ``0`` if the frame is all zero (nobody announced anything),
        * the announced length if the CRC verifies,
        * ``None`` if the CRC fails, i.e. at least two members collided.
    """
    if len(frame) != ANNOUNCEMENT_FRAME_BYTES:
        raise ValueError(
            f"announcement frames are {ANNOUNCEMENT_FRAME_BYTES} bytes, "
            f"got {len(frame)}"
        )
    if frame == idle_announcement():
        return 0
    if not verify_crc(frame):
        return None
    payload, _ = split_crc(frame)
    return int.from_bytes(payload, "big")
