"""Simplified blame protocol for disrupted DC-net rounds.

Section V-C of the paper discusses countering denial-of-service through
malicious collisions with the blame protocol of von Ahn et al. (reference
[19]): members commit to their pads before the round and open the
commitments when a disruption is suspected, so the group can either expel the
faulty member or dissolve.

This module implements a faithful-in-spirit, simplified variant built on the
hash commitments of :mod:`repro.crypto.commitments`:

* before the round every member publishes one commitment per outgoing share;
* on investigation every member opens its commitments and declares whether it
  legitimately tried to send in the disputed round;
* the protocol blames members whose openings do not match their commitments,
  whose opened shares do not match what the receivers actually got, or whose
  shares XOR to a non-zero value despite not claiming to be a sender.

The paper notes the trade-off (Section V-C): instead of blaming, a group may
simply dissolve and re-form without untrusted members.  The verdict object
exposes both outcomes so the caller can pick either policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List

from repro.crypto.commitments import Commitment, commit, verify_commitment
from repro.crypto.pads import xor_bytes, zero_bytes


@dataclass
class BlameVerdict:
    """Result of a blame investigation.

    Attributes:
        blamed: members found responsible for the disruption.
        reasons: human-readable reason per blamed member.
        dissolve_recommended: ``True`` when the disruption could not be
            attributed to specific members and the group should re-form.
    """

    blamed: List[Hashable] = field(default_factory=list)
    reasons: Dict[Hashable, str] = field(default_factory=dict)
    dissolve_recommended: bool = False

    @property
    def clean(self) -> bool:
        """Whether nobody was blamed and no dissolution is recommended."""
        return not self.blamed and not self.dissolve_recommended


class BlameProtocol:
    """Commit-then-open accountability layer for one DC-net round."""

    def __init__(self, group: Iterable[Hashable], frame_length: int) -> None:
        self.group: List[Hashable] = sorted(set(group), key=repr)
        if len(self.group) < 2:
            raise ValueError("a DC-net group needs at least two members")
        if frame_length <= 0:
            raise ValueError("frame length must be positive")
        self.frame_length = frame_length
        self._commitments: Dict[Hashable, Dict[Hashable, Commitment]] = {}

    # ------------------------------------------------------------------
    # Pre-round: commitments
    # ------------------------------------------------------------------
    def register_commitments(
        self,
        member: Hashable,
        shares: Dict[Hashable, bytes],
        rng: random.Random,
    ) -> Dict[Hashable, bytes]:
        """Commit ``member`` to the shares it is about to send.

        Returns the published digests (one per receiving peer).  The opening
        information is retained internally, modelling the member keeping its
        own nonces until an investigation.
        """
        if member not in self.group:
            raise ValueError(f"{member!r} is not a group member")
        commitments = {
            peer: commit(share, rng) for peer, share in shares.items()
        }
        self._commitments[member] = commitments
        return {peer: c.digest for peer, c in commitments.items()}

    # ------------------------------------------------------------------
    # Investigation
    # ------------------------------------------------------------------
    def investigate(
        self,
        opened_shares: Dict[Hashable, Dict[Hashable, bytes]],
        received_shares: Dict[Hashable, Dict[Hashable, bytes]],
        claimed_senders: Iterable[Hashable],
    ) -> BlameVerdict:
        """Attribute a disruption after members opened their commitments.

        Args:
            opened_shares: per member, the shares it claims to have sent
                (``{sender: {receiver: share}}``).
            received_shares: per member, the shares it actually received
                (``{receiver: {sender: share}}``).
            claimed_senders: members that claim they legitimately transmitted
                a message in the disputed round.

        Returns:
            A :class:`BlameVerdict`.  If more than one member legitimately
            claimed to send, the round was an honest collision and nobody is
            blamed.
        """
        claimed = sorted(set(claimed_senders), key=repr)
        verdict = BlameVerdict()

        for member in self.group:
            committed = self._commitments.get(member)
            opened = opened_shares.get(member)
            if committed is None or opened is None:
                verdict.blamed.append(member)
                verdict.reasons[member] = "refused to open commitments"
                continue

            if set(opened) != set(committed):
                verdict.blamed.append(member)
                verdict.reasons[member] = "opened shares do not cover all peers"
                continue

            mismatch = False
            for peer, share in opened.items():
                reconstructed = committed[peer].opened(share, committed[peer].nonce)
                if not verify_commitment(reconstructed):
                    mismatch = True
                    break
            if mismatch:
                verdict.blamed.append(member)
                verdict.reasons[member] = "opening does not match commitment"
                continue

            # Cross-check against what receivers say they got.
            lied_on_wire = any(
                received_shares.get(peer, {}).get(member) not in (None, share)
                for peer, share in opened.items()
            )
            if lied_on_wire:
                verdict.blamed.append(member)
                verdict.reasons[member] = "sent shares differ from opened shares"
                continue

            # A member that did not claim to send must have contributed zero.
            contribution = xor_bytes(*opened.values())
            if member not in claimed and contribution != zero_bytes(self.frame_length):
                verdict.blamed.append(member)
                verdict.reasons[member] = "contributed a message without claiming to send"

        if not verdict.blamed and len(claimed) <= 1:
            # Nothing attributable: disruption came from outside the model
            # (or there was no disruption at all); recommend re-forming.
            verdict.dissolve_recommended = len(claimed) <= 1 and bool(
                self._round_was_disrupted(received_shares)
            )
        return verdict

    def _round_was_disrupted(
        self, received_shares: Dict[Hashable, Dict[Hashable, bytes]]
    ) -> bool:
        """Heuristic: any receiver reporting a missing share counts as disruption."""
        for member in self.group:
            inbox = received_shares.get(member, {})
            expected_peers = set(self.group) - {member}
            if set(inbox) != expected_peers:
                return True
        return False
