"""A single group member's view of one DC-net round (Fig. 4 of the paper).

The algorithm is executed by every member separately and proceeds in three
exchange steps:

1. *Share distribution* — the member splits its message (or the all-zero
   message) into one share per other member and sends each share out.
2. *First accumulation* — after receiving everyone's shares the member
   computes ``S`` (the XOR of received shares) and returns ``S ⊕ s_i`` to
   each peer ``g_i``.
3. *Second accumulation* — after receiving those values the member computes
   ``T`` and sends ``T ⊕ t_i`` back; the round result is ``m = T ⊕ S``,
   which equals the XOR of all *other* members' messages.

The member enforces the step order strictly: calling a step before its
predecessor completed raises, which is how the tests assert protocol-order
violations are caught.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional

from repro.crypto.pads import split_into_shares, xor_bytes, zero_bytes


class DCNetMember:
    """State machine for one member and one DC-net round.

    Args:
        member_id: this member's identity.
        group: all group member identities (including this member).
        frame_length: the fixed byte length ``n`` every round transports.
    """

    def __init__(
        self,
        member_id: Hashable,
        group: Iterable[Hashable],
        frame_length: int,
    ) -> None:
        self.member_id = member_id
        self.group: List[Hashable] = sorted(set(group), key=repr)
        if member_id not in self.group:
            raise ValueError("member must be part of its own group")
        if len(self.group) < 2:
            raise ValueError("a DC-net group needs at least two members")
        if frame_length <= 0:
            raise ValueError("frame length must be positive")
        self.frame_length = frame_length
        self.peers: List[Hashable] = [m for m in self.group if m != member_id]
        self._message: Optional[bytes] = None
        self._outgoing_shares: Optional[Dict[Hashable, bytes]] = None
        self._s_value: Optional[bytes] = None
        self._received_shares: Optional[Dict[Hashable, bytes]] = None
        self._t_value: Optional[bytes] = None
        self._received_accumulations: Optional[Dict[Hashable, bytes]] = None

    # ------------------------------------------------------------------
    # Step 1 + 2: share generation and distribution
    # ------------------------------------------------------------------
    def prepare_shares(
        self, message: Optional[bytes], rng: random.Random
    ) -> Dict[Hashable, bytes]:
        """Split the message into shares; returns ``{peer: share}`` to send.

        ``message=None`` (or empty) means the member has nothing to send and
        contributes the all-zero message, exactly as Fig. 4 prescribes.
        """
        frame = message if message else zero_bytes(self.frame_length)
        if len(frame) != self.frame_length:
            raise ValueError(
                f"message must be exactly {self.frame_length} bytes, "
                f"got {len(frame)}"
            )
        self._message = frame
        shares = split_into_shares(frame, len(self.peers), rng)
        self._outgoing_shares = dict(zip(self.peers, shares))
        return dict(self._outgoing_shares)

    # ------------------------------------------------------------------
    # Step 3 + 4 + 5: first accumulation
    # ------------------------------------------------------------------
    def receive_shares(
        self, shares: Dict[Hashable, bytes]
    ) -> Dict[Hashable, bytes]:
        """Consume the peers' shares; returns ``{peer: S ⊕ s_peer}`` to send.

        Raises:
            RuntimeError: if called before :meth:`prepare_shares`.
            ValueError: if shares are missing, unexpected or mis-sized.
        """
        if self._outgoing_shares is None:
            raise RuntimeError("prepare_shares must run before receive_shares")
        self._validate_peer_map(shares, "share")
        self._received_shares = dict(shares)
        self._s_value = xor_bytes(*[shares[p] for p in self.peers])
        return {
            peer: xor_bytes(self._s_value, shares[peer]) for peer in self.peers
        }

    # ------------------------------------------------------------------
    # Step 6 + 7 + 8: second accumulation
    # ------------------------------------------------------------------
    def receive_accumulations(
        self, accumulations: Dict[Hashable, bytes]
    ) -> Dict[Hashable, bytes]:
        """Consume ``S ⊕ s`` values; returns ``{peer: T ⊕ t_peer}`` to send."""
        if self._s_value is None:
            raise RuntimeError(
                "receive_shares must run before receive_accumulations"
            )
        self._validate_peer_map(accumulations, "accumulation")
        self._received_accumulations = dict(accumulations)
        self._t_value = xor_bytes(*[accumulations[p] for p in self.peers])
        return {
            peer: xor_bytes(self._t_value, accumulations[peer])
            for peer in self.peers
        }

    # ------------------------------------------------------------------
    # Step 9: recovery
    # ------------------------------------------------------------------
    def recover(self) -> bytes:
        """Return ``T ⊕ S``: the XOR of all other members' messages."""
        if self._t_value is None or self._s_value is None:
            raise RuntimeError("the round is not complete yet")
        return xor_bytes(self._t_value, self._s_value)

    # ------------------------------------------------------------------
    # Introspection used by the blame protocol and tests
    # ------------------------------------------------------------------
    @property
    def sent_shares(self) -> Dict[Hashable, bytes]:
        """Shares this member sent out in step 2 (empty before step 1)."""
        return dict(self._outgoing_shares or {})

    @property
    def own_message(self) -> Optional[bytes]:
        """The framed message this member contributed (``None`` before step 1)."""
        return self._message

    def _validate_peer_map(
        self, mapping: Dict[Hashable, bytes], what: str
    ) -> None:
        missing = set(self.peers) - set(mapping)
        if missing:
            raise ValueError(f"missing {what} from peers: {sorted(missing, key=repr)}")
        unexpected = set(mapping) - set(self.peers)
        if unexpected:
            raise ValueError(
                f"unexpected {what} from non-peers: {sorted(unexpected, key=repr)}"
            )
        for peer, value in mapping.items():
            if len(value) != self.frame_length:
                raise ValueError(
                    f"{what} from {peer!r} has length {len(value)}, "
                    f"expected {self.frame_length}"
                )
