"""Adapters wiring every dissemination protocol into the shared harness.

Each adapter implements :class:`~repro.protocols.base.BroadcastProtocol` for
one protocol and registers itself by name.  The adapters own the per-session
setup that used to be inlined (and subtly inconsistent) in the experiment
loop:

* ``flood`` / ``gossip`` — populate the overlay with the respective node
  behaviour and run one broadcast to quiescence;
* ``dandelion`` — additionally draws the epoch's stem successors from the
  session RNG (before any other session randomness, preserving the historic
  draw order);
* ``adaptive_diffusion`` — drives the unbounded diffusion with the same
  polling loop as :func:`repro.diffusion.adaptive.run_adaptive_diffusion`,
  bounded by ``max_time``;
* ``three_phase`` — wraps a long-lived
  :class:`~repro.core.orchestrator.ThreePhaseBroadcast` session
  (``shared_session = True``: the group directory is drawn once and reused
  across broadcasts, as the paper's deployment model intends).

All adapters accept the same :class:`~repro.network.conditions.NetworkConditions`,
so "run every protocol under identical conditions" is simply passing the
same object to each :meth:`build`.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

import networkx as nx

from repro.broadcast.dandelion import (
    DandelionConfig,
    DandelionNode,
    assign_stem_successors,
)
from repro.broadcast.flood import FloodNode
from repro.broadcast.gossip import GossipConfig, GossipNode
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.protocol import ThreePhaseNode
from repro.diffusion.adaptive import AdaptiveDiffusionConfig, AdaptiveDiffusionNode
from repro.network.conditions import NetworkConditions
from repro.network.simulator import Simulator
from repro.protocols.base import (
    BroadcastProtocol,
    ProtocolSession,
    SessionBroadcast,
)
from repro.protocols.registry import register_protocol

#: Message kinds of the adaptive-diffusion wire protocol (also reused by the
#: three-phase protocol for its Phase 2).
_AD_KINDS = ("ad_payload", "ad_spread", "ad_token", "ad_final")


def _build_session(
    protocol: BroadcastProtocol,
    graph: nx.Graph,
    conditions: Optional[NetworkConditions],
    seed: Optional[int],
    rng: Optional[random.Random] = None,
    engine: str = "event",
    shards: Optional[int] = None,
) -> ProtocolSession:
    """Session scaffolding shared by the per-broadcast adapters.

    The latency model is built from the session RNG *after* any protocol
    setup draws the caller performed on it (callers with setup draws pass
    their already-used ``rng``), and the same RNG is later used by the
    harness for botnet placement — the exact draw order of the historical
    experiment loop.
    """
    conditions = conditions if conditions is not None else NetworkConditions()
    if rng is None:
        rng = random.Random(seed)
    latency = conditions.build_latency(rng)
    simulator = Simulator(
        graph, latency=latency, seed=seed, conditions=conditions,
        engine=engine, shards=shards,
    )
    return ProtocolSession(
        protocol=protocol,
        graph=graph,
        simulator=simulator,
        rng=rng,
        conditions=conditions,
        seed=seed,
    )


@register_protocol
class FloodProtocol(BroadcastProtocol):
    """Flood-and-prune: the efficiency baseline (and Phase 3 semantics)."""

    name = "flood"
    message_kinds = (FloodNode.MESSAGE_KIND,)

    def __init__(self, payload_size_bytes: int = 256) -> None:
        self.payload_size_bytes = payload_size_bytes

    def build(
        self,
        graph: nx.Graph,
        conditions: Optional[NetworkConditions] = None,
        seed: Optional[int] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> ProtocolSession:
        session = _build_session(
            self, graph, conditions, seed, engine=engine, shards=shards
        )
        session.simulator.populate(
            lambda node_id: FloodNode(node_id, self.payload_size_bytes)
        )
        return session

    def broadcast(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
    ) -> SessionBroadcast:
        session.simulator.node(source).originate(payload_id)
        session.simulator.run_until_idle()
        return self._collect(session, source, payload_id)


@register_protocol
class GossipProtocol(BroadcastProtocol):
    """Probabilistic gossip: the low-overhead, incomplete-delivery baseline."""

    name = "gossip"
    message_kinds = (GossipNode.MESSAGE_KIND,)
    config_class = GossipConfig

    def __init__(self, config: Optional[GossipConfig] = None) -> None:
        self.config = config or GossipConfig()

    def build(
        self,
        graph: nx.Graph,
        conditions: Optional[NetworkConditions] = None,
        seed: Optional[int] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> ProtocolSession:
        session = _build_session(
            self, graph, conditions, seed, engine=engine, shards=shards
        )
        session.simulator.populate(
            lambda node_id: GossipNode(node_id, self.config)
        )
        return session

    def broadcast(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
    ) -> SessionBroadcast:
        session.simulator.node(source).originate(payload_id)
        session.simulator.run_until_idle()
        return self._collect(session, source, payload_id)


@register_protocol
class DandelionProtocol(BroadcastProtocol):
    """Dandelion stem/fluff: the topological privacy baseline."""

    name = "dandelion"
    message_kinds = (DandelionNode.STEM_KIND, DandelionNode.FLUFF_KIND)
    config_class = DandelionConfig

    def __init__(self, config: Optional[DandelionConfig] = None) -> None:
        self.config = config or DandelionConfig()

    def build(
        self,
        graph: nx.Graph,
        conditions: Optional[NetworkConditions] = None,
        seed: Optional[int] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> ProtocolSession:
        # Successors are drawn from the session RNG before the latency model
        # is built — the draw order the historical experiment loop used.
        rng = random.Random(seed)
        successors = assign_stem_successors(graph, rng)
        session = _build_session(
            self, graph, conditions, seed, rng=rng, engine=engine,
            shards=shards,
        )
        session.simulator.populate(
            lambda node_id: DandelionNode(node_id, self.config, successors[node_id])
        )
        session.state["stem_successors"] = successors
        return session

    def broadcast(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
    ) -> SessionBroadcast:
        session.simulator.node(source).originate(payload_id)
        session.simulator.run_until_idle()
        return self._collect(session, source, payload_id)


@register_protocol
class AdaptiveDiffusionProtocol(BroadcastProtocol):
    """Standalone adaptive diffusion (the paper's Phase 2, run alone).

    With the default unbounded configuration (``max_rounds=None``) the
    virtual-source rounds never terminate on their own, so a broadcast runs
    in round-interval steps until the payload reached every node, the event
    queue drained (possible under message loss, when the virtual-source
    token is lost), or ``max_time`` simulated time units passed.
    """

    name = "adaptive_diffusion"
    message_kinds = _AD_KINDS
    config_class = AdaptiveDiffusionConfig
    extra_option_keys = ("max_time",)

    def __init__(
        self,
        config: Optional[AdaptiveDiffusionConfig] = None,
        max_time: float = 10_000.0,
    ) -> None:
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        self.config = config or AdaptiveDiffusionConfig()
        self.max_time = max_time

    def build(
        self,
        graph: nx.Graph,
        conditions: Optional[NetworkConditions] = None,
        seed: Optional[int] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> ProtocolSession:
        session = _build_session(
            self, graph, conditions, seed, engine=engine, shards=shards
        )
        session.simulator.populate(
            lambda node_id: AdaptiveDiffusionNode(node_id, self.config)
        )
        return session

    def broadcast(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
    ) -> SessionBroadcast:
        simulator = session.simulator
        simulator.node(source).originate(payload_id)
        total = session.graph.number_of_nodes()
        deadline = simulator.now + self.max_time
        while simulator.metrics.reach(payload_id) < total:
            if simulator.now >= deadline or simulator.pending_events == 0:
                break
            simulator.run(until=simulator.now + self.config.round_interval)
        return self._collect(session, source, payload_id)


@register_protocol
class ThreePhaseProtocol(BroadcastProtocol):
    """The paper's three-phase broadcast (DC-net → diffusion → flood).

    ``shared_session = True``: one session owns the group directory and the
    simulator, and every broadcast reuses them — matching the deployment
    model (groups are long-lived) and the historical experiment loop.
    """

    name = "three_phase"
    message_kinds = (ThreePhaseNode.DC_KIND,) + _AD_KINDS + (
        ThreePhaseNode.FLOOD_KIND,
    )
    shared_session = True
    config_class = ProtocolConfig

    def __init__(self, config: Optional[ProtocolConfig] = None) -> None:
        self.config = config or ProtocolConfig()

    def anonymity_floor(self) -> int:
        """The DC-net group size: sender k-anonymity by construction."""
        return self.config.group_size

    def build(
        self,
        graph: nx.Graph,
        conditions: Optional[NetworkConditions] = None,
        seed: Optional[int] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> ProtocolSession:
        conditions = conditions if conditions is not None else NetworkConditions()
        system = ThreePhaseBroadcast(
            graph, self.config, seed=seed, conditions=conditions,
            engine=engine, shards=shards,
        )
        return ProtocolSession(
            protocol=self,
            graph=graph,
            simulator=system.simulator,
            # Offset so the session stream never duplicates the orchestrator's
            # internal protocol stream (Random(seed)) — a consumer drawing
            # botnet placement from session.rng must get draws independent of
            # the group-directory assignment.
            rng=random.Random(None if seed is None else seed + 3),
            conditions=conditions,
            seed=seed,
            state={"system": system},
        )

    def broadcast(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
    ) -> SessionBroadcast:
        system: ThreePhaseBroadcast = session.state["system"]
        payload = (
            payload_id
            if isinstance(payload_id, bytes)
            else str(payload_id).encode("utf-8")
        )
        result = system.broadcast(source, payload, payload_id=payload_id)
        return SessionBroadcast(
            payload_id=payload_id,
            source=source,
            reach=result.reach,
            delivered_fraction=result.delivered_fraction,
            messages=result.messages_total,
            completion_time=result.completion_time,
        )
