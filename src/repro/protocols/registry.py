"""Name-based registry of dissemination-protocol adapters.

The registry is what turns ``attack_experiment(graph, "dandelion", ...)``
from an if/elif over hard-coded names into an open set: every
:class:`~repro.protocols.base.BroadcastProtocol` subclass decorated with
:func:`register_protocol` becomes addressable by name from the experiment
harness, the benchmarks and the examples.  Adding a protocol to the whole
evaluation pipeline is one adapter class plus one decorator — no harness
changes.

Importing :mod:`repro.protocols` registers the five built-in adapters
(``three_phase``, ``flood``, ``dandelion``, ``gossip``,
``adaptive_diffusion``).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, TypeVar

from repro.protocols.base import BroadcastProtocol

ProtocolClass = TypeVar("ProtocolClass", bound=Type[BroadcastProtocol])

_REGISTRY: Dict[str, Type[BroadcastProtocol]] = {}


def register_protocol(cls: ProtocolClass) -> ProtocolClass:
    """Class decorator adding a :class:`BroadcastProtocol` to the registry.

    The class's ``name`` attribute is the registry key.

    Raises:
        ValueError: when the class declares no name or the name is taken.
    """
    name = cls.name
    if not name:
        raise ValueError(f"{cls.__name__} declares no protocol name")
    if name in _REGISTRY:
        raise ValueError(f"protocol {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def available_protocols() -> Tuple[str, ...]:
    """Sorted names of every registered protocol."""
    return tuple(sorted(_REGISTRY))


def protocol_class(name: str) -> Type[BroadcastProtocol]:
    """The adapter class registered under ``name``.

    Raises:
        ValueError: for an unknown protocol name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ValueError(
            f"unknown protocol {name!r} (registered: {known})"
        ) from None


def create_protocol(name: str, **options: object) -> BroadcastProtocol:
    """Instantiate the adapter registered under ``name``.

    Keyword options are forwarded to the adapter constructor (e.g.
    ``create_protocol("dandelion", config=DandelionConfig(...))``).

    Raises:
        ValueError: for an unknown protocol name.
    """
    return protocol_class(name)(**options)
