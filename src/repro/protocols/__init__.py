"""One harness for every dissemination protocol.

The paper's central claim is comparative — the three-phase protocol versus
Dandelion-style and plain-flood baselines under identical network and
adversary conditions.  This package provides the protocol-agnostic layer
that makes such comparisons honest:

* :class:`~repro.protocols.base.BroadcastProtocol` — the adapter interface
  (``build(graph, conditions, seed) → session``,
  ``broadcast(session, source, payload_id)``, declared ``message_kinds``,
  ``anonymity_floor()``);
* :mod:`~repro.protocols.registry` — the name-based registry
  (:func:`create_protocol`, :func:`available_protocols`,
  :func:`register_protocol`);
* :mod:`~repro.protocols.adapters` — built-in adapters for ``three_phase``,
  ``flood``, ``dandelion``, ``gossip`` and ``adaptive_diffusion``.

Together with :class:`~repro.network.conditions.NetworkConditions` (one
latency/loss/jitter environment threaded through the simulator), any
registered protocol runs through the same entry point:

    >>> from repro.network import NetworkConditions
    >>> from repro.network.topology import random_regular_overlay
    >>> from repro.protocols import create_protocol
    >>> overlay = random_regular_overlay(50, degree=6, seed=1)
    >>> conditions = NetworkConditions.ideal(delay=0.1)
    >>> protocol = create_protocol("flood")
    >>> session = protocol.build(overlay, conditions, seed=7)
    >>> outcome = protocol.broadcast(session, source=0, payload_id="tx-1")
    >>> outcome.delivered_fraction
    1.0
"""

from repro.protocols.adapters import (
    AdaptiveDiffusionProtocol,
    DandelionProtocol,
    FloodProtocol,
    GossipProtocol,
    ThreePhaseProtocol,
)
from repro.protocols.base import (
    BroadcastProtocol,
    ProtocolSession,
    SessionBroadcast,
)
from repro.protocols.registry import (
    available_protocols,
    create_protocol,
    protocol_class,
    register_protocol,
)

__all__ = [
    "AdaptiveDiffusionProtocol",
    "DandelionProtocol",
    "FloodProtocol",
    "GossipProtocol",
    "ThreePhaseProtocol",
    "BroadcastProtocol",
    "ProtocolSession",
    "SessionBroadcast",
    "available_protocols",
    "create_protocol",
    "protocol_class",
    "register_protocol",
]
