"""The protocol-adapter interface every dissemination protocol implements.

The experiment harness (:mod:`repro.analysis.experiment`) must be able to
run *any* protocol — the paper's three-phase broadcast and every baseline —
through one code path, under one set of
:class:`~repro.network.conditions.NetworkConditions`.  A
:class:`BroadcastProtocol` adapter provides exactly that surface:

* :meth:`~BroadcastProtocol.build` creates a :class:`ProtocolSession` — the
  simulator plus whatever per-session state the protocol needs (stem
  successors, a group directory, ...), all derived from one seed;
* :meth:`~BroadcastProtocol.broadcast` performs one broadcast inside a
  session and returns a protocol-agnostic :class:`SessionBroadcast`;
* :attr:`~BroadcastProtocol.message_kinds` declares the wire kinds the
  protocol emits (what an adversary can filter on);
* :meth:`~BroadcastProtocol.anonymity_floor` states the smallest anonymity
  set the protocol guarantees by construction;
* :attr:`~BroadcastProtocol.shared_session` tells the harness whether many
  broadcasts share one session (the three-phase protocol amortises its group
  directory) or each broadcast gets a fresh session (the baselines re-draw
  per-run randomness, matching the historical experiment loop seed-for-seed).

Concrete adapters live in :mod:`repro.protocols.adapters`; the name-based
registry in :mod:`repro.protocols.registry`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Hashable, Optional, Tuple

import networkx as nx

from repro.network.conditions import NetworkConditions
from repro.network.simulator import Simulator


@dataclass
class ProtocolSession:
    """One runnable instance of a protocol on one overlay.

    Attributes:
        protocol: the adapter that built this session.
        graph: the overlay the session runs on.
        simulator: the discrete-event simulator carrying all traffic.
        rng: the session's setup RNG.  Everything non-simulator random in the
            session (stem successors, lazily drawn per-edge latencies) comes
            from this stream, and the harness draws botnet placement from it
            for per-broadcast sessions — the draw order that makes
            registry-based runs reproduce the historical experiments.
        conditions: the network conditions the session runs under.
        seed: the seed the session was built from (``None`` for unseeded).
        state: adapter-specific extras (e.g. ``"stem_successors"`` for
            Dandelion, ``"system"`` for the three-phase orchestrator).
    """

    protocol: "BroadcastProtocol"
    graph: nx.Graph
    simulator: Simulator
    rng: random.Random
    conditions: NetworkConditions
    seed: Optional[int] = None
    state: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SessionBroadcast:
    """Protocol-agnostic outcome of one broadcast.

    Attributes:
        payload_id: identifier of the broadcast payload.
        source: the ground-truth originator.
        reach: number of nodes that obtained the payload.
        delivered_fraction: ``reach`` divided by the overlay size.
        messages: messages delivered for this payload (per the protocol's own
            accounting; dropped transmissions are never counted).
        completion_time: simulated time the last node was reached, or
            ``None`` when the broadcast did not reach everyone.
    """

    payload_id: Hashable
    source: Hashable
    reach: int
    delivered_fraction: float
    messages: int
    completion_time: Optional[float]


class BroadcastProtocol(abc.ABC):
    """Adapter interface run by the registry-based experiment harness."""

    #: Registry name of the protocol (set by concrete adapters).
    name: ClassVar[str] = ""
    #: Message kinds the protocol emits on the wire.
    message_kinds: ClassVar[Tuple[str, ...]] = ()
    #: Whether many broadcasts share one session (see module docstring).
    shared_session: ClassVar[bool] = False
    #: Config dataclass behind the adapter's ``config`` keyword, or ``None``
    #: when the constructor takes flat keywords directly.  Declaring it
    #: makes the adapter constructible from serialized options
    #: (:meth:`from_options`) without per-protocol knowledge anywhere else.
    config_class: ClassVar[Optional[type]] = None
    #: Option keys :meth:`from_options` forwards to the constructor itself
    #: instead of the config object (e.g. a runner bound like ``max_time``).
    extra_option_keys: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def from_options(cls, **options: Any) -> "BroadcastProtocol":
        """Instantiate the adapter from flat, serializable options.

        The seam the declarative scenario layer builds protocols through:
        ``{"group_size": 5}`` becomes ``cls(config=ConfigClass(group_size=5))``
        for adapters declaring a :attr:`config_class`, keys listed in
        :attr:`extra_option_keys` go to the constructor directly, and
        adapters without a config class receive all options as constructor
        keywords.  No options means all defaults.

        Raises:
            TypeError: for options neither the config nor the constructor
                accepts.
        """
        if cls.config_class is None:
            return cls(**options)
        kwargs: dict = {
            key: options.pop(key)
            for key in tuple(options)
            if key in cls.extra_option_keys
        }
        if options:
            kwargs["config"] = cls.config_class(**options)
        return cls(**kwargs)

    def anonymity_floor(self) -> int:
        """Smallest anonymity set guaranteed by construction (default 1)."""
        return 1

    @abc.abstractmethod
    def build(
        self,
        graph: nx.Graph,
        conditions: Optional[NetworkConditions] = None,
        seed: Optional[int] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> ProtocolSession:
        """Create a session for ``graph`` under ``conditions``.

        ``engine`` selects the simulator's delivery engine (see
        :data:`repro.network.simulator.ENGINES`) and ``shards`` the worker
        count of the sharded engine (ignored by the others).  All engines
        are seed-for-seed identical in every observable, so the choice
        only affects wall-clock performance.
        """

    @abc.abstractmethod
    def broadcast(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
    ) -> SessionBroadcast:
        """Broadcast one payload from ``source`` and run it to quiescence."""

    # ------------------------------------------------------------------
    # Shared helpers for concrete adapters
    # ------------------------------------------------------------------
    def _collect(
        self,
        session: ProtocolSession,
        source: Hashable,
        payload_id: Hashable,
        messages: Optional[int] = None,
    ) -> SessionBroadcast:
        """Assemble a :class:`SessionBroadcast` from the session's metrics."""
        metrics = session.simulator.metrics
        total = session.graph.number_of_nodes()
        reach = metrics.reach(payload_id)
        return SessionBroadcast(
            payload_id=payload_id,
            source=source,
            reach=reach,
            delivered_fraction=reach / total,
            messages=(
                metrics.message_count(payload_id=payload_id)
                if messages is None
                else messages
            ),
            completion_time=(
                metrics.completion_time(payload_id) if reach == total else None
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
