"""Shared network conditions: latency, per-link message loss and jitter.

The comparative claims of the paper only hold when every protocol is
simulated under the *same* network conditions.  Historically each runner
picked its own latency model (the three-phase path ran on
``ConstantLatency(0.1)`` while the baselines drew per-edge delays), which
silently biased every timing-based comparison.  :class:`NetworkConditions`
bundles everything environment-side — the latency model, a per-link message
loss probability and delivery jitter — into one object that the protocol
adapters (:mod:`repro.protocols`) thread through the
:class:`~repro.network.simulator.Simulator`, so a flood run and a three-phase
run can be handed literally the same conditions.

Latency models may need a per-session RNG (``PerEdgeLatency`` draws its
delays lazily), so the ``latency`` field accepts either a ready
:class:`~repro.network.latency.LatencyModel` instance or a factory called
with the session RNG; :meth:`NetworkConditions.build_latency` resolves both.

Loss and jitter apply to overlay links only: ``direct`` sends model
out-of-band pairwise channels (the DC-net group traffic), which are assumed
reliable.  Randomness for loss and jitter comes from a dedicated simulator
stream, so lossless/jitter-free conditions consume no random numbers and a
run under ``NetworkConditions(loss_probability=0.0)`` is draw-for-draw
identical to a run without conditions at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.network.latency import ConstantLatency, LatencyModel, PerEdgeLatency

#: Either a ready latency model (shared across sessions) or a factory taking
#: the session RNG (for models that draw delays, like ``PerEdgeLatency``).
LatencySpec = Union[LatencyModel, Callable[[random.Random], LatencyModel]]


def _internet_like_latency(rng: random.Random) -> LatencyModel:
    """The default latency: stable per-edge delays in 50–300 ms."""
    return PerEdgeLatency(rng, 0.05, 0.3)


@dataclass(frozen=True)
class NetworkConditions:
    """The environment every protocol in one experiment runs under.

    Example:
        >>> conditions = NetworkConditions(loss_probability=0.1)
        >>> import random
        >>> model = conditions.build_latency(random.Random(0))

    Attributes:
        latency: a :class:`LatencyModel` or a factory called with the session
            RNG.  Defaults to internet-like stable per-edge delays.
        loss_probability: probability that one overlay transmission is lost
            (the receiver never sees it).  Direct/out-of-band sends are not
            affected.
        jitter: maximum extra delivery delay; each overlay delivery gains a
            uniform extra delay in ``[0, jitter]``.
    """

    latency: LatencySpec = field(default=_internet_like_latency)
    loss_probability: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls, delay: float = 0.1) -> "NetworkConditions":
        """Lossless, jitter-free constant-latency conditions."""
        return cls(latency=ConstantLatency(delay))

    @classmethod
    def internet_like(
        cls,
        low: float = 0.05,
        high: float = 0.3,
        loss_probability: float = 0.0,
        jitter: float = 0.0,
    ) -> "NetworkConditions":
        """Stable per-edge delays in ``[low, high]`` plus optional loss/jitter."""
        return cls(
            latency=lambda rng: PerEdgeLatency(rng, low, high),
            loss_probability=loss_probability,
            jitter=jitter,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def lossy(self) -> bool:
        """Whether these conditions can drop or delay messages randomly."""
        return self.loss_probability > 0.0 or self.jitter > 0.0

    def build_latency(self, rng: random.Random) -> LatencyModel:
        """Resolve the latency spec into a model for one session.

        A ready model instance is returned as-is (and is then shared by every
        session built from these conditions — fine for stateless models such
        as :class:`ConstantLatency`); a factory is called with ``rng``.
        """
        if isinstance(self.latency, LatencyModel):
            return self.latency
        return self.latency(rng)
