"""Sharded multi-process delivery engine — conservative time windows.

The third engine behind ``Simulator(engine="sharded")``: the overlay is
partitioned across N worker processes by graph cut
(:func:`repro.network.topology.bfs_partition`), each worker runs the
protocol's cohort kernel over the deliveries *its* nodes receive, and
cross-shard deliveries are exchanged between windows.  The synchronisation
is conservative PDES: with a constant link delay Δ every delivery emitted
while processing window time ``T`` lands at exactly ``T + Δ``, so a window
can be processed to completion before any of its fan-out is due — the
lookahead is the (minimum = only) cross-shard link latency, lower-bounded
by construction.

Exactness, not approximation.  The sharded engine must be seed-for-seed
identical to the event and batched engines, so the multi-process path only
runs for configurations where that can be guaranteed and *everything else
falls back in-process* to :func:`repro.network.batched.run_batched` (which
is itself exact).  Eligibility requires:

* ``fork`` start method (workers inherit the parent's CSR topology, churn
  masks and partition as copy-on-write pages — nothing is pickled at
  startup);
* a kernel that declares ``rng_free`` (no protocol randomness — a shared
  ``random.Random`` stream cannot be split across processes without
  reordering its draws) and the ``"exclude_sender"`` fan-out shape plus
  per-node payload sizes (:meth:`CohortKernel.shard_node_sizes`), so the
  worker can run the fan-out without calling back into node objects;
* a constant-delay latency model with zero loss and zero jitter (loss and
  jitter consume the dedicated link RNG per send in global send order,
  which is exactly the cross-process ordering problem again);
* no ``until`` bound, no pending first-observation hooks, and an event
  queue holding nothing but non-direct deliveries of the kernel's kind
  between known endpoints — timers (churn schedules, protocol phases) may
  fire between cohorts and observe global state, so any timer disables the
  split;
* a kernel that can mirror prior per-node payload state as an id set
  (:meth:`CohortKernel.prior_seen_ids`), so workers seed a seen-bitmap
  once instead of consulting node objects per candidate.

Ordering is reproduced through explicit *delivery ranks*.  Every delivery
carries an ``int64`` rank; initial queue entries keep their heap sequence
numbers, and each window's emissions are ranked by a parent-side merge:
workers report per fresh node the triggering delivery's rank and the
number of surviving forwards, the parent argsorts the triggers globally
(across shards and payloads), prefix-sums the counts into contiguous rank
blocks, and hands each worker its block bases.  Because the batched engine
reserves sequence ranges in exactly ascending trigger order, ranks are
order-isomorphic to the event engine's sequence numbers — within a node's
block the forwards sit in CSR (= ``neighbours_of``) order, and merging all
chunks of a window by rank reproduces the event engine's log order
exactly.  The observation store adopts each window as an unmerged,
delta-counted cohort (:meth:`ObservationStore.adopt_cohort`); the rank
merge and ``Observation`` materialisation are deferred until a reader
actually needs log entries, which a pure-counting benchmark never does.

The per-shard RNG derivation the design reserves for future kernels that
*do* consume randomness (derive one stream per (seed, shard, window) so a
worker's draws are independent of every other worker's schedule) is
provided as :func:`shard_rng`; the currently eligible kernels are
``rng_free`` and never call it.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import sys
import traceback
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.network.events import Event
from repro.network.message import Message
from repro.network.topology import bfs_partition

logger = logging.getLogger(__name__)

#: Cap on the *default* worker count (``shards=None``); explicit shard
#: counts are honoured up to the node count.
MAX_DEFAULT_SHARDS = 8

#: Key under which the (shards, nodes, edges, assignment) partition is
#: cached on ``graph.graph``; popped by
#: ``Simulator.invalidate_topology_caches`` (by the same literal).
PARTITION_CACHE_KEY = "repro_sharded_partition"


def shard_rng(
    seed: Optional[int], shard: int, window: int
) -> random.Random:
    """A deterministic RNG stream for one (shard, window) pair.

    The extension point for kernels that consume randomness: deriving the
    stream from ``(seed, shard id, window index)`` makes a worker's draws
    a pure function of its own schedule, independent of how the other
    shards interleave.  The currently eligible kernels are ``rng_free``
    and never draw, so this is documented API for future kernels rather
    than a hot path.
    """
    base = 0 if seed is None else seed
    return random.Random((base * 1_000_003 + shard) * 1_000_003 + window)


def default_shard_count(node_count: int) -> int:
    """The worker count used when ``Simulator(shards=None)``."""
    cpus = os.cpu_count() or 1
    return max(2, min(MAX_DEFAULT_SHARDS, cpus, node_count))


def shard_assignment(graph, topology, shards: int) -> np.ndarray:
    """CSR-indexed shard owner of every node, cached on the graph.

    Built from :func:`bfs_partition` (contiguous BFS blocks keep most
    overlay edges inside one shard) and cached like the CSR adjacency so
    the benchmark repeat loop pays the partition walk once per overlay.
    """
    cached = graph.graph.get(PARTITION_CACHE_KEY)
    if (
        cached is not None
        and cached[0] == shards
        and cached[1] == graph.number_of_nodes()
        and cached[2] == graph.number_of_edges()
    ):
        return cached[3]
    blocks = bfs_partition(graph, shards)
    assignment = np.empty(topology.n, dtype=np.int32)
    index = topology.index
    for shard, block in enumerate(blocks):
        assignment[[index[node] for node in block]] = shard
    graph.graph[PARTITION_CACHE_KEY] = (
        shards, topology.n, graph.number_of_edges(), assignment
    )
    return assignment


def _decline(simulator, reason: str) -> None:
    """Record why the multi-process path declined; returns ``None``.

    The reason lands on ``simulator.fallback_reason``, in the debug log,
    and — when a recorder is attached — in the telemetry fallback
    counters, so "why did my sharded run not shard?" has an answer
    (historically the fallback was silent).
    """
    simulator._note_fallback(reason)
    return None


def try_run_sharded(simulator, kernel, until, max_events) -> Optional[float]:
    """Run the simulation across worker processes, or decline.

    Returns the end time on success and ``None`` when the configuration
    cannot be split exactly (the caller then falls back in-process to
    ``run_batched``, which is behaviourally identical).  All eligibility
    checks happen before any state is consumed, so declining is free of
    side effects beyond ``_start_nodes``; every decline records its
    reason via :func:`_decline`.
    """
    if sys.platform != "linux":
        return _decline(simulator, "non-linux platform")
    if "fork" not in multiprocessing.get_all_start_methods():
        return _decline(simulator, "fork start method unavailable")
    if until is not None:
        return _decline(simulator, "bounded run (until set)")
    if not kernel.rng_free or kernel.shard_fanout != "exclude_sender":
        return _decline(
            simulator, "kernel not rng-free or unsupported fan-out shape"
        )
    delay = simulator.latency.constant_delay()
    if delay is None:
        return _decline(simulator, "non-constant delay")
    if simulator._loss_probability > 0.0 or simulator._jitter > 0.0:
        return _decline(simulator, "loss or jitter enabled")
    if simulator.store._first_hooks:
        return _decline(simulator, "pending first-observation hooks")
    if simulator._blocks is not None and len(simulator._blocks):
        return _decline(simulator, "pending delivery blocks")
    node_count = simulator.graph.number_of_nodes()
    shards = simulator._shards
    if shards is None:
        shards = default_shard_count(node_count)
    shards = min(shards, node_count)
    if shards < 2:
        return _decline(simulator, "<2 shards")

    simulator._start_nodes()

    # Non-destructive queue scan: anything but a known-endpoint overlay
    # delivery of the kernel's kind declines the whole run.
    kernel.refresh()
    topology = kernel._topology
    index = topology.index
    kind = kernel.kind
    payload_set = set()
    for entry in simulator._queue._heap:
        item = entry[2]
        if item.__class__ is Event:
            if item.cancelled:
                continue
            return _decline(simulator, "timer in queue")
        if item.__class__ is not tuple or item[3] or item[2].kind != kind:
            return _decline(
                simulator, "foreign queue entry (direct or foreign kind)"
            )
        if item[0] not in index or item[1] not in index:
            return _decline(
                simulator, "queue entry with unregistered endpoint"
            )
        payload_set.add(item[2].payload_id)

    node_sizes = kernel.shard_node_sizes()
    if node_sizes is None:
        return _decline(simulator, "kernel lacks per-node payload sizes")
    priors: Dict[Hashable, np.ndarray] = {}
    for payload_id in payload_set:
        prior = kernel.prior_seen_ids(payload_id)
        if prior is None:
            return _decline(simulator, "kernel lacks prior-seen mirror")
        priors[payload_id] = np.fromiter(
            (index[node_id] for node_id in prior),
            dtype=np.int64,
            count=len(prior),
        )

    simulator._fallback_reason = None
    queue = simulator._queue
    entries: List[tuple] = []
    while True:
        entry = queue.pop_entry()
        if entry is None:
            break
        entries.append(entry)
    if not entries:
        simulator._last_executed = 0
        return simulator._now

    return _run_windows(
        simulator, kernel, topology, entries, priors, node_sizes,
        shards, delay, max_events,
    )


def _run_windows(
    simulator, kernel, topology, entries, priors, node_sizes,
    shards, delay, max_events,
) -> float:
    """The parent-side window loop (workers already eligible)."""
    index = topology.index
    shard_of = shard_assignment(simulator.graph, topology, shards)

    # Route the initial queue entries: delivery-time churn drops are
    # applied up front (churn is static during a sharded run — timers are
    # ineligible — so the outcome per entry is already decided), the rest
    # is grouped by (time, owner shard, payload).  ``entries`` arrive in
    # (time, sequence) order from the heap pops.
    offline = simulator._offline
    severed = simulator._severed
    payload_list: List[Hashable] = []
    payload_index: Dict[Hashable, int] = {}
    drops_at: Dict[float, int] = {}
    initial_raw: Dict[float, List[tuple]] = {}
    groups: Dict[tuple, List[List]] = {}
    for time, seq, item in entries:
        receiver, sender, message, _direct = item
        if offline and receiver in offline:
            simulator._churn_dropped += 1
            drops_at[time] = drops_at.get(time, 0) + 1
            continue
        if severed and frozenset((sender, receiver)) in severed:
            simulator._churn_dropped += 1
            drops_at[time] = drops_at.get(time, 0) + 1
            continue
        initial_raw.setdefault(time, []).append((time, item))
        pidx = payload_index.get(message.payload_id)
        if pidx is None:
            pidx = len(payload_list)
            payload_index[message.payload_id] = pidx
            payload_list.append(message.payload_id)
        r = index[receiver]
        group = groups.get((time, int(shard_of[r]), pidx))
        if group is None:
            group = [[], [], [], []]
            groups[(time, int(shard_of[r]), pidx)] = group
        group[0].append(seq)
        group[1].append(r)
        group[2].append(index[sender])
        group[3].append(message.size_bytes)
    for payload_id in priors:
        if payload_id not in payload_index:
            payload_index[payload_id] = len(payload_list)
            payload_list.append(payload_id)

    rank_base = max(seq for _, seq, _ in entries) + 1
    size_const = (
        int(node_sizes[0])
        if node_sizes.size and bool((node_sizes == node_sizes[0]).all())
        else None
    )
    routed: Dict[tuple, List[tuple]] = {}
    active = set(drops_at)
    for (time, owner, pidx), group in groups.items():
        sizes = np.asarray(group[3], dtype=np.int64)
        first = group[3][0]
        chunk_sizes = first if all(s == first for s in group[3]) else sizes
        routed.setdefault((time, owner), []).append((
            pidx,
            np.asarray(group[0], dtype=np.int64),
            np.asarray(group[1], dtype=np.int32),
            np.asarray(group[2], dtype=np.int32),
            chunk_sizes,
        ))
        active.add(time)

    prior_arrays = [
        priors[payload_list[pidx]] for pidx in range(len(payload_list))
    ]
    static = {
        "shards": shards,
        "n": topology.n,
        "indptr": topology.indptr,
        "indices": topology.indices.astype(np.int32),
        "shard_of": shard_of,
        "node_sizes": node_sizes,
        "size_const": size_const,
        "has_churn": kernel._has_churn,
        "online": kernel._online,
        "edge_ok": kernel._edge_ok,
        "priors": prior_arrays,
        "delay": delay,
    }

    ctx = multiprocessing.get_context("fork")
    conns = []
    procs = []
    try:
        for shard in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, shard, static),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        executed = 0
        event_cap = float("inf") if max_events is None else max_events
        next_rank = rank_base
        done_times = set()
        stopped_early = False
        while active:
            time = min(active)
            if executed >= event_cap:
                stopped_early = True
                break
            active.discard(time)
            done_times.add(time)
            executed += drops_at.pop(time, 0)
            simulator._now = max(simulator._now, time)

            for shard, conn in enumerate(conns):
                conn.send(("advance", time, routed.pop((time, shard), [])))
            trigger_chunks = []
            count_chunks = []
            lengths = []
            target_time = time + delay
            for conn in conns:
                _, t_time, triggers, counts, processed = _recv(conn)
                target_time = t_time
                trigger_chunks.append(triggers)
                count_chunks.append(counts)
                lengths.append(len(triggers))
                executed += processed
            all_triggers = np.concatenate(trigger_chunks)
            all_counts = np.concatenate(count_chunks)
            bases = np.empty(len(all_triggers), dtype=np.int64)
            if len(all_triggers):
                order = np.argsort(all_triggers)
                sorted_counts = all_counts[order]
                bases[order] = (
                    next_rank + np.cumsum(sorted_counts) - sorted_counts
                )
                next_rank += int(all_counts.sum())
            start = 0
            for length, conn in zip(lengths, conns):
                conn.send(("bases", bases[start:start + length]))
                start += length
            emitted = int(all_counts.sum())
            for conn in conns:
                outbox = _recv(conn)
                for dest, chunks in outbox.items():
                    routed.setdefault((target_time, dest), []).extend(
                        (pidx, ranks, targets, senders, None)
                        for pidx, ranks, targets, senders in chunks
                    )
            if emitted:
                active.add(target_time)

        for conn in conns:
            conn.send(("finish",))
        results = [_recv(conn) for conn in conns]
        for proc in procs:
            proc.join(timeout=30)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join()

    simulator._last_executed = executed
    telemetry = simulator._telemetry
    if telemetry is not None:
        telemetry.incr("sharded_runs")
        for shard, (_records, _inbox, worker_counters) in enumerate(results):
            telemetry.record_shard(shard, worker_counters)

    _adopt_results(
        simulator, kernel, topology, payload_list, results
    )
    if stopped_early:
        _requeue_pending(
            simulator, kernel, topology, payload_list, node_sizes,
            size_const, initial_raw, done_times, routed, results,
        )
    return simulator._now


def _recv(conn):
    """Receive one worker message, surfacing worker tracebacks."""
    message = conn.recv()
    if isinstance(message, tuple) and message and message[0] == "error":
        raise RuntimeError(
            f"sharded worker failed:\n{message[1]}"
        )
    return message


def _adopt_results(simulator, kernel, topology, payload_list, results):
    """Replay the workers' per-window records into store/metrics/nodes."""
    records = []
    for worker_records, _inbox, _counters in results:
        records.extend(worker_records)
    records.sort(key=lambda record: record[0])
    ids_array = topology.ids_array
    store = simulator.store
    metrics = simulator.metrics
    nodes = simulator._nodes
    kind = kernel.kind
    position = 0
    total = len(records)
    while position < total:
        time = records[position][0]
        end = position
        chunks = []
        while end < total and records[end][0] == time:
            _, pidx, ranks, receivers, senders, sizes, _fresh = records[end]
            chunks.append(
                (ranks, receivers, senders, payload_list[pidx], kind, sizes)
            )
            end += 1
        store.adopt_cohort(time, chunks, ids_array)
        for record in records[position:end]:
            _, pidx, _, _, _, _, fresh = record
            if not len(fresh):
                continue
            payload_id = payload_list[pidx]
            fresh_ids = ids_array[fresh].tolist()
            metrics.record_delivery_batch(payload_id, time, fresh_ids)
            seen = kernel._seen.get(payload_id)
            if seen is None:
                seen = np.zeros(topology.n, dtype=bool)
                kernel._seen[payload_id] = seen
            seen[fresh] = True
            mark = kernel._mark_node_seen
            for node_id in fresh_ids:
                mark(nodes[node_id], payload_id)
        position = end


def _requeue_pending(
    simulator, kernel, topology, payload_list, node_sizes, size_const,
    initial_raw, done_times, routed, results,
):
    """Put unprocessed work back on the heap after a ``max_events`` stop.

    Initial entries whose window never ran are re-pushed verbatim (their
    original ``Message`` objects survive); in-flight emissions — chunks the
    parent routed but never dispatched plus each worker's leftover inbox —
    are materialised into delivery tuples and pushed in (time, rank)
    order, so a follow-up ``run`` on any engine resumes exactly.
    """
    push_item = simulator._queue.push_item
    for time in sorted(initial_raw):
        if time in done_times:
            continue
        for push_time, item in initial_raw[time]:
            push_item(push_time, item)

    leftovers = []
    for (time, _owner), chunk_list in routed.items():
        for pidx, ranks, targets, senders, sizes in chunk_list:
            leftovers.append((time, pidx, ranks, targets, senders, sizes))
    for _records, inbox, _counters in results:
        for time, by_payload in inbox.items():
            for pidx, chunk_list in by_payload.items():
                for ranks, targets, senders, sizes in chunk_list:
                    leftovers.append(
                        (time, pidx, ranks, targets, senders, sizes)
                    )
    if not leftovers:
        return
    ids = topology.ids
    kind = kernel.kind
    rows = []
    for time, pidx, ranks, targets, senders, sizes in leftovers:
        payload_id = payload_list[pidx]
        if sizes is None:
            shared = size_const
        elif isinstance(sizes, int):
            shared = sizes
        else:
            shared = None
        if shared is not None:
            message = Message(
                kind=kind, payload_id=payload_id, size_bytes=shared
            )
            row_sizes = [message] * len(ranks)
        else:
            if not isinstance(sizes, np.ndarray):
                sizes = node_sizes[senders]
            row_sizes = [
                Message(kind=kind, payload_id=payload_id, size_bytes=int(s))
                for s in sizes
            ]
        rows.extend(
            zip(
                [time] * len(ranks),
                ranks.tolist(),
                targets.tolist(),
                senders.tolist(),
                row_sizes,
            )
        )
    rows.sort(key=lambda row: (row[0], row[1]))
    push_item = simulator._queue.push_item
    for time, _rank, target, sender, message in rows:
        push_item(time, (ids[target], ids[sender], message, False))


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn, me, static):
    """One shard worker: process windows over the nodes this shard owns.

    State arrives through fork (copy-on-write), commands through the pipe:
    ``("advance", time, routed_chunks)`` processes one window and runs the
    three-step rank handshake; ``("finish",)`` ships the accumulated
    observation records plus any unprocessed inbox back to the parent.
    """
    try:
        shards = static["shards"]
        indptr = static["indptr"]
        indices = static["indices"]
        shard_of = static["shard_of"]
        node_sizes = static["node_sizes"]
        size_const = static["size_const"]
        has_churn = static["has_churn"]
        online = static["online"]
        edge_ok = static["edge_ok"]
        delay = static["delay"]
        n = static["n"]
        seen = []
        for prior in static["priors"]:
            bitmap = np.zeros(n, dtype=bool)
            if len(prior):
                bitmap[prior] = True
            seen.append(bitmap)

        inbox: Dict[float, Dict[int, list]] = {}
        records: List[tuple] = []
        # Worker-local telemetry counters, shipped back with the finish
        # reply and merged per shard by the parent.  Plain ints: they
        # cross the pipe regardless of whether telemetry is enabled (the
        # cost is one small tuple element on an already-made send).
        counters = {
            "windows": 0,
            "deliveries_processed": 0,
            "fresh_nodes": 0,
            "fanout_emitted": 0,
        }
        while True:
            message = conn.recv()
            if message[0] == "finish":
                conn.send((records, inbox, counters))
                conn.close()
                return
            _, time, routed = message
            counters["windows"] += 1
            local = inbox.pop(time, {})
            for pidx, ranks, targets, senders, sizes in routed:
                local.setdefault(pidx, []).append(
                    (ranks, targets, senders, sizes)
                )

            fan_outs = []
            trigger_chunks = []
            count_chunks = []
            processed = 0
            for pidx in sorted(local):
                ranks, targets, senders, sizes = _merge_chunks(
                    local[pidx], node_sizes, size_const
                )
                processed += len(ranks)
                bitmap = seen[pidx]

                # First reception per node: among candidate deliveries to
                # not-yet-seen nodes, the minimum-rank delivery per target
                # wins (lexsort on the candidates only — the cohort itself
                # stays unsorted, ranks put the log in order at flush).
                candidate = ~bitmap[targets]
                c_targets = targets[candidate]
                if len(c_targets):
                    c_ranks = ranks[candidate]
                    c_senders = senders[candidate]
                    order = np.lexsort((c_ranks, c_targets))
                    sorted_targets = c_targets[order]
                    first = np.ones(len(order), dtype=bool)
                    first[1:] = sorted_targets[1:] != sorted_targets[:-1]
                    pick = order[first]
                    fresh = c_targets[pick]
                    excludes = c_senders[pick]
                    triggers = c_ranks[pick]
                    bitmap[fresh] = True
                else:
                    fresh = c_targets
                    excludes = fresh
                    triggers = np.empty(0, dtype=np.int64)
                records.append((
                    time, pidx, ranks, targets, senders, sizes,
                    fresh.astype(np.int32),
                ))
                counters["fresh_nodes"] += int(len(fresh))
                if not len(fresh):
                    continue

                # The exclude_sender fan-out, exactly as the batched
                # kernel's CSR ramp: every neighbour of each fresh node
                # except the delivering sender, churn-masked.
                starts = indptr[fresh]
                counts = indptr[fresh + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    continue
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                flat = np.repeat(starts, counts) + offsets
                em_targets = indices[flat]
                em_senders = np.repeat(fresh, counts).astype(np.int32)
                keep = em_targets != np.repeat(excludes, counts)
                if has_churn:
                    keep &= online[em_targets]
                    keep &= edge_ok[flat]
                block_of = np.repeat(
                    np.arange(len(fresh)), counts
                )[keep]
                kept_counts = np.bincount(
                    block_of, minlength=len(fresh)
                ).astype(np.int64)
                trigger_chunks.append(triggers)
                count_chunks.append(kept_counts)
                fan_outs.append(
                    (pidx, kept_counts, em_targets[keep], em_senders[keep])
                )

            counters["deliveries_processed"] += processed
            target_time = time + delay
            if trigger_chunks:
                all_triggers = np.concatenate(trigger_chunks)
                all_counts = np.concatenate(count_chunks)
            else:
                all_triggers = np.empty(0, dtype=np.int64)
                all_counts = np.empty(0, dtype=np.int64)
            counters["fanout_emitted"] += int(all_counts.sum())
            conn.send(
                ("blocks", target_time, all_triggers, all_counts, processed)
            )
            _, bases = conn.recv()

            outbox: Dict[int, list] = {}
            offset = 0
            for pidx, kept_counts, em_targets, em_senders in fan_outs:
                block_bases = bases[offset:offset + len(kept_counts)]
                offset += len(kept_counts)
                total = len(em_targets)
                if total == 0:
                    continue
                ramp = np.arange(total) - np.repeat(
                    np.cumsum(kept_counts) - kept_counts, kept_counts
                )
                delivery_ranks = np.repeat(block_bases, kept_counts) + ramp
                owners = shard_of[em_targets]
                for dest in range(shards):
                    mask = owners == dest
                    if not mask.any():
                        continue
                    chunk = (
                        delivery_ranks[mask],
                        em_targets[mask],
                        em_senders[mask],
                    )
                    if dest == me:
                        inbox.setdefault(target_time, {}).setdefault(
                            pidx, []
                        ).append(chunk + (None,))
                    else:
                        outbox.setdefault(dest, []).append((pidx,) + chunk)
            conn.send(outbox)
    except Exception:  # pragma: no cover - surfaced via _recv
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


def _merge_chunks(chunks, node_sizes, size_const):
    """Concatenate one payload's delivery chunks for a window.

    ``sizes`` per chunk is an ``int64`` array, a shared ``int``, or
    ``None`` (emission chunks — the size is the forwarder's payload size).
    The merged sizes collapse back to one shared ``int`` when every chunk
    agrees, which keeps the adopted-cohort write path allocation-free for
    the homogeneous-size presets.
    """
    if len(chunks) == 1:
        ranks, targets, senders, sizes = chunks[0]
        return ranks, targets, senders, _resolve_sizes(
            sizes, senders, node_sizes, size_const
        )
    ranks = np.concatenate([chunk[0] for chunk in chunks])
    targets = np.concatenate([chunk[1] for chunk in chunks])
    senders = np.concatenate([chunk[2] for chunk in chunks])
    resolved = [
        _resolve_sizes(chunk[3], chunk[2], node_sizes, size_const)
        for chunk in chunks
    ]
    first = resolved[0]
    if isinstance(first, int) and all(size == first for size in resolved):
        return ranks, targets, senders, first
    arrays = [
        np.full(len(chunk[0]), size, dtype=np.int64)
        if isinstance(size, int)
        else size
        for chunk, size in zip(chunks, resolved)
    ]
    return ranks, targets, senders, np.concatenate(arrays)


def _resolve_sizes(sizes, senders, node_sizes, size_const):
    """One chunk's per-delivery sizes: shared ``int`` where possible."""
    if sizes is None:
        if size_const is not None:
            return size_const
        return node_sizes[senders]
    return sizes
