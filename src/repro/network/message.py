"""Message and observation records exchanged through the simulator.

A :class:`Message` is what protocol nodes send to each other; an
:class:`Observation` is the simulator-side record of a delivery, which is the
only information the honest-but-curious adversaries of
:mod:`repro.adversary` are allowed to consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

_message_counter = itertools.count()


def _next_message_uid() -> int:
    return next(_message_counter)


@dataclass
class Message:
    """A protocol message travelling over one overlay link.

    Attributes:
        kind: protocol-specific message type, e.g. ``"flood"`` or
            ``"ad_token"``.
        payload_id: identifier of the transaction / payload being spread.
            All messages belonging to one broadcast share this id.
        body: arbitrary protocol metadata (share bytes, round counters, ...).
        size_bytes: accounted message size; used only for traffic statistics.
        uid: unique identifier of this message instance.
    """

    kind: str
    payload_id: Hashable
    body: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 256
    uid: int = field(default_factory=_next_message_uid)

    def copy_for_forwarding(self) -> "Message":
        """Return a fresh message instance carrying the same content.

        Forwarded messages get their own ``uid`` so traffic accounting counts
        every hop separately, exactly like a real network would.
        """
        return Message(
            kind=self.kind,
            payload_id=self.payload_id,
            body=dict(self.body),
            size_bytes=self.size_bytes,
        )


@dataclass(frozen=True)
class Observation:
    """A single delivery as seen from the receiving node.

    Attributes:
        time: simulated delivery time.
        receiver: node that received the message.
        sender: node that sent the message (the previous hop).
        message: the delivered message.
        direct: ``True`` if the link used is an overlay edge, ``False`` for
            out-of-band group traffic (e.g. DC-net exchanges).
    """

    time: float
    receiver: Hashable
    sender: Optional[Hashable]
    message: Message
    direct: bool = True
