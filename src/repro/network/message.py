"""Message and observation records exchanged through the simulator.

A :class:`Message` is what protocol nodes send to each other; an
:class:`Observation` is the simulator-side record of a delivery, which is the
only information the honest-but-curious adversaries of
:mod:`repro.adversary` are allowed to consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

_message_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """A protocol message travelling over one overlay link.

    Attributes:
        kind: protocol-specific message type, e.g. ``"flood"`` or
            ``"ad_token"``.
        payload_id: identifier of the transaction / payload being spread.
            All messages belonging to one broadcast share this id.
        body: arbitrary protocol metadata (share bytes, round counters, ...).
        size_bytes: accounted message size; used only for traffic statistics.
        uid: unique identifier of this message instance.
    """

    kind: str
    payload_id: Hashable
    body: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 256
    # Bound method of the counter directly: one C-level call per message
    # instead of a Python wrapper frame on the hot construction path.
    uid: int = field(default_factory=_message_counter.__next__)

    def copy_for_forwarding(self) -> "Message":
        """Return a fresh message instance carrying the same content.

        Forwarded messages get their own ``uid`` so traffic accounting counts
        every hop separately, exactly like a real network would.
        """
        return Message(
            kind=self.kind,
            payload_id=self.payload_id,
            body=dict(self.body),
            size_bytes=self.size_bytes,
        )


class Observation:
    """A single delivery as seen from the receiving node.

    Observations are allocated once per delivery on the simulator's hottest
    path, so the class is hand-rolled rather than a dataclass: slotted (no
    per-instance ``__dict__``) with a plain ``__init__`` that avoids the
    ``object.__setattr__`` detour a frozen dataclass pays per field.  Treat
    instances as immutable records — every index in the observation store
    assumes a recorded observation never changes.

    Attributes:
        time: simulated delivery time.
        receiver: node that received the message.
        sender: node that sent the message (the previous hop).
        message: the delivered message.
        direct: ``True`` if the link used is an overlay edge, ``False`` for
            out-of-band group traffic (e.g. DC-net exchanges).
    """

    __slots__ = ("time", "receiver", "sender", "message", "direct")

    def __init__(
        self,
        time: float,
        receiver: Hashable,
        sender: Optional[Hashable],
        message: Message,
        direct: bool = True,
    ) -> None:
        self.time = time
        self.receiver = receiver
        self.sender = sender
        self.message = message
        self.direct = direct

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Observation:
            return NotImplemented
        return (
            self.time == other.time
            and self.receiver == other.receiver
            and self.sender == other.sender
            and self.message == other.message
            and self.direct == other.direct
        )

    # Observations contain a (mutable) Message, exactly like the previous
    # frozen-dataclass version whose generated hash would have failed on the
    # message field — so they are explicitly unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"Observation(time={self.time!r}, receiver={self.receiver!r}, "
            f"sender={self.sender!r}, message={self.message!r}, "
            f"direct={self.direct!r})"
        )
