"""Base class of all protocol node behaviours.

A :class:`Node` encapsulates *what a peer does* when a message arrives; the
:class:`~repro.network.simulator.Simulator` owns time, topology and delivery.
Every dissemination protocol in this library (flood, gossip, Dandelion,
adaptive diffusion, the three-phase protocol) subclasses :class:`Node`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, NoReturn, Optional, Tuple

from repro.network.events import Event
from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.network.simulator import Simulator


class Node:
    """A peer participating in the overlay.

    Subclasses override :meth:`on_message` (mandatory) and optionally
    :meth:`on_start`.  Outgoing traffic goes through :meth:`send` /
    :meth:`send_direct`, timers through :meth:`schedule`.
    """

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        self._simulator: Optional["Simulator"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, simulator: "Simulator") -> None:
        """Called by the simulator when the node is registered."""
        self._simulator = simulator

    @property
    def simulator(self) -> "Simulator":
        if self._simulator is None:
            self._raise_unattached()
        return self._simulator

    def _raise_unattached(self) -> "NoReturn":
        raise RuntimeError(
            f"node {self.node_id!r} is not attached to a simulator"
        )

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.simulator.now

    @property
    def neighbours(self) -> Tuple[Hashable, ...]:
        """Overlay neighbours of this node, in deterministic order.

        A cached immutable tuple shared across calls — treat as read-only.
        """
        return self.simulator.neighbours_of(self.node_id)

    # ------------------------------------------------------------------
    # Actions available to protocol code
    # ------------------------------------------------------------------
    def send(self, receiver: Hashable, message: Message) -> None:
        """Send ``message`` to an overlay neighbour."""
        # Hot path: read the attribute once instead of going through the
        # ``simulator`` property's guard on every forwarded message.
        simulator = self._simulator
        if simulator is None:
            self._raise_unattached()
        simulator.send(self.node_id, receiver, message, direct=False)

    def send_direct(self, receiver: Hashable, message: Message) -> None:
        """Send ``message`` to any node, bypassing the overlay.

        DC-net group members exchange shares over pairwise channels that need
        not coincide with overlay edges; such traffic is accounted separately
        (``direct=True`` in the observation record).
        """
        simulator = self._simulator
        if simulator is None:
            self._raise_unattached()
        simulator.send(self.node_id, receiver, message, direct=True)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        return self.simulator.schedule(delay, action)

    def mark_delivered(self, payload_id: Hashable) -> None:
        """Record that this node now knows the payload content."""
        self.simulator.metrics.record_delivery(self.node_id, payload_id, self.now)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the simulation starts.  Default: do nothing."""

    def on_message(self, sender: Hashable, message: Message) -> None:
        """Handle a delivered message.  Subclasses must override this."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(node_id={self.node_id!r})"
