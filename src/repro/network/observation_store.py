"""Indexed store of every delivery the simulator performed.

The paper's evaluation (Section V-A) is phrased entirely in message counts
and arrival times, so every adversary and every benchmark ends up asking the
same small family of questions about the traffic log: "how many messages of
this kind belonged to this payload", "when did each node first see the
payload", "what did this observer set receive".  Answering those questions by
scanning the global send log makes every query O(total traffic), which is the
dominant cost once overlays reach thousands of nodes and a sweep runs
hundreds of broadcasts over the same simulator.

:class:`ObservationStore` is the single write path for deliveries.  The
:class:`~repro.network.simulator.Simulator` records every
:class:`~repro.network.message.Observation` through the
:class:`~repro.network.metrics.MetricsCollector`, which writes into this
store; the store maintains

* the append-only log (chronological, because the event queue delivers in
  time order),
* per-``payload_id``, per-``kind`` and per-``(payload_id, kind)`` position
  indexes (message counts become ``len()`` lookups),
* a per-receiver position index (the honest-but-curious adversary view),
* a first-seen-per-receiver index per payload and per ``(payload, kind)``
  (the raw material of the first-spy estimator), and
* one-shot *first observation* hooks so orchestration code can react to the
  first message of a ``(payload, kind)`` pair without polling the log.

All query methods cost O(size of the answer) — plus an O(log) merge factor
when several index lists are combined — instead of O(everything ever sent).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.network.message import Message, Observation

FirstObservationHook = Callable[[Observation], None]


class _AdoptedCohort:
    """One same-time delivery cohort adopted from sharded worker processes.

    Chunks are per-(worker, payload) struct-of-arrays slices — integer node
    indexes into ``ids``, plus the cohort-wide delivery ranks that define
    the event engine's delivery order.  Kept unmerged and unmaterialised
    until a reader needs log entries; the counting surface is served from
    the store's delta counters instead (see
    :meth:`ObservationStore.adopt_cohort`).
    """

    __slots__ = ("time", "chunks", "ids")

    def __init__(self, time, chunks, ids) -> None:
        self.time = time
        self.chunks = chunks
        self.ids = ids


class ObservationStore:
    """Append-only, index-backed log of message deliveries.

    Example:
        >>> from repro.network.message import Message, Observation
        >>> store = ObservationStore()
        >>> obs = Observation(0.5, receiver=1, sender=0,
        ...                   message=Message(kind="flood", payload_id="tx"))
        >>> store.record(obs)
        0
        >>> store.count(kind="flood", payload_id="tx")
        1
    """

    # The store is written once per simulated delivery — the single hottest
    # call in the library after the event loop itself — so its records stay
    # slim: no instance ``__dict__``, plain tuples as compound keys, and
    # ``record`` structured so each index costs one lookup and one append.
    __slots__ = (
        "_log",
        "_count",
        "_pending",
        "_by_payload",
        "_by_kind",
        "_by_payload_kind",
        "_by_receiver",
        "_first_by_receiver",
        "_first_by_receiver_kind",
        "_first_hooks",
        "_bytes_total",
        "_delta_payload",
        "_delta_kind",
        "_delta_pair",
    )

    def __init__(self) -> None:
        self._log: List[Observation] = []
        # Batched writes (record_batch) defer Observation materialisation:
        # counting indexes are updated eagerly (counts stay O(1)), while the
        # per-object work — Observation construction, the per-receiver and
        # first-seen tables — is kept as pending struct-of-arrays segments
        # until a reader actually needs log entries.  ``_count`` is the
        # logical length including pending segments.
        self._count = 0
        self._pending: List[tuple] = []
        self._by_payload: Dict[Hashable, List[int]] = defaultdict(list)
        self._by_kind: Dict[str, List[int]] = defaultdict(list)
        self._by_payload_kind: Dict[Tuple[Hashable, str], List[int]] = (
            defaultdict(list)
        )
        self._by_receiver: Dict[Hashable, List[int]] = defaultdict(list)
        self._first_by_receiver: Dict[Hashable, Dict[Hashable, int]] = (
            defaultdict(dict)
        )
        self._first_by_receiver_kind: Dict[
            Tuple[Hashable, str], Dict[Hashable, int]
        ] = defaultdict(dict)
        self._first_hooks: Dict[
            Tuple[Hashable, str], List[FirstObservationHook]
        ] = {}
        self._bytes_total = 0
        # Adopted-cohort delta counters: deliveries accepted through
        # adopt_cohort() whose position-index entries have not been
        # materialised yet.  Counting queries add these to the index-list
        # lengths; _flush() converts them into real positions and clears
        # them.  Empty (and cost-free) unless the sharded engine ran.
        self._delta_payload: Dict[Hashable, int] = {}
        self._delta_kind: Dict[str, int] = {}
        self._delta_pair: Dict[Tuple[Hashable, str], int] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, observation: Observation) -> int:
        """Append one delivery and update every index.

        Returns the observation's position in the log (its global sequence
        number; positions are strictly increasing, so index lists are always
        sorted and can be merged cheaply).
        """
        if self._pending:
            self._flush()
        log = self._log
        position = len(log)
        log.append(observation)
        message = observation.message
        payload_id = message.payload_id
        kind = message.kind
        receiver = observation.receiver
        pair = (payload_id, kind)

        self._by_payload[payload_id].append(position)
        self._by_kind[kind].append(position)
        pair_positions = self._by_payload_kind[pair]
        first_of_pair = not pair_positions
        pair_positions.append(position)
        self._by_receiver[receiver].append(position)
        first_table = self._first_by_receiver[payload_id]
        if receiver not in first_table:
            first_table[receiver] = position
        first_kind_table = self._first_by_receiver_kind[pair]
        if receiver not in first_kind_table:
            first_kind_table[receiver] = position
        self._bytes_total += message.size_bytes
        self._count = position + 1

        if first_of_pair and pair in self._first_hooks:
            for hook in self._first_hooks.pop(pair):
                hook(observation)
        return position

    def record_batch(
        self,
        time: float,
        receivers,
        senders,
        messages,
        payload_id: Hashable,
        kind: str,
        bytes_total: int,
        direct: bool = False,
    ) -> int:
        """Bulk-append same-time deliveries of one ``(payload, kind)`` pair.

        The batched engine's write path.  ``receivers``/``senders``/
        ``messages`` are parallel sequences (numpy object arrays in
        practice) in delivery order; ``bytes_total`` is the summed message
        size.  The counting indexes (per payload, kind and pair, plus the
        byte total) are updated immediately, so every O(1) count query
        stays exact; :class:`Observation` construction and the
        per-receiver/first-seen tables are deferred until a reader needs
        log entries (:meth:`_flush`).  A 100k-node flood whose metrics are
        all counts therefore never materialises its ~1.5M observations.

        Returns the position of the first appended observation.
        """
        size = len(receivers)
        if self._delta_pair:
            # Unflushed adopted cohorts have no position-list entries yet;
            # materialise them first so this batch's eagerly-extended
            # positions stay sorted after them.
            self._flush()
        start = self._count
        if size == 0:
            return start
        positions = range(start, start + size)
        self._by_payload[payload_id].extend(positions)
        self._by_kind[kind].extend(positions)
        pair = (payload_id, kind)
        pair_positions = self._by_payload_kind[pair]
        first_of_pair = not pair_positions
        pair_positions.extend(positions)
        self._bytes_total += bytes_total
        self._count = start + size
        self._pending.append(
            (time, receivers, senders, messages, payload_id, kind, direct)
        )
        if first_of_pair and pair in self._first_hooks:
            # Fire with a real Observation, exactly like record() would.
            # (The simulator never takes the batched path while a hook is
            # pending; this covers direct store users.)
            self._flush()
            for hook in self._first_hooks.pop(pair):
                hook(self._log[start])
        return start

    def adopt_cohort(self, time: float, chunks, ids) -> None:
        """Adopt one same-time delivery cohort from sharded workers.

        The sharded engine's write path (:mod:`repro.network.sharded`).
        ``chunks`` is a list of ``(ranks, receivers, senders, payload_id,
        kind, sizes)`` tuples — one per (worker, payload) slice of the
        cohort — where ``ranks`` are the cohort-wide delivery ranks (the
        event engine's delivery order at this time), ``receivers``/
        ``senders`` are integer positions into the ``ids`` array of node
        identifiers, and ``sizes`` is either a per-delivery array or one
        shared ``int``.  Cohorts must be adopted in ascending time order,
        after everything already recorded.

        Only the O(1) counting surface is updated here — the logical
        length, byte total and the per-payload/kind/pair delta counters.
        Merging the chunks by rank, resolving indexes to node ids and
        building :class:`Observation` entries all wait until a reader
        needs log entries (:meth:`_flush`), which a pure-counting
        benchmark run never does.
        """
        total = 0
        delta_payload = self._delta_payload
        delta_kind = self._delta_kind
        delta_pair = self._delta_pair
        for ranks, _receivers, _senders, payload_id, kind, sizes in chunks:
            size = len(ranks)
            if size == 0:
                continue
            total += size
            pair = (payload_id, kind)
            delta_payload[payload_id] = delta_payload.get(payload_id, 0) + size
            delta_kind[kind] = delta_kind.get(kind, 0) + size
            delta_pair[pair] = delta_pair.get(pair, 0) + size
            if isinstance(sizes, int):
                self._bytes_total += sizes * size
            else:
                self._bytes_total += int(sizes.sum())
        if total == 0:
            return
        self._count += total
        self._pending.append(_AdoptedCohort(time, chunks, ids))

    @property
    def has_pending_first_hooks(self) -> bool:
        """Whether any :meth:`on_first` hook is still waiting to fire."""
        return bool(self._first_hooks)

    def _flush(self) -> None:
        """Materialise pending batch segments into the log and tables."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        log = self._log
        by_receiver = self._by_receiver
        for entry in pending:
            if entry.__class__ is _AdoptedCohort:
                self._flush_adopted(entry)
                continue
            time, receivers, senders, messages, payload_id, kind, direct = (
                entry
            )
            position = len(log)
            first_table = self._first_by_receiver[payload_id]
            first_kind_table = self._first_by_receiver_kind[
                (payload_id, kind)
            ]
            for receiver, sender, message in zip(receivers, senders, messages):
                log.append(
                    Observation(time, receiver, sender, message, direct)
                )
                by_receiver[receiver].append(position)
                if receiver not in first_table:
                    first_table[receiver] = position
                if receiver not in first_kind_table:
                    first_kind_table[receiver] = position
                position += 1
        if self._delta_pair:
            self._delta_payload.clear()
            self._delta_kind.clear()
            self._delta_pair.clear()

    def _flush_adopted(self, cohort: _AdoptedCohort) -> None:
        """Merge one adopted cohort's chunks by rank into the log.

        Converts the delta-counted deliveries into real log entries: the
        chunks are interleaved back into the event engine's delivery order
        (ascending rank), indexes are resolved against the cohort's node-id
        array, and every position index the delta counters stood in for is
        extended.  Messages are shared per chunk — the digest surface
        (kind, payload, size) is identical for every delivery of a chunk,
        matching the batched engine's one-message-per-sender sharing.
        """
        time = cohort.time
        ids = cohort.ids
        chunks = cohort.chunks
        merged: List[tuple] = []
        for ranks, receivers, senders, payload_id, kind, sizes in chunks:
            if len(ranks) == 0:
                continue
            receiver_ids = ids[receivers]
            sender_ids = ids[senders]
            if isinstance(sizes, int):
                message = Message(
                    kind=kind, payload_id=payload_id, size_bytes=sizes
                )
                messages = [message] * len(ranks)
            else:
                messages = [
                    Message(kind=kind, payload_id=payload_id,
                            size_bytes=int(size))
                    for size in sizes
                ]
            merged.extend(
                zip(ranks.tolist(), receiver_ids, sender_ids, messages)
            )
        merged.sort(key=lambda item: item[0])
        log = self._log
        by_receiver = self._by_receiver
        by_payload = self._by_payload
        by_kind = self._by_kind
        by_pair = self._by_payload_kind
        first_by_receiver = self._first_by_receiver
        first_by_receiver_kind = self._first_by_receiver_kind
        position = len(log)
        for _rank, receiver, sender, message in merged:
            payload_id = message.payload_id
            kind = message.kind
            log.append(Observation(time, receiver, sender, message, False))
            by_payload[payload_id].append(position)
            by_kind[kind].append(position)
            by_pair[(payload_id, kind)].append(position)
            by_receiver[receiver].append(position)
            first_table = first_by_receiver[payload_id]
            if receiver not in first_table:
                first_table[receiver] = position
            first_kind_table = first_by_receiver_kind[(payload_id, kind)]
            if receiver not in first_kind_table:
                first_kind_table[receiver] = position
            position += 1

    def on_first(
        self, payload_id: Hashable, kind: str, hook: FirstObservationHook
    ) -> Callable[[], None]:
        """Invoke ``hook`` with the first observation of ``(payload, kind)``.

        If such an observation already exists the hook fires immediately
        (with the earliest one); otherwise it fires exactly once, from inside
        :meth:`record`, the moment the first matching delivery happens.  This
        replaces polling the log for phase transitions such as "the flood
        phase has started".

        Returns:
            A cancel callable.  Calling it unregisters the hook if it has
            not fired yet (and is a no-op otherwise); owners of hooks whose
            condition can no longer legitimately occur — e.g. a finished
            broadcast that never reached its flood phase — should cancel so
            a later reuse of the same ``(payload, kind)`` pair cannot fire a
            stale hook.
        """
        pair = (payload_id, kind)
        existing = self._by_payload_kind.get(pair)
        if existing or self._delta_pair.get(pair):
            if self._pending:
                self._flush()
            hook(self._log[self._by_payload_kind[pair][0]])
            return lambda: None

        def cancel() -> None:
            pending = self._first_hooks.get(pair)
            if pending is None or hook not in pending:
                return
            pending.remove(hook)
            if not pending:
                del self._first_hooks[pair]

        self._first_hooks.setdefault(pair, []).append(hook)
        return cancel

    # ------------------------------------------------------------------
    # Counting (all O(1))
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Observation]:
        if self._pending:
            self._flush()
        return iter(self._log)

    def count(
        self,
        kind: Optional[str] = None,
        payload_id: Optional[Hashable] = None,
    ) -> int:
        """Number of recorded deliveries matching the filters."""
        if kind is None and payload_id is None:
            return self._count
        if payload_id is None:
            return len(self._by_kind.get(kind, ())) + self._delta_kind.get(
                kind, 0
            )
        if kind is None:
            return len(
                self._by_payload.get(payload_id, ())
            ) + self._delta_payload.get(payload_id, 0)
        pair = (payload_id, kind)
        return len(
            self._by_payload_kind.get(pair, ())
        ) + self._delta_pair.get(pair, 0)

    def kind_counts(self) -> Dict[str, int]:
        """Delivery counts broken down by message kind."""
        counts = {
            kind: len(positions) for kind, positions in self._by_kind.items()
        }
        for kind, delta in self._delta_kind.items():
            counts[kind] = counts.get(kind, 0) + delta
        return counts

    def payload_count(self) -> int:
        """Number of distinct payload ids seen so far."""
        if not self._delta_payload:
            return len(self._by_payload)
        return len(self._by_payload.keys() | self._delta_payload.keys())

    def bytes_total(self) -> int:
        """Total accounted traffic volume in bytes."""
        return self._bytes_total

    # ------------------------------------------------------------------
    # Querying (all O(result))
    # ------------------------------------------------------------------
    @property
    def observations(self) -> List[Observation]:
        """A copy of the full chronological log.

        For read-only scans prefer :meth:`iter_observations`, which does not
        copy anything.
        """
        if self._pending:
            self._flush()
        return list(self._log)

    def iter_observations(self) -> Iterator[Observation]:
        """Lazily iterate the full chronological log without copying it.

        The iterator is live over the append-only log: entries recorded
        while iterating are yielded too, and already-yielded entries never
        change.  This is the cheap path for whole-log consumers (reporting,
        estimators, equivalence oracles) that previously paid a full-list
        copy via :attr:`observations` per scan.
        """
        if self._pending:
            self._flush()
        return iter(self._log)

    def _positions(
        self,
        payload_id: Optional[Hashable],
        kinds: Optional[Tuple[str, ...]],
    ) -> Iterable[int]:
        """Sorted log positions matching a payload and/or kind filter."""
        if payload_id is not None and kinds is not None:
            unique = list(dict.fromkeys(kinds))
            lists = [
                self._by_payload_kind.get((payload_id, kind), [])
                for kind in unique
            ]
        elif payload_id is not None:
            return self._by_payload.get(payload_id, [])
        elif kinds is not None:
            unique = list(dict.fromkeys(kinds))
            lists = [self._by_kind.get(kind, []) for kind in unique]
        else:
            return range(len(self._log))
        if len(lists) == 1:
            return lists[0]
        return heapq.merge(*lists)

    def of_payload(
        self,
        payload_id: Hashable,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> List[Observation]:
        """All deliveries of one payload in chronological order."""
        if self._pending:
            self._flush()
        return [self._log[i] for i in self._positions(payload_id, kinds)]

    def for_receivers(
        self,
        receivers: Iterable[Hashable],
        payload_id: Optional[Hashable] = None,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> List[Observation]:
        """Deliveries received by any of ``receivers``, optionally filtered.

        This is the honest-but-curious adversary query: everything a set of
        observer nodes saw.  When a payload/kind filter is present the method
        walks whichever index side is smaller — the observers' traffic or the
        payload's traffic — so the cost is bounded by the smaller of the two,
        never by the full log.
        """
        if self._pending:
            self._flush()
        receiver_set = set(receivers)
        receiver_lists = [
            self._by_receiver[r] for r in receiver_set if r in self._by_receiver
        ]
        if payload_id is None and kinds is None:
            merged = (
                receiver_lists[0]
                if len(receiver_lists) == 1
                else heapq.merge(*receiver_lists)
            )
            return [self._log[i] for i in merged]

        receiver_total = sum(len(lst) for lst in receiver_lists)
        filter_total = self.count_for(payload_id, kinds)
        if receiver_total <= filter_total:
            kind_set = None if kinds is None else set(kinds)
            merged = (
                receiver_lists[0]
                if len(receiver_lists) == 1
                else heapq.merge(*receiver_lists)
            )
            return [
                obs
                for obs in (self._log[i] for i in merged)
                if (payload_id is None or obs.message.payload_id == payload_id)
                and (kind_set is None or obs.message.kind in kind_set)
            ]
        return [
            obs
            for obs in (self._log[i] for i in self._positions(payload_id, kinds))
            if obs.receiver in receiver_set
        ]

    def count_for(
        self,
        payload_id: Optional[Hashable],
        kinds: Optional[Tuple[str, ...]],
    ) -> int:
        """Number of deliveries matching a payload and/or multi-kind filter."""
        if kinds is None:
            return self.count(payload_id=payload_id)
        unique = dict.fromkeys(kinds)
        if payload_id is None:
            return sum(self.count(kind=kind) for kind in unique)
        return sum(
            self.count(kind=kind, payload_id=payload_id) for kind in unique
        )

    def first_observations(
        self,
        payload_id: Hashable,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> Dict[Hashable, Observation]:
        """First delivery of the payload per receiving node.

        With a ``kinds`` filter, the per-``(payload, kind)`` first-seen maps
        are merged by log position, so the result matches a chronological
        scan restricted to those kinds — at O(receivers) cost.
        """
        if self._pending:
            self._flush()
        if kinds is None:
            table = self._first_by_receiver.get(payload_id, {})
            return {r: self._log[i] for r, i in table.items()}
        best: Dict[Hashable, int] = {}
        for kind in dict.fromkeys(kinds):
            table = self._first_by_receiver_kind.get((payload_id, kind), {})
            for receiver, position in table.items():
                if receiver not in best or position < best[receiver]:
                    best[receiver] = position
        return {r: self._log[i] for r, i in best.items()}
