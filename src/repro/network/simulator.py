"""The deterministic discrete-event network simulator.

The simulator owns the overlay graph, the clock, the latency model and the
metrics.  Protocol behaviour lives entirely in :class:`~repro.network.node.Node`
subclasses; the simulator's job is to deliver their messages after the
latency-model delay and to record every delivery as an
:class:`~repro.network.message.Observation` in the indexed
:class:`~repro.network.observation_store.ObservationStore` so adversaries and
benchmarks can analyse the run afterwards without scanning the full log.

Hot-path design.  ``send`` and the run loop dominate the wall-clock of every
benchmark, so they avoid Python overhead that would be invisible at 100
nodes but dominant at 5,000:

* a delivery is *data*, not code — ``send`` pushes a plain
  ``(receiver, sender, message, direct)`` tuple onto the event queue
  (:meth:`EventQueue.push_item`) instead of allocating a per-message closure
  plus an ``Event`` object, and the run loop dispatches on the payload type,
  building the :class:`Observation` inline and appending it through the
  pre-bound ``store.record`` fast path;
* the conditions' ``loss_probability``/``jitter``, the latency model's
  ``delay`` method and the per-node adjacency sets are cached on the
  simulator at construction, so the per-event inner loop does no repeated
  attribute chasing;
* :meth:`neighbours_of` returns one cached, immutable tuple per node —
  callers iterate it millions of times during a flood fan-out and must not
  mutate it.

None of this changes observable behaviour: event ordering is still (time,
insertion order), the loss/jitter stream still comes from the dedicated link
RNG, and identical seeds produce identical observation logs (guarded by the
golden tests in ``tests/network/test_fastpath_determinism.py``).

Two engines.  ``Simulator(engine="event")`` (the default) is the per-message
loop described above.  ``engine="batched"`` keeps the same interface and the
same observable behaviour but, when every registered node is of one type
that declares a ``COHORT_KERNEL`` (flood and gossip do), processes all
deliveries sharing a timestamp as numpy struct-of-arrays cohorts — see
:mod:`repro.network.batched`.  Runs without an eligible kernel (mixed node
types, other protocols) silently use the event loop, so ``engine="batched"``
is always safe to request.  Seed-for-seed the two engines produce identical
observation logs and drop counters; the golden and property tests assert
this for every preset.
"""

from __future__ import annotations

import logging
import random
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import networkx as nx

from repro.network.conditions import NetworkConditions
from repro.network.events import Event, EventQueue
from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message, Observation
from repro.network.metrics import MetricsCollector
from repro.network.node import Node
from repro.network.observation_store import ObservationStore
from repro.telemetry.recorder import Recorder, current_recorder

logger = logging.getLogger(__name__)

#: The registered delivery engines (see the module docstring).
ENGINES: Tuple[str, ...] = ("event", "batched", "sharded")


class Simulator:
    """Discrete-event simulation of a peer-to-peer overlay.

    Example:
        >>> import networkx as nx
        >>> from repro.network import Simulator
        >>> sim = Simulator(nx.path_graph(3), seed=1)

    Args:
        graph: the overlay topology; node ids become simulator node ids.
        latency: link latency model; defaults to one time unit per hop, or to
            the conditions' latency when ``conditions`` is given.
        seed: seed of the simulator's RNG (used by protocols for coin flips).
        conditions: shared network conditions.  Message loss and jitter are
            applied to every overlay send; randomness for both comes from a
            dedicated stream (derived from ``seed``), so lossless conditions
            leave protocol RNG consumption untouched.
        engine: ``"event"`` (per-message loop, the default),
            ``"batched"`` (vectorised cohort kernel where a protocol
            provides one; behaviourally identical) or ``"sharded"``
            (cohort kernels partitioned over worker processes in
            conservative time windows; behaviourally identical, falling
            back in-process whenever the configuration cannot be split —
            see :mod:`repro.network.sharded`).  Unknown names raise
            ``KeyError`` listing the registered engines.
        shards: worker-process count for ``engine="sharded"`` (default:
            the CPU count, at least 2, capped at 8).  Ignored by the
            other engines; behaviour is shard-count independent.
        telemetry: a :class:`~repro.telemetry.Recorder`; defaults to the
            ambient recorder installed by
            :func:`repro.telemetry.recording` (or none).  Recorders with
            ``enabled`` false are treated as absent, so the default
            costs nothing.  Telemetry never changes observable
            behaviour: identical seeds produce identical observation
            logs with it on or off.
    """

    def __init__(
        self,
        graph: nx.Graph,
        latency: Optional[LatencyModel] = None,
        seed: Optional[int] = None,
        conditions: Optional[NetworkConditions] = None,
        engine: str = "event",
        shards: Optional[int] = None,
        telemetry: Optional[Recorder] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("the overlay graph must not be empty")
        if engine not in ENGINES:
            raise KeyError(
                f"unknown engine {engine!r} "
                f"(registered: {', '.join(sorted(ENGINES))})"
            )
        self._engine = engine
        self.graph = graph
        if latency is not None:
            self.latency = latency
        elif conditions is not None:
            self.latency = conditions.build_latency(
                random.Random(None if seed is None else seed + 1)
            )
        else:
            self.latency = ConstantLatency(1.0)
        self.conditions = (
            conditions
            if conditions is not None
            else NetworkConditions(latency=self.latency)
        )
        self.rng = random.Random(seed)
        # Dedicated stream for loss/jitter draws: keeping it separate from
        # ``self.rng`` means enabling loss never perturbs protocol coin flips
        # and (since it is only consumed when loss/jitter are non-zero)
        # lossless runs stay draw-for-draw identical to pre-conditions runs.
        self._link_rng = random.Random(
            None if seed is None else seed + 0x5EED
        )
        self.store = ObservationStore()
        self.metrics = MetricsCollector(store=self.store)
        self._queue = EventQueue()
        self._nodes: Dict[Hashable, Node] = {}
        self._now = 0.0
        self._started = False
        self._neighbour_cache: Dict[Hashable, Tuple[Hashable, ...]] = {}
        self._adjacency: Dict[Hashable, FrozenSet[Hashable]] = {}
        self._dropped_total = 0
        self._dropped_by_payload: Dict[Hashable, int] = {}
        # Churn: nodes currently offline.  The set is shared (never
        # rebound), so the run loop can bind it once as a local — an empty
        # set makes every offline check a single falsy test.
        self._offline: set = set()
        # Link failures: frozenset({a, b}) per severed overlay link.  Shared
        # like ``_offline`` so the hot paths pay one falsy test while no
        # link is down (the common case).
        self._severed: set = set()
        self._churn_dropped = 0
        # Telemetry: resolved once, normalised to ``None`` unless enabled,
        # so the hot paths below never test a recorder object.  Counter
        # deltas are read at run() boundaries; only the opt-in queue depth
        # tracking touches a per-event path.
        recorder = telemetry if telemetry is not None else current_recorder()
        if recorder is not None and recorder.enabled:
            self._telemetry: Optional[Recorder] = recorder
            if recorder.queue_depth:
                self._queue.enable_depth_tracking()
        else:
            self._telemetry = None
        self._engine_effective = engine
        self._fallback_reason: Optional[str] = None
        self._last_executed = 0
        self._loss_draws = 0
        self._jitter_draws = 0
        # Per-event fast path: the conditions object is frozen and the
        # latency model / store are fixed for the simulator's lifetime, so
        # their hot attributes are resolved exactly once.
        self._loss_probability = self.conditions.loss_probability
        self._jitter = self.conditions.jitter
        self._delay = self.latency.delay
        self._record = self.store.record
        self._push_item = self._queue.push_item
        # Batched engine state.  The generation counter is bumped by every
        # topology-cache invalidation so cohort kernels know when to rebuild
        # their CSR view and churn masks; the block buffer holds kernel
        # fan-outs as struct-of-arrays instead of per-message heap tuples.
        self._topology_generation = 0
        self._kernel = None
        self._kernel_resolved = False
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1 when given")
        self._shards = shards
        if engine in ("batched", "sharded"):
            from repro.network.batched import BlockBuffer

            self._queue.enable_sequence_reservation()
            self._blocks = BlockBuffer()
        else:
            self._blocks = None

    @property
    def engine(self) -> str:
        """The delivery engine this simulator runs on."""
        return self._engine

    @property
    def shards(self) -> Optional[int]:
        """The requested shard count (``None`` = the engine's default)."""
        return self._shards

    @property
    def telemetry(self) -> Optional[Recorder]:
        """The enabled recorder attached to this simulator, or ``None``."""
        return self._telemetry

    @property
    def engine_effective(self) -> str:
        """The engine that actually executed the most recent :meth:`run`.

        ``engine="sharded"`` runs fall back to ``"batched"`` when the
        configuration cannot be split across workers, and both batched
        and sharded fall back to ``"event"`` when no cohort kernel is
        eligible; :attr:`fallback_reason` carries the why.  Before the
        first run this reports the requested engine.
        """
        return self._engine_effective

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why the last run left the requested engine, or ``None``."""
        return self._fallback_reason

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node behaviour for an existing graph vertex."""
        if node.node_id not in self.graph:
            raise ValueError(f"node {node.node_id!r} is not part of the overlay")
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} is already registered")
        node.attach(self)
        self._nodes[node.node_id] = node
        # The cohort kernel (if any) is resolved from the full node
        # population; adding a node of another type disqualifies it.
        self._kernel = None
        self._kernel_resolved = False
        return node

    def populate(self, factory: Callable[[Hashable], Node]) -> None:
        """Create one node behaviour per graph vertex using ``factory``."""
        for node_id in sorted(self.graph.nodes, key=repr):
            if node_id not in self._nodes:
                self.add_node(factory(node_id))

    def node(self, node_id: Hashable) -> Node:
        """Return the behaviour registered for ``node_id``."""
        return self._nodes[node_id]

    @property
    def nodes(self) -> Dict[Hashable, Node]:
        """Mapping of node id to registered behaviour."""
        return dict(self._nodes)

    def neighbours_of(self, node_id: Hashable) -> Tuple[Hashable, ...]:
        """Overlay neighbours of ``node_id`` in deterministic order.

        Returns a cached immutable tuple — the same object on every call —
        so flood/gossip fan-outs iterate it without a per-call list copy.
        Callers must treat it as read-only.  Nodes currently offline
        (:meth:`fail_node`) are excluded; churn events invalidate the cache.
        """
        cached = self._neighbour_cache.get(node_id)
        if cached is None:
            offline = self._offline
            severed = self._severed
            cached = tuple(
                peer
                for peer in sorted(self.graph.neighbors(node_id), key=repr)
                if peer not in offline
                and (not severed or frozenset((node_id, peer)) not in severed)
            )
            self._neighbour_cache[node_id] = cached
        return cached

    def _adjacent_to(self, node_id: Hashable) -> FrozenSet[Hashable]:
        """Cached neighbour set of ``node_id`` (empty for non-graph nodes)."""
        adjacent = self._adjacency.get(node_id)
        if adjacent is None:
            if node_id in self.graph:
                adjacent = frozenset(self.graph.neighbors(node_id))
            else:
                adjacent = frozenset()
            self._adjacency[node_id] = adjacent
        return adjacent

    def invalidate_topology_caches(self) -> None:
        """Drop the cached neighbour tuples and adjacency sets.

        The simulator caches each node's neighbour tuple (for fan-outs) and
        adjacency set (for overlay-edge validation in :meth:`send`).  Code
        that mutates :attr:`graph` *after* construction — e.g.
        :func:`~repro.adversary.botnet.inject_supernodes` on a graph already
        owned by a simulator — must call this, or sends along new edges will
        be rejected against the stale topology.  (All built-in experiment
        flows mutate the graph before building the simulator.)

        Also bumps the topology generation the batched engine's cohort
        kernels track, and drops the CSR adjacency cached on the graph
        object (keyed as in :mod:`repro.network.batched`), so both engines
        see the change.
        """
        self._neighbour_cache.clear()
        self._adjacency.clear()
        self._topology_generation += 1
        # Same literals as batched.CSR_CACHE_KEY and
        # sharded.PARTITION_CACHE_KEY; popped here by name so the event
        # engine never imports numpy.
        self.graph.graph.pop("repro_csr_topology", None)
        self.graph.graph.pop("repro_sharded_partition", None)

    # ------------------------------------------------------------------
    # Churn: node failures and rejoins
    # ------------------------------------------------------------------
    def fail_node(self, node_id: Hashable) -> None:
        """Take ``node_id`` offline (crash/disconnect semantics).

        While offline the node sends and receives nothing: its outgoing and
        incoming overlay *and* direct transmissions are dropped (counted in
        :attr:`churn_dropped`), messages already in flight towards it are
        dropped at delivery time, and it disappears from every other node's
        :meth:`neighbours_of` tuple.  Its graph vertex, protocol state and
        pending timers survive, so :meth:`restore_node` is cheap.

        The fast-path neighbour/adjacency caches are invalidated — typically
        called from a :class:`~repro.network.churn.ChurnSchedule` event
        mid-run, after which fan-outs must see the shrunken topology.

        Idempotent; failing an unknown node raises ``ValueError``.
        """
        if node_id not in self.graph:
            raise ValueError(f"node {node_id!r} is not part of the overlay")
        if node_id in self._offline:
            return
        self._offline.add(node_id)
        self.invalidate_topology_caches()

    def restore_node(self, node_id: Hashable) -> None:
        """Bring a failed node back online (idempotent).

        The node resumes exactly where it crashed: same behaviour object,
        same protocol state, no replay of what it missed — payloads that
        spread while it was gone stay unknown to it unless a neighbour
        forwards them again.
        """
        if node_id not in self._offline:
            return
        self._offline.discard(node_id)
        self.invalidate_topology_caches()

    @property
    def offline_nodes(self) -> FrozenSet[Hashable]:
        """The nodes currently offline."""
        return frozenset(self._offline)

    # ------------------------------------------------------------------
    # Link failures: severing and restoring individual overlay links
    # ------------------------------------------------------------------
    def sever_link(self, a: Hashable, b: Hashable) -> None:
        """Take the overlay link between ``a`` and ``b`` down.

        While severed the link carries nothing: overlay sends along it are
        dropped (counted in :attr:`churn_dropped`, like node churn),
        messages already in flight across it are dropped at delivery time,
        and each endpoint disappears from the other's :meth:`neighbours_of`
        tuple.  Both nodes stay online and all their other links keep
        working — this is the eclipse/partition primitive, finer grained
        than :meth:`fail_node`.  Direct (out-of-band) sends are unaffected,
        matching their reliable-channel semantics.

        Idempotent; severing a non-existent overlay edge raises
        ``ValueError``.
        """
        if not self.graph.has_edge(a, b):
            raise ValueError(f"no overlay edge between {a!r} and {b!r}")
        link = frozenset((a, b))
        if link in self._severed:
            return
        self._severed.add(link)
        self.invalidate_topology_caches()

    def restore_link(self, a: Hashable, b: Hashable) -> None:
        """Bring a severed link back up (idempotent)."""
        link = frozenset((a, b))
        if link not in self._severed:
            return
        self._severed.discard(link)
        self.invalidate_topology_caches()

    @property
    def severed_links(self) -> FrozenSet[FrozenSet[Hashable]]:
        """The overlay links currently severed (as endpoint pairs)."""
        return frozenset(self._severed)

    @property
    def churn_dropped(self) -> int:
        """Transmissions dropped because an endpoint was offline or the
        overlay link between the endpoints was severed."""
        return self._churn_dropped

    # ------------------------------------------------------------------
    # Time and events
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(self._now + delay, action)

    def send(
        self,
        sender: Hashable,
        receiver: Hashable,
        message: Message,
        direct: bool = False,
    ) -> None:
        """Send ``message`` from ``sender`` to ``receiver``.

        Overlay sends (``direct=False``) require an edge between the two
        nodes; direct sends model out-of-band pairwise channels such as the
        DC-net group traffic and are allowed between any pair.

        Overlay sends are subject to the simulator's
        :class:`~repro.network.conditions.NetworkConditions`: with probability
        ``loss_probability`` the transmission is dropped (counted, never
        delivered, no observation recorded) and a uniform extra delay in
        ``[0, jitter]`` is added to every delivery.  Direct sends model
        reliable out-of-band channels and bypass both.
        """
        if receiver not in self._nodes:
            raise ValueError(f"receiver {receiver!r} is not registered")
        if not direct:
            adjacent = self._adjacency.get(sender)
            if adjacent is None:
                adjacent = self._adjacent_to(sender)
            if receiver not in adjacent:
                raise ValueError(
                    f"no overlay edge between {sender!r} and {receiver!r}"
                )
        offline = self._offline
        if offline and (sender in offline or receiver in offline):
            self._churn_dropped += 1
            return
        severed = self._severed
        if severed and not direct and frozenset((sender, receiver)) in severed:
            self._churn_dropped += 1
            return
        delay = self._delay(sender, receiver)
        if not direct:
            loss = self._loss_probability
            if loss > 0.0:
                # Draw counters live inside the already-conditional
                # branches, so lossless runs pay nothing for them.
                self._loss_draws += 1
                if self._link_rng.random() < loss:
                    self._dropped_total += 1
                    self._dropped_by_payload[message.payload_id] = (
                        self._dropped_by_payload.get(message.payload_id, 0) + 1
                    )
                    return
            jitter = self._jitter
            if jitter > 0.0:
                self._jitter_draws += 1
                delay += self._link_rng.uniform(0.0, jitter)
        # A delivery is data, not code: the run loop recognises the 4-tuple
        # and performs the observation + dispatch inline.
        self._push_item(
            self._now + delay, (receiver, sender, message, direct)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start_nodes(self) -> None:
        if self._started:
            return
        self._started = True
        for node_id in sorted(self._nodes, key=repr):
            self._nodes[node_id].on_start()

    def _resolve_kernel(self):
        """The cohort kernel for the current node population, or ``None``.

        Eligible only when every registered node is of exactly one type
        whose ``COHORT_KERNEL`` declares that same type as its
        ``node_type`` — subclasses may override behaviour the kernel
        hard-codes, so they do not inherit eligibility.  Cached until the
        population changes.
        """
        if self._kernel_resolved:
            return self._kernel
        self._kernel_resolved = True
        nodes = self._nodes
        if nodes:
            first_type = type(next(iter(nodes.values())))
            kernel_cls = getattr(first_type, "COHORT_KERNEL", None)
            if (
                kernel_cls is not None
                and kernel_cls.node_type is first_type
                and all(type(node) is first_type for node in nodes.values())
            ):
                self._kernel = kernel_cls(self)
        return self._kernel

    def _next_pending_time(self) -> Optional[float]:
        """Earliest pending time across the heap and the block buffer."""
        queue_time = self._queue.peek_time()
        block_time = (
            self._blocks.peek_time() if self._blocks is not None else None
        )
        if queue_time is None:
            return block_time
        if block_time is None:
            return queue_time
        return min(queue_time, block_time)

    def _note_fallback(self, reason: str) -> None:
        """Record why a run left its requested engine (see telemetry)."""
        self._fallback_reason = reason
        logger.debug(
            "engine %r falling back: %s", self._engine, reason
        )
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.fallback(reason)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation until the queue drains or a limit is hit.

        Args:
            until: stop once the next event would fire after this time.
            max_events: stop after executing this many events.

        Returns:
            The simulated time at which execution stopped.

        Clock semantics: when ``until`` is given and the run is not cut short
        by ``max_events``, the clock always ends at ``until`` — also when the
        event queue drains earlier.  Both exit paths therefore agree, and
        ``run(until=...)`` loops keep advancing through idle periods instead
        of spinning on a stuck clock.  A ``max_events`` exit leaves the clock
        at the last executed event.

        Engine note: under ``engine="batched"`` (with an eligible cohort
        kernel) the ``max_events`` cap is checked between cohorts, so a run
        may execute up to one cohort past the cap before stopping; ``until``
        semantics are identical on both engines.  Without an eligible
        kernel the batched engine runs this very loop.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._run_impl(until, max_events)
        # Telemetry accounting happens strictly at run boundaries: counter
        # snapshots before, deltas after.  Nothing below draws randomness
        # or touches the event stream, so digests are unaffected.
        store = self.store
        observed_before = len(store)
        churn_before = self._churn_dropped
        lost_before = self._dropped_total
        loss_draws_before = self._loss_draws
        jitter_draws_before = self._jitter_draws
        telemetry.gauge_max("live_events_peak", self.pending_events)
        with telemetry.span("simulator_run", engine=self._engine):
            end = self._run_impl(until, max_events)
        telemetry.incr("events_dispatched", self._last_executed)
        telemetry.incr("deliveries_recorded", len(store) - observed_before)
        telemetry.incr("churn_dropped", self._churn_dropped - churn_before)
        telemetry.incr("loss_dropped", self._dropped_total - lost_before)
        telemetry.incr("loss_draws", self._loss_draws - loss_draws_before)
        telemetry.incr(
            "jitter_draws", self._jitter_draws - jitter_draws_before
        )
        peak = self._queue.peak_live
        if peak is not None:
            telemetry.gauge_max("queue_depth_peak", peak)
        telemetry.sample_rss()
        return end

    def _run_impl(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Engine dispatch + the per-message event loop (see :meth:`run`)."""
        if self._engine == "batched":
            kernel = self._resolve_kernel()
            if kernel is not None:
                from repro.network.batched import run_batched

                self._engine_effective = "batched"
                return run_batched(self, kernel, until, max_events)
            self._engine_effective = "event"
            self._note_fallback("no cohort kernel (mixed or non-cohort node types)")
        elif self._engine == "sharded":
            kernel = self._resolve_kernel()
            if kernel is not None:
                from repro.network.batched import run_batched
                from repro.network.sharded import try_run_sharded

                end = try_run_sharded(self, kernel, until, max_events)
                if end is not None:
                    self._engine_effective = "sharded"
                    return end
                # Configuration not splittable (randomness, timers, ...):
                # same cohorts, one process — still seed-for-seed identical.
                # try_run_sharded recorded the ineligibility reason.
                self._engine_effective = "batched"
                return run_batched(self, kernel, until, max_events)
            self._engine_effective = "event"
            self._note_fallback("no cohort kernel (mixed or non-cohort node types)")
        self._start_nodes()
        executed = 0
        event_cap = float("inf") if max_events is None else max_events
        hit_event_limit = False
        queue = self._queue
        pop_item_until = queue.pop_item_until
        nodes = self._nodes
        record = self._record
        # The offline/severed sets are mutated in place (never rebound), so
        # these locals stay current; while empty — the common case — each
        # delivery pays only one falsy check per set for churn support.
        offline = self._offline
        severed = self._severed
        while True:
            if executed >= event_cap:
                # Only counts as hitting the limit if something within the
                # time bound was actually still due.
                next_time = queue.peek_time()
                hit_event_limit = next_time is not None and (
                    until is None or next_time <= until
                )
                break
            entry = pop_item_until(until)
            if entry is None:
                break
            time, item = entry
            if time > self._now:
                self._now = time
            if item.__class__ is tuple:
                receiver, sender, message, direct = item
                if offline and receiver in offline:
                    # In flight when the receiver went down: dropped, never
                    # observed — a crashed node records nothing.
                    self._churn_dropped += 1
                    executed += 1
                    continue
                if (
                    severed
                    and not direct
                    and frozenset((sender, receiver)) in severed
                ):
                    # In flight when the link went down: the transmission
                    # dies on the wire, exactly like node churn.
                    self._churn_dropped += 1
                    executed += 1
                    continue
                record(
                    Observation(self._now, receiver, sender, message, direct)
                )
                nodes[receiver].on_message(sender, message)
            else:
                item()
            executed += 1
        self._last_executed = executed
        if until is not None and not hit_event_limit:
            self._now = max(self._now, until)
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain.

        ``max_events`` is a safety valve against non-quiescing simulations,
        not a soft cap: if it trips with work still pending, a
        ``RuntimeError`` naming the engine is raised instead of silently
        returning a half-finished run.
        """
        end = self.run(max_events=max_events)
        pending = self.pending_events
        if pending:
            raise RuntimeError(
                f"run_until_idle stopped at max_events={max_events} with "
                f"{pending} event(s) still pending on the "
                f"{self._engine!r} engine; the simulation is not quiescing "
                f"(raise max_events or drive it with run(until=...))"
            )
        return end

    @property
    def pending_events(self) -> int:
        """Number of events still due to fire.

        Cancelled events are excluded immediately, so a ``pending_events ==
        0`` check means the simulation is genuinely idle — timers that were
        cancelled no longer keep runner loops spinning.  On the batched
        engine this includes deliveries buffered in cohort blocks, which
        live outside the heap; both engines therefore agree on idleness.
        """
        pending = len(self._queue)
        if self._blocks is not None:
            pending += len(self._blocks)
        return pending

    # ------------------------------------------------------------------
    # Message-loss accounting
    # ------------------------------------------------------------------
    @property
    def dropped_messages(self) -> int:
        """Total overlay transmissions lost to the conditions' link loss."""
        return self._dropped_total

    def dropped_count(self, payload_id: Hashable) -> int:
        """Transmissions of one payload lost to link loss."""
        return self._dropped_by_payload.get(payload_id, 0)

    # ------------------------------------------------------------------
    # Convenience queries used by experiments
    # ------------------------------------------------------------------
    @property
    def observations(self) -> List[Observation]:
        """A copy of the chronological delivery log.

        Prefer the indexed queries on :attr:`store` (or :attr:`metrics`) for
        anything payload-, kind- or receiver-scoped, and
        :meth:`iter_observations` for read-only full scans; this property
        exists for code that genuinely wants an independent list.
        """
        return self.store.observations

    def iter_observations(self) -> Iterator[Observation]:
        """Lazily iterate the chronological delivery log without copying.

        The view is read-only and live: observations recorded while the
        iterator is being consumed will be yielded too (the log is
        append-only, so already-yielded entries never change).
        """
        return self.store.iter_observations()

    def delivered_fraction(self, payload_id: Hashable) -> float:
        """Fraction of overlay nodes that obtained the payload."""
        return self.metrics.reach(payload_id) / self.graph.number_of_nodes()

    def undelivered_nodes(self, payload_id: Hashable) -> List[Hashable]:
        """Nodes that never obtained the payload."""
        delivered = set(self.metrics.delivered_nodes(payload_id))
        return [node for node in self.graph.nodes if node not in delivered]

    def observations_for(
        self, observers: Iterable[Hashable]
    ) -> List[Observation]:
        """Observations available to an honest-but-curious observer set.

        Only deliveries *received by* one of the observers are visible; this
        is exactly the information a botnet of passive nodes collects.
        Served from the store's per-receiver index in O(result).
        """
        return self.store.for_receivers(observers)
