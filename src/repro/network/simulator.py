"""The deterministic discrete-event network simulator.

The simulator owns the overlay graph, the clock, the latency model and the
metrics.  Protocol behaviour lives entirely in :class:`~repro.network.node.Node`
subclasses; the simulator's job is to deliver their messages after the
latency-model delay and to record every delivery as an
:class:`~repro.network.message.Observation` in the indexed
:class:`~repro.network.observation_store.ObservationStore` so adversaries and
benchmarks can analyse the run afterwards without scanning the full log.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Iterable, List, Optional

import networkx as nx

from repro.network.conditions import NetworkConditions
from repro.network.events import Event, EventQueue
from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message, Observation
from repro.network.metrics import MetricsCollector
from repro.network.node import Node
from repro.network.observation_store import ObservationStore


class Simulator:
    """Discrete-event simulation of a peer-to-peer overlay.

    Example:
        >>> import networkx as nx
        >>> from repro.network import Simulator
        >>> sim = Simulator(nx.path_graph(3), seed=1)

    Args:
        graph: the overlay topology; node ids become simulator node ids.
        latency: link latency model; defaults to one time unit per hop, or to
            the conditions' latency when ``conditions`` is given.
        seed: seed of the simulator's RNG (used by protocols for coin flips).
        conditions: shared network conditions.  Message loss and jitter are
            applied to every overlay send; randomness for both comes from a
            dedicated stream (derived from ``seed``), so lossless conditions
            leave protocol RNG consumption untouched.
    """

    def __init__(
        self,
        graph: nx.Graph,
        latency: Optional[LatencyModel] = None,
        seed: Optional[int] = None,
        conditions: Optional[NetworkConditions] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("the overlay graph must not be empty")
        self.graph = graph
        if latency is not None:
            self.latency = latency
        elif conditions is not None:
            self.latency = conditions.build_latency(
                random.Random(None if seed is None else seed + 1)
            )
        else:
            self.latency = ConstantLatency(1.0)
        self.conditions = (
            conditions
            if conditions is not None
            else NetworkConditions(latency=self.latency)
        )
        self.rng = random.Random(seed)
        # Dedicated stream for loss/jitter draws: keeping it separate from
        # ``self.rng`` means enabling loss never perturbs protocol coin flips
        # and (since it is only consumed when loss/jitter are non-zero)
        # lossless runs stay draw-for-draw identical to pre-conditions runs.
        self._link_rng = random.Random(
            None if seed is None else seed + 0x5EED
        )
        self.store = ObservationStore()
        self.metrics = MetricsCollector(store=self.store)
        self._queue = EventQueue()
        self._nodes: Dict[Hashable, Node] = {}
        self._now = 0.0
        self._started = False
        self._neighbour_cache: Dict[Hashable, List[Hashable]] = {}
        self._dropped_total = 0
        self._dropped_by_payload: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node behaviour for an existing graph vertex."""
        if node.node_id not in self.graph:
            raise ValueError(f"node {node.node_id!r} is not part of the overlay")
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} is already registered")
        node.attach(self)
        self._nodes[node.node_id] = node
        return node

    def populate(self, factory: Callable[[Hashable], Node]) -> None:
        """Create one node behaviour per graph vertex using ``factory``."""
        for node_id in sorted(self.graph.nodes, key=repr):
            if node_id not in self._nodes:
                self.add_node(factory(node_id))

    def node(self, node_id: Hashable) -> Node:
        """Return the behaviour registered for ``node_id``."""
        return self._nodes[node_id]

    @property
    def nodes(self) -> Dict[Hashable, Node]:
        """Mapping of node id to registered behaviour."""
        return dict(self._nodes)

    def neighbours_of(self, node_id: Hashable) -> List[Hashable]:
        """Overlay neighbours of ``node_id`` in deterministic order."""
        if node_id not in self._neighbour_cache:
            self._neighbour_cache[node_id] = sorted(
                self.graph.neighbors(node_id), key=repr
            )
        return list(self._neighbour_cache[node_id])

    # ------------------------------------------------------------------
    # Time and events
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(self._now + delay, action)

    def send(
        self,
        sender: Hashable,
        receiver: Hashable,
        message: Message,
        direct: bool = False,
    ) -> None:
        """Send ``message`` from ``sender`` to ``receiver``.

        Overlay sends (``direct=False``) require an edge between the two
        nodes; direct sends model out-of-band pairwise channels such as the
        DC-net group traffic and are allowed between any pair.

        Overlay sends are subject to the simulator's
        :class:`~repro.network.conditions.NetworkConditions`: with probability
        ``loss_probability`` the transmission is dropped (counted, never
        delivered, no observation recorded) and a uniform extra delay in
        ``[0, jitter]`` is added to every delivery.  Direct sends model
        reliable out-of-band channels and bypass both.
        """
        if receiver not in self._nodes:
            raise ValueError(f"receiver {receiver!r} is not registered")
        if not direct and not self.graph.has_edge(sender, receiver):
            raise ValueError(
                f"no overlay edge between {sender!r} and {receiver!r}"
            )
        delay = self.latency.delay(sender, receiver)
        if not direct:
            conditions = self.conditions
            if (
                conditions.loss_probability > 0.0
                and self._link_rng.random() < conditions.loss_probability
            ):
                self._dropped_total += 1
                self._dropped_by_payload[message.payload_id] = (
                    self._dropped_by_payload.get(message.payload_id, 0) + 1
                )
                return
            if conditions.jitter > 0.0:
                delay += self._link_rng.uniform(0.0, conditions.jitter)

        def deliver() -> None:
            observation = Observation(
                time=self._now,
                receiver=receiver,
                sender=sender,
                message=message,
                direct=direct,
            )
            self.metrics.record_send(observation)
            self._nodes[receiver].on_message(sender, message)

        self._queue.push(self._now + delay, deliver)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start_nodes(self) -> None:
        if self._started:
            return
        self._started = True
        for node_id in sorted(self._nodes, key=repr):
            self._nodes[node_id].on_start()

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation until the queue drains or a limit is hit.

        Args:
            until: stop once the next event would fire after this time.
            max_events: stop after executing this many events.

        Returns:
            The simulated time at which execution stopped.

        Clock semantics: when ``until`` is given and the run is not cut short
        by ``max_events``, the clock always ends at ``until`` — also when the
        event queue drains earlier.  Both exit paths therefore agree, and
        ``run(until=...)`` loops keep advancing through idle periods instead
        of spinning on a stuck clock.  A ``max_events`` exit leaves the clock
        at the last executed event.
        """
        self._start_nodes()
        executed = 0
        hit_event_limit = False
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and executed >= max_events:
                hit_event_limit = True
                break
            event = self._queue.pop()
            if event is None:
                break
            self._now = max(self._now, event.time)
            event.action()
            executed += 1
        if until is not None and not hit_event_limit:
            self._now = max(self._now, until)
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (with a generous safety valve)."""
        return self.run(max_events=max_events)

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled events may be counted)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Message-loss accounting
    # ------------------------------------------------------------------
    @property
    def dropped_messages(self) -> int:
        """Total overlay transmissions lost to the conditions' link loss."""
        return self._dropped_total

    def dropped_count(self, payload_id: Hashable) -> int:
        """Transmissions of one payload lost to link loss."""
        return self._dropped_by_payload.get(payload_id, 0)

    # ------------------------------------------------------------------
    # Convenience queries used by experiments
    # ------------------------------------------------------------------
    @property
    def observations(self) -> List[Observation]:
        """A copy of the chronological delivery log.

        Prefer the indexed queries on :attr:`store` (or :attr:`metrics`) for
        anything payload-, kind- or receiver-scoped; this property exists for
        code that genuinely wants the whole log.
        """
        return self.store.observations

    def delivered_fraction(self, payload_id: Hashable) -> float:
        """Fraction of overlay nodes that obtained the payload."""
        return self.metrics.reach(payload_id) / self.graph.number_of_nodes()

    def undelivered_nodes(self, payload_id: Hashable) -> List[Hashable]:
        """Nodes that never obtained the payload."""
        delivered = set(self.metrics.delivered_nodes(payload_id))
        return [node for node in self.graph.nodes if node not in delivered]

    def observations_for(
        self, observers: Iterable[Hashable]
    ) -> List[Observation]:
        """Observations available to an honest-but-curious observer set.

        Only deliveries *received by* one of the observers are visible; this
        is exactly the information a botnet of passive nodes collects.
        Served from the store's per-receiver index in O(result).
        """
        return self.store.for_receivers(observers)
