"""Event queue of the discrete-event simulator.

Events are ordered by simulated time, with a monotonically increasing
sequence number as a tie-breaker so that events scheduled earlier run earlier
when timestamps collide.  This makes simulations fully deterministic.

The queue is the hottest data structure of the whole library, so it is built
for allocation economy: heap entries are plain ``(time, sequence, item)``
tuples (one small tuple per entry instead of an order-compared dataclass),
and only :meth:`EventQueue.push` — the cancellable path used by
``Simulator.schedule`` — allocates an :class:`Event` handle.  The
simulator's message deliveries go through :meth:`EventQueue.push_item`,
which stores an arbitrary payload with no per-event handle at all; the
simulator's run loop dispatches on the payload type.  Because sequence
numbers are unique, tuple comparison never reaches the third element, so
payloads need not be comparable.

The queue also keeps an exact *live* count: :func:`len` reports only events
that are still going to fire.  Cancelled events are excluded immediately at
:meth:`Event.cancel` time (and lazily removed from the heap), which is what
makes ``Simulator.pending_events`` trustworthy for the "is the simulation
idle?" checks in the protocol runners.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional, Tuple


class Event:
    """A cancellation handle for one scheduled callback.

    Attributes:
        time: simulated time at which the event fires.
        sequence: insertion order, used as a deterministic tie-breaker.
        action: zero-argument callable executed when the event fires.
        cancelled: a cancelled event is skipped by the queue.
    """

    __slots__ = ("time", "sequence", "action", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        action: Callable[[], None],
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be silently skipped.

        Cancelling is idempotent, and cancelling an event that already fired
        (or was already cancelled) does not disturb the owning queue's live
        count.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, sequence={self.sequence!r}, "
            f"cancelled={self.cancelled!r})"
        )


class EventQueue:
    """A deterministic priority queue of scheduled items.

    Two write paths share one heap:

    * :meth:`push` returns an :class:`Event` handle that can be cancelled —
      this is what ``Simulator.schedule`` (protocol timers) uses;
    * :meth:`push_item` stores an opaque payload without allocating a
      handle — the simulator's delivery fast path.

    ``len(queue)`` is the number of events that will still fire (cancelled
    entries are excluded the moment they are cancelled).
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._live = 0
        self._next_sequence = count().__next__
        self._seq_counter: Optional[int] = None
        #: Peak live-entry count; ``None`` until
        #: :meth:`enable_depth_tracking` opts this queue in.
        self.peak_live: Optional[int] = None

    # ------------------------------------------------------------------
    # Sequence reservation (batched engine)
    # ------------------------------------------------------------------
    def _take_sequence(self) -> int:
        value = self._seq_counter
        self._seq_counter = value + 1
        return value

    def enable_sequence_reservation(self) -> None:
        """Switch to an int counter that supports block reservation.

        The batched delivery engine interleaves heap entries with
        struct-of-arrays cohort blocks that each occupy a contiguous *range*
        of sequence numbers (:meth:`reserve_sequences`), so both must draw
        from one shared counter.  ``itertools.count`` cannot jump, hence the
        switch; the default engine keeps the slightly faster C counter.
        Must be called before anything is pushed.
        """
        if self._heap:
            raise RuntimeError(
                "sequence reservation must be enabled on an empty queue"
            )
        self._seq_counter = 0
        self._next_sequence = self._take_sequence

    def reserve_sequences(self, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers; return the first.

        Only valid after :meth:`enable_sequence_reservation`.  Reserved
        numbers order a delivery block's entries against heap entries
        exactly as if each had been pushed individually.
        """
        if self._seq_counter is None:
            raise RuntimeError(
                "reserve_sequences requires enable_sequence_reservation()"
            )
        value = self._seq_counter
        self._seq_counter = value + count
        return value

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at simulated ``time`` and return its handle."""
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        event = Event(time, self._next_sequence(), action, self)
        heapq.heappush(self._heap, (time, event.sequence, event))
        self._live += 1
        return event

    def push_item(self, time: float, item: Any) -> None:
        """Schedule an opaque, non-cancellable ``item`` at ``time``.

        The fast path of the simulator: one tuple on the heap, no handle.
        The caller of :meth:`pop_item` is responsible for knowing what the
        payload means.
        """
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        heapq.heappush(self._heap, (time, self._next_sequence(), item))
        self._live += 1

    def enable_depth_tracking(self) -> None:
        """Track the peak number of live entries (telemetry opt-in).

        Shadows :meth:`push`/:meth:`push_item` with counting wrappers on
        this instance, so queues without tracking — the default — pay
        nothing.  The peak is exposed as :attr:`peak_live`.
        """
        self.peak_live = self._live
        self.push = self._tracked_push  # type: ignore[method-assign]
        self.push_item = self._tracked_push_item  # type: ignore[method-assign]

    def _tracked_push(self, time: float, action: Callable[[], None]) -> Event:
        event = EventQueue.push(self, time, action)
        if self._live > self.peak_live:
            self.peak_live = self._live
        return event

    def _tracked_push_item(self, time: float, item: Any) -> None:
        EventQueue.push_item(self, time, item)
        if self._live > self.peak_live:
            self.peak_live = self._live

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event's handle, or ``None``.

        Items stored through :meth:`push_item` are returned wrapped in a
        fresh (already-detached) handle so the legacy ``pop().action()``
        idiom keeps working for callable payloads.
        """
        entry = self._pop_live()
        if entry is None:
            return None
        time, sequence, item = entry
        if item.__class__ is Event:
            return item
        return Event(time, sequence, item)

    def pop_item(self) -> Optional[Tuple[float, Any]]:
        """Remove and return ``(time, payload)`` of the next live entry.

        For entries made by :meth:`push`, the payload is the event's
        ``action`` callable; for :meth:`push_item` entries it is the stored
        item, verbatim.  Returns ``None`` when nothing live remains.
        """
        entry = self._pop_live()
        if entry is None:
            return None
        time, _, item = entry
        if item.__class__ is Event:
            return time, item.action
        return time, item

    def pop_item_until(
        self, limit: Optional[float]
    ) -> Optional[Tuple[float, Any]]:
        """Like :meth:`pop_item`, but leave entries after ``limit`` queued.

        Returns ``None`` when the queue has no live entry at time ``<=
        limit`` (with ``limit=None`` meaning "no bound").  This fuses the
        peek-then-pop pair of the simulator's run loop into one heap
        inspection per event.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            item = head[2]
            if item.__class__ is Event:
                if item.cancelled:
                    heapq.heappop(heap)
                    continue
                if limit is not None and head[0] > limit:
                    return None
                heapq.heappop(heap)
                item._queue = None
                self._live -= 1
                return head[0], item.action
            if limit is not None and head[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return head[0], item
        return None

    def peek_entry(self) -> Optional[tuple]:
        """The next live ``(time, sequence, item)`` entry, without popping.

        The batched engine merges heap entries with its delivery blocks by
        ``(time, sequence)``, so unlike :meth:`peek_time` it needs the
        sequence number too.  ``item`` is the raw stored payload — an
        :class:`Event` for :meth:`push` entries.  Cancelled events are
        discarded on the way.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            item = head[2]
            if item.__class__ is Event and item.cancelled:
                heapq.heappop(heap)
                continue
            return head
        return None

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the next live ``(time, sequence, item)`` entry.

        The raw-payload counterpart of :meth:`pop_item` (``push`` entries
        come back as their :class:`Event`, already detached); used by the
        batched engine, whose dispatch wants the sequence number.
        """
        return self._pop_live()

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event without removing it."""
        heap = self._heap
        while heap:
            head = heap[0]
            item = head[2]
            if item.__class__ is Event and item.cancelled:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

    def _pop_live(self) -> Optional[tuple]:
        """Pop the next non-cancelled heap entry, maintaining the live count."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            item = entry[2]
            if item.__class__ is Event:
                if item.cancelled:
                    continue
                # Detach so a late cancel() cannot decrement the live count
                # for an event that already fired.
                item._queue = None
            self._live -= 1
            return entry
        return None
