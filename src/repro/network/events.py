"""Event queue of the discrete-event simulator.

Events are ordered by simulated time, with a monotonically increasing
sequence number as a tie-breaker so that events scheduled earlier run earlier
when timestamps collide.  This makes simulations fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time at which the event fires.
        sequence: insertion order, used as a deterministic tie-breaker.
        action: zero-argument callable executed when the event fires.
        cancelled: a cancelled event is skipped by the queue.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be silently skipped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at simulated ``time`` and return the event."""
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        event = Event(time=time, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
