"""Struct-of-arrays machinery of the batched delivery engine.

The event engine (``Simulator.run``'s default loop) pays Python dispatch per
delivered message: one heap pop, one ``Observation``, one ``on_message``
call.  That is invisible at 200 nodes and dominant at 100,000.  The batched
engine keeps the exact same observable behaviour but processes all
deliveries that share a timestamp — a *cohort* — as numpy arrays:

* :class:`CSRTopology` — the overlay as an int-indexed CSR adjacency.
  Node indices are assigned in global ``repr`` order, so each CSR row
  (stored sorted by index) enumerates neighbours in exactly the order
  ``Simulator.neighbours_of`` does.  Built once per topology-cache
  generation and cached on the graph itself, so repeated simulator
  constructions over one overlay (the benchmark repeat loop) share it.
* :class:`DeliveryBlock` / :class:`BlockBuffer` — kernel-emitted fan-outs
  are kept as same-time struct-of-arrays blocks in a side heap instead of
  being exploded into per-message heap tuples.  Blocks reserve contiguous
  sequence ranges from the shared :class:`~repro.network.events.EventQueue`
  counter, so merging blocks with ordinary heap entries by ``(time, first
  sequence)`` reproduces the event engine's total order exactly.
* :class:`CohortKernel` — the per-protocol cohort processor: vectorised
  churn filtering (offline/severed masks as boolean arrays, drops counted
  in ``churn_dropped``), one :meth:`ObservationStore.record_batch` append
  per run, first-reception detection via ``np.unique``, and a fan-out hook
  implemented per protocol (``FloodCohortKernel`` in
  :mod:`repro.broadcast.flood`, ``GossipCohortKernel`` in
  :mod:`repro.broadcast.gossip`).

Determinism contract.  The batched engine must be seed-for-seed identical
to the event engine (same observation log, same drop counters).  That holds
because every random stream is consumed in the same per-stream order: the
latency model's RNG per forward in send order, the dedicated link RNG
(loss, then jitter) per overlay send in send order, and ``Simulator.rng``
(gossip peer sampling) per freshly-infected node in processing order.  The
streams are separate ``random.Random`` instances, so reordering draws
*across* streams — the kernel runs the delay loop and the loss/jitter loop
separately — cannot change any individual stream's values.  Sequence
numbers come out numerically identical too, because pushes and block
reservations happen in the same global order as the event engine's pushes.

Constraints: the node set must not change while deliveries are in flight
(blocks address nodes by CSR index; the index assignment is stable because
it is recomputed in ``repr`` order), and latency models must be strictly
positive (they are — enforced at construction), so a cohort's records all
land before any of its fan-out deliveries.
"""

from __future__ import annotations

import heapq
import logging
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.network.events import Event
from repro.network.message import Observation

logger = logging.getLogger(__name__)

#: Key under which the CSR adjacency is cached in ``graph.graph``.  The
#: simulator pops it in ``invalidate_topology_caches`` (by the same literal,
#: to keep the event-engine module numpy-free).
CSR_CACHE_KEY = "repro_csr_topology"


class CSRTopology:
    """The overlay graph as an int-indexed CSR adjacency.

    Indices are assigned in global ``repr`` order of the node ids, which
    makes each integer-sorted CSR row automatically enumerate a node's
    neighbours in ``Simulator.neighbours_of`` order — no per-row reorder
    step is needed.
    """

    __slots__ = ("n", "n_edges", "ids", "ids_array", "index", "indptr", "indices")

    def __init__(self, graph) -> None:
        ids = sorted(graph.nodes, key=repr)
        n = len(ids)
        self.n = n
        self.ids: List[Hashable] = ids
        self.index: Dict[Hashable, int] = {
            node_id: i for i, node_id in enumerate(ids)
        }
        # dtype=object so fancy-indexing yields the original Python node ids
        # (an int dtype would leak numpy scalars into Observations and change
        # every repr-based digest).
        ids_array = np.empty(n, dtype=object)
        ids_array[:] = ids
        self.ids_array = ids_array

        m = graph.number_of_edges()
        self.n_edges = m
        heads = np.empty(2 * m, dtype=np.int64)
        tails = np.empty(2 * m, dtype=np.int64)
        index = self.index
        pos = 0
        for a, b in graph.edges():
            ia = index[a]
            ib = index[b]
            heads[pos] = ia
            tails[pos] = ib
            heads[pos + 1] = ib
            tails[pos + 1] = ia
            pos += 2
        order = np.lexsort((tails, heads))
        counts = np.bincount(heads, minlength=n)
        self.indices = tails[order]
        self.indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
        )

    def row(self, node_index: int) -> np.ndarray:
        """The neighbour indices of one node (a read-only view)."""
        return self.indices[self.indptr[node_index]:self.indptr[node_index + 1]]


def csr_topology(graph) -> CSRTopology:
    """The graph's cached CSR adjacency, rebuilt when the graph changed.

    The cache lives on ``graph.graph`` so that every simulator constructed
    over the same overlay object (e.g. the benchmark repeat loop) shares one
    build.  It is validated against the node/edge counts and popped by
    ``Simulator.invalidate_topology_caches`` — mutations that keep both
    counts identical must go through that invalidation hook, exactly as they
    already must for the event engine's neighbour caches.
    """
    cached = graph.graph.get(CSR_CACHE_KEY)
    if (
        cached is not None
        and cached.n == graph.number_of_nodes()
        and cached.n_edges == graph.number_of_edges()
    ):
        return cached
    topology = CSRTopology(graph)
    graph.graph[CSR_CACHE_KEY] = topology
    return topology


class DeliveryBlock:
    """One same-time run of kernel-generated deliveries, kept as arrays."""

    __slots__ = ("receivers", "senders", "messages", "sizes", "payload_id", "size")

    def __init__(
        self,
        receivers: np.ndarray,
        senders: np.ndarray,
        messages: np.ndarray,
        sizes: np.ndarray,
        payload_id: Hashable,
    ) -> None:
        self.receivers = receivers
        self.senders = senders
        self.messages = messages
        self.sizes = sizes
        self.payload_id = payload_id
        self.size = len(receivers)


class BlockBuffer:
    """A heap of :class:`DeliveryBlock` entries ordered by (time, seq).

    The batched counterpart of the event queue's delivery tuples: each entry
    is ``(time, first reserved sequence, block)``.  First sequences are
    unique (reserved ranges are disjoint), so heap comparison never reaches
    the block.  ``len`` counts pending *deliveries*, not blocks, which keeps
    ``Simulator.pending_events`` meaning "messages still in flight".
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, DeliveryBlock]] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, seq0: int, block: DeliveryBlock) -> None:
        heapq.heappush(self._heap, (time, seq0, block))
        self._live += block.size

    def peek(self) -> Optional[Tuple[float, int, DeliveryBlock]]:
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[float, int, DeliveryBlock]:
        entry = heapq.heappop(self._heap)
        self._live -= entry[2].size
        return entry


class CohortKernel:
    """Base class of the per-protocol cohort processors.

    A protocol opts into the batched engine by setting a ``COHORT_KERNEL``
    class attribute on its node class, pointing at a subclass of this that
    declares ``node_type`` (the exact node class — subclasses do not
    inherit eligibility, their behaviour may differ) and ``kind`` (the wire
    message kind the kernel understands).  Subclasses implement the
    per-fresh-node state hooks and :meth:`_fan_out`.
    """

    #: The exact node class this kernel vectorises (identity-checked).
    node_type: type = None
    #: The message kind the kernel processes; anything else falls back to
    #: per-item processing.
    kind: str = ""
    #: Whether the kernel consumes no randomness at all while processing
    #: cohorts — no protocol coin flips, no per-node sampling.  A shared
    #: RNG stream cannot be split across processes without changing its
    #: draw order, so only ``rng_free`` kernels are eligible for the
    #: sharded engine's multi-process path (:mod:`repro.network.sharded`);
    #: everything else falls back in-process.
    rng_free: bool = False
    #: Shape of the kernel's fan-out, for kernels whose forwarding rule is
    #: simple enough that a shard worker can run it without node objects.
    #: ``"exclude_sender"`` = forward to every neighbour except the
    #: delivering sender (flood); ``None`` (the default) means the fan-out
    #: needs the kernel itself, disqualifying the multi-process path.
    shard_fanout: Optional[str] = None

    def __init__(self, simulator) -> None:
        self.simulator = simulator
        self._topology: Optional[CSRTopology] = None
        self._generation = -1
        self._seen: Dict[Hashable, np.ndarray] = {}
        self._online: Optional[np.ndarray] = None
        self._edge_ok: Optional[np.ndarray] = None
        self._has_churn = False
        self._constant_delay = simulator.latency.constant_delay()

    # ------------------------------------------------------------------
    # Topology / churn masks
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild the CSR view and churn masks after a cache invalidation."""
        simulator = self.simulator
        generation = simulator._topology_generation
        if self._generation == generation and self._topology is not None:
            return
        topology = csr_topology(simulator.graph)
        logger.debug(
            "cohort kernel refreshed CSR view: generation %d, %d nodes",
            generation,
            topology.n,
        )
        self._topology = topology
        offline = simulator._offline
        severed = simulator._severed
        if offline or severed:
            online = np.ones(topology.n, dtype=bool)
            index = topology.index
            for node_id in offline:
                i = index.get(node_id)
                if i is not None:
                    online[i] = False
            edge_ok = np.ones(len(topology.indices), dtype=bool)
            for link in severed:
                endpoints = tuple(link)
                if len(endpoints) == 2:
                    self._mark_edge(topology, edge_ok, *endpoints)
            self._online = online
            self._edge_ok = edge_ok
            self._has_churn = True
        else:
            self._online = None
            self._edge_ok = None
            self._has_churn = False
        self._generation = generation

    @property
    def index(self) -> Dict[Hashable, int]:
        return self._topology.index

    @staticmethod
    def _mark_edge(
        topology: CSRTopology, edge_ok: np.ndarray, a: Hashable, b: Hashable
    ) -> None:
        """Mark both CSR directions of a severed link as unusable."""
        index = topology.index
        indptr = topology.indptr
        indices = topology.indices
        for source, target in ((a, b), (b, a)):
            i = index.get(source)
            j = index.get(target)
            if i is None or j is None:
                continue
            lo = indptr[i]
            hi = indptr[i + 1]
            pos = lo + np.searchsorted(indices[lo:hi], j)
            if pos < hi and indices[pos] == j:
                edge_ok[pos] = False

    # ------------------------------------------------------------------
    # Per-protocol hooks
    # ------------------------------------------------------------------
    def _node_has_seen(self, node, payload_id: Hashable) -> bool:
        """Whether the node already processed the payload out of band.

        Consulted only for array-level first receptions, so originators
        (and nodes served per-item while a first-observation hook was
        pending) never fresh-process a payload twice.
        """
        raise NotImplementedError

    def _mark_node_seen(self, node, payload_id: Hashable) -> None:
        """Mirror a fresh reception into the node's own state."""
        raise NotImplementedError

    def prior_seen_ids(self, payload_id: Hashable):
        """Node ids that already hold ``payload_id``, or ``None``.

        The sharded engine's replacement for consulting every candidate
        node's state through :meth:`_node_has_seen`: a kernel whose node
        state is exactly mirrored by the metrics' delivery index (flood's
        ``_seen`` is written iff ``mark_delivered`` runs) returns that
        index's id set, letting worker processes seed a bitmap once per
        run instead of calling back into Python per candidate.  ``None``
        means no such mirror exists and the config is ineligible for the
        multi-process path.
        """
        return None

    def shard_node_sizes(self) -> Optional[np.ndarray]:
        """Per-node payload sizes in CSR index order, or ``None``.

        Shard workers build forwarded messages' byte sizes from this array
        instead of touching node objects (``node_sizes[forwarder]`` must
        equal the ``size_bytes`` the node would put on the wire).  ``None``
        (the default) disqualifies the multi-process path.
        """
        return None

    def _fan_out(
        self,
        time: float,
        fresh_receivers: np.ndarray,
        fresh_exclude: np.ndarray,
        payload_id: Hashable,
    ) -> None:
        """Forward a payload from every freshly-infected node."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cohort processing
    # ------------------------------------------------------------------
    def process_run(
        self,
        time: float,
        recv_idx: np.ndarray,
        send_idx: np.ndarray,
        messages: np.ndarray,
        sizes: np.ndarray,
        payload_id: Hashable,
    ) -> int:
        """Process one same-time, same-payload run of deliveries.

        Returns the number of deliveries consumed (including churn drops),
        which is what the run loop counts against ``max_events``.
        """
        simulator = self.simulator
        total = len(recv_idx)
        if self._has_churn:
            # In-flight drops, exactly as the event engine applies them at
            # delivery time: offline receiver first, then severed link.
            keep = self._online[recv_idx]
            severed = simulator._severed
            if severed:
                ids = self._topology.ids
                for pos in np.flatnonzero(keep).tolist():
                    link = frozenset(
                        (ids[send_idx[pos]], ids[recv_idx[pos]])
                    )
                    if link in severed:
                        keep[pos] = False
            kept = int(keep.sum())
            if kept != total:
                simulator._churn_dropped += total - kept
                if kept == 0:
                    return total
                recv_idx = recv_idx[keep]
                send_idx = send_idx[keep]
                messages = messages[keep]
                sizes = sizes[keep]

        topology = self._topology
        ids_array = topology.ids_array
        simulator.store.record_batch(
            time,
            ids_array[recv_idx],
            ids_array[send_idx],
            messages,
            payload_id,
            self.kind,
            int(sizes.sum()),
        )

        seen = self._seen.get(payload_id)
        if seen is None:
            seen = np.zeros(topology.n, dtype=bool)
            self._seen[payload_id] = seen
        unique, first_pos = np.unique(recv_idx, return_index=True)
        mask = ~seen[unique]
        if not mask.any():
            return total
        candidates = np.sort(first_pos[mask])

        nodes = simulator._nodes
        ids = topology.ids
        fresh_positions: List[int] = []
        fresh_ids: List[Hashable] = []
        for pos, r in zip(
            candidates.tolist(), recv_idx[candidates].tolist()
        ):
            node = nodes[ids[r]]
            seen[r] = True
            if self._node_has_seen(node, payload_id):
                continue
            self._mark_node_seen(node, payload_id)
            fresh_positions.append(pos)
            fresh_ids.append(ids[r])
        if not fresh_positions:
            return total
        simulator.metrics.record_delivery_batch(payload_id, time, fresh_ids)
        fresh = np.asarray(fresh_positions, dtype=np.int64)
        self._fan_out(time, recv_idx[fresh], send_idx[fresh], payload_id)
        return total

    def _emit(
        self,
        time: float,
        send_idx: np.ndarray,
        tgt_idx: np.ndarray,
        messages: np.ndarray,
        sizes: np.ndarray,
        payload_id: Hashable,
    ) -> None:
        """Apply latency/loss/jitter in send order and buffer the blocks.

        Mirrors ``Simulator.send`` per message: the latency model is
        consumed per forward in send order; the dedicated link stream draws
        loss first, then jitter, per overlay send.  The streams are
        independent RNGs, so running them as two separate loops keeps each
        stream's draw sequence identical to the event engine's.
        """
        simulator = self.simulator
        total = len(tgt_idx)
        if total == 0:
            return
        constant = self._constant_delay
        loss = simulator._loss_probability
        jitter = simulator._jitter
        if constant is not None and loss == 0.0 and jitter == 0.0:
            # Hot path: one block, one reservation, zero RNG draws.
            seq0 = simulator._queue.reserve_sequences(total)
            simulator._blocks.push(
                time + constant,
                seq0,
                DeliveryBlock(tgt_idx, send_idx, messages, sizes, payload_id),
            )
            return

        ids = self._topology.ids
        if constant is not None:
            delays = np.full(total, constant, dtype=np.float64)
        else:
            delay = simulator._delay
            delays = np.fromiter(
                (
                    delay(ids[s], ids[t])
                    for s, t in zip(send_idx.tolist(), tgt_idx.tolist())
                ),
                dtype=np.float64,
                count=total,
            )
        if loss > 0.0 or jitter > 0.0:
            link = simulator._link_rng
            keep = np.ones(total, dtype=bool)
            dropped = 0
            for i in range(total):
                if loss > 0.0 and link.random() < loss:
                    keep[i] = False
                    dropped += 1
                elif jitter > 0.0:
                    delays[i] += link.uniform(0.0, jitter)
            # Telemetry draw counters, bulk-updated to mirror the event
            # engine exactly: loss draws once per overlay send, jitter
            # only for transmissions that survived the loss filter.
            if loss > 0.0:
                simulator._loss_draws += total
            if jitter > 0.0:
                simulator._jitter_draws += total - dropped
            if dropped:
                simulator._dropped_total += dropped
                simulator._dropped_by_payload[payload_id] = (
                    simulator._dropped_by_payload.get(payload_id, 0) + dropped
                )
                send_idx = send_idx[keep]
                tgt_idx = tgt_idx[keep]
                messages = messages[keep]
                sizes = sizes[keep]
                delays = delays[keep]
                total = len(tgt_idx)
                if total == 0:
                    return

        # Sequences are reserved after the loss filter — the event engine
        # never allocates a sequence for a lost transmission either, so the
        # numbering stays engine-identical.
        seq0 = simulator._queue.reserve_sequences(total)
        times = time + delays
        order = np.argsort(times, kind="stable")
        times_sorted = times[order]
        change = np.flatnonzero(np.diff(times_sorted)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
        ends = np.concatenate(
            (change, np.asarray([total], dtype=np.int64))
        )
        blocks = simulator._blocks
        for s, e in zip(starts.tolist(), ends.tolist()):
            # Within one delivery time, entries must sit in send (sequence)
            # order: ascending original positions.
            sel = np.sort(order[s:e])
            blocks.push(
                float(times_sorted[s]),
                seq0 + int(sel[0]),
                DeliveryBlock(
                    tgt_idx[sel],
                    send_idx[sel],
                    messages[sel],
                    sizes[sel],
                    payload_id,
                ),
            )


# ----------------------------------------------------------------------
# The batched run loop
# ----------------------------------------------------------------------
def run_batched(simulator, kernel, until, max_events) -> float:
    """The batched counterpart of ``Simulator.run``'s event loop.

    Merges ordinary heap entries and buffered delivery blocks by
    ``(time, sequence)``.  Contiguous kernel-eligible deliveries are
    assembled into cohorts and handed to the kernel; timers, direct sends,
    foreign message kinds and anything queued while a first-observation
    hook is pending are processed per item, event-engine style, so every
    interleaving (churn timers firing between same-time deliveries, phase
    hooks) is preserved exactly.
    """
    simulator._start_nodes()
    executed = 0
    event_cap = float("inf") if max_events is None else max_events
    hit_event_limit = False
    queue = simulator._queue
    blocks = simulator._blocks
    store = simulator.store
    kind = kernel.kind
    # One attribute load per run; the disabled path then pays a single
    # ``is not None`` test per *cohort* (not per event).
    telemetry = simulator._telemetry
    while True:
        if executed >= event_cap:
            next_time = simulator._next_pending_time()
            hit_event_limit = next_time is not None and (
                until is None or next_time <= until
            )
            break
        entry = queue.peek_entry()
        block = blocks.peek()
        if entry is None and block is None:
            break
        use_block = block is not None and (
            entry is None or (block[0], block[1]) < (entry[0], entry[1])
        )
        time = block[0] if use_block else entry[0]
        if until is not None and time > until:
            break
        if time > simulator._now:
            simulator._now = time
        if store._first_hooks:
            # A pending phase hook must fire at its exact log position and
            # may react by scheduling work; serve everything per item until
            # it has fired.
            if use_block:
                executed += _drain_block(simulator, kernel, blocks.pop())
            else:
                executed += _step_single(simulator)
        elif use_block or (
            entry[2].__class__ is tuple
            and not entry[2][3]
            and entry[2][2].kind == kind
        ):
            consumed = _process_cohort(simulator, kernel, time)
            executed += consumed
            if telemetry is not None:
                telemetry.incr("cohorts")
                telemetry.observe("cohort_size", consumed)
                telemetry.gauge_max(
                    "live_events_peak", simulator.pending_events
                )
        else:
            executed += _step_single(simulator)
    simulator._last_executed = executed
    if until is not None and not hit_event_limit:
        simulator._now = max(simulator._now, until)
    return simulator._now


def _step_single(simulator) -> int:
    """Pop and process exactly one heap entry, event-engine style."""
    _, _, item = simulator._queue.pop_entry()
    if item.__class__ is tuple:
        receiver, sender, message, direct = item
        offline = simulator._offline
        if offline and receiver in offline:
            simulator._churn_dropped += 1
            return 1
        severed = simulator._severed
        if (
            severed
            and not direct
            and frozenset((sender, receiver)) in severed
        ):
            simulator._churn_dropped += 1
            return 1
        simulator._record(
            Observation(simulator._now, receiver, sender, message, direct)
        )
        simulator._nodes[receiver].on_message(sender, message)
        return 1
    if item.__class__ is Event:
        item.action()
        return 1
    item()
    return 1


def _drain_block(simulator, kernel, entry) -> int:
    """Process one delivery block per item (first-observation hook mode)."""
    time, _, block = entry
    kernel.refresh()
    ids = kernel._topology.ids
    offline = simulator._offline
    severed = simulator._severed
    record = simulator._record
    nodes = simulator._nodes
    executed = 0
    for r, s, message in zip(
        block.receivers.tolist(), block.senders.tolist(),
        block.messages.tolist(),
    ):
        executed += 1
        receiver = ids[r]
        sender = ids[s]
        if offline and receiver in offline:
            simulator._churn_dropped += 1
            continue
        if severed and frozenset((sender, receiver)) in severed:
            simulator._churn_dropped += 1
            continue
        record(Observation(time, receiver, sender, message, False))
        nodes[receiver].on_message(sender, message)
    return executed


def _process_cohort(simulator, kernel, time: float) -> int:
    """Assemble and process every batchable entry at ``time``.

    Entries are consumed strictly in sequence order, merging the heap and
    the block buffer, and stop at the first timer, direct send, foreign
    kind or unknown endpoint — those are handled per item by the caller on
    its next iteration, preserving the event engine's interleaving.
    """
    kernel.refresh()
    index = kernel.index
    queue = simulator._queue
    blocks = simulator._blocks
    kind = kernel.kind

    # Each segment: (payload_id, receivers, senders, messages, sizes,
    # is_array).  Heap singles accumulate into list segments; blocks enter
    # as their arrays, unchanged.
    segments: List[tuple] = []
    while True:
        entry = queue.peek_entry()
        block = blocks.peek()
        pick_entry = False
        pick_block = False
        if block is not None and block[0] == time:
            if entry is not None and entry[0] == time and entry[1] < block[1]:
                pick_entry = True
            else:
                pick_block = True
        elif entry is not None and entry[0] == time:
            pick_entry = True
        if pick_entry:
            item = entry[2]
            if item.__class__ is not tuple or item[3] or item[2].kind != kind:
                break
            receiver, sender, message, _ = item
            r = index.get(receiver)
            s = index.get(sender)
            if r is None or s is None:
                break
            queue.pop_entry()
            payload_id = message.payload_id
            last = segments[-1] if segments else None
            if last is not None and not last[5] and last[0] == payload_id:
                last[1].append(r)
                last[2].append(s)
                last[3].append(message)
                last[4].append(message.size_bytes)
            else:
                segments.append(
                    (payload_id, [r], [s], [message],
                     [message.size_bytes], False)
                )
        elif pick_block:
            blk = blocks.pop()[2]
            segments.append(
                (blk.payload_id, blk.receivers, blk.senders, blk.messages,
                 blk.sizes, True)
            )
        else:
            break

    if not segments:
        # The head was same-time but not assemblable after all (unknown
        # endpoint on the very first entry): fall back to one single step.
        return _step_single(simulator)

    executed = 0
    count = len(segments)
    i = 0
    while i < count:
        payload_id = segments[i][0]
        j = i + 1
        while j < count and segments[j][0] == payload_id:
            j += 1
        if j == i + 1 and segments[i][5]:
            _, recv, send, messages, sizes, _ = segments[i]
        else:
            recv = np.concatenate(
                [np.asarray(seg[1], dtype=np.int64) for seg in segments[i:j]]
            )
            send = np.concatenate(
                [np.asarray(seg[2], dtype=np.int64) for seg in segments[i:j]]
            )
            messages = np.concatenate(
                [_as_object_array(seg[3]) for seg in segments[i:j]]
            )
            sizes = np.concatenate(
                [np.asarray(seg[4], dtype=np.int64) for seg in segments[i:j]]
            )
        executed += kernel.process_run(
            time, recv, send, messages, sizes, payload_id
        )
        i = j
    return executed


def _as_object_array(values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        return values
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array
