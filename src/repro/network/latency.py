"""Link latency models.

Latency matters for two of the paper's concerns: fairness (Section II — slow
propagation disadvantages miners) and the first-spy adversary, whose power
comes from observing *arrival times*.  Each model maps an overlay edge to a
delay; all randomness flows through the RNG passed at construction so runs
are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Tuple


class LatencyModel:
    """Base class of all latency models."""

    def delay(self, sender: Hashable, receiver: Hashable) -> float:
        """Return the delay of one message from ``sender`` to ``receiver``."""
        raise NotImplementedError

    def constant_delay(self) -> "float | None":
        """The fixed per-message delay, or ``None`` if delays vary.

        The batched engine's fast path: a model returning a constant here
        promises that :meth:`delay` is side-effect free and always yields
        this value, letting a whole fan-out share one delivery time without
        consuming any RNG.  Models that draw (or memoise) delays must return
        ``None`` so the engine consumes them per message, in send order.
        """
        return None


class ConstantLatency(LatencyModel):
    """Every link has the same fixed delay.

    Using a delay of ``1.0`` turns simulated time into hop counts, which is
    how the round-based protocols (adaptive diffusion, DC-net rounds) are
    mapped onto the event-driven simulator.
    """

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("latency must be positive")
        self._delay = delay

    def delay(self, sender: Hashable, receiver: Hashable) -> float:
        return self._delay

    def constant_delay(self) -> float:
        return self._delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, rng: random.Random, low: float, high: float) -> None:
        if low <= 0 or high < low:
            raise ValueError("need 0 < low <= high")
        self._rng = rng
        self._low = low
        self._high = high

    def delay(self, sender: Hashable, receiver: Hashable) -> float:
        return self._rng.uniform(self._low, self._high)


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delays with a minimum floor.

    A decent stand-in for internet-scale propagation delays where most links
    are fast and a few are slow.
    """

    def __init__(
        self, rng: random.Random, mean: float, minimum: float = 0.01
    ) -> None:
        if mean <= 0 or minimum <= 0:
            raise ValueError("mean and minimum must be positive")
        self._rng = rng
        self._mean = mean
        self._minimum = minimum

    def delay(self, sender: Hashable, receiver: Hashable) -> float:
        return self._minimum + self._rng.expovariate(1.0 / self._mean)


class PerEdgeLatency(LatencyModel):
    """Fixed but per-edge delays, assigned once and reused symmetrically.

    Models a stable internet topology: the delay between two given peers does
    not change between messages, but different peer pairs differ.
    """

    def __init__(
        self, rng: random.Random, low: float = 0.05, high: float = 0.5
    ) -> None:
        if low <= 0 or high < low:
            raise ValueError("need 0 < low <= high")
        self._rng = rng
        self._low = low
        self._high = high
        self._delays: Dict[Tuple[str, str], float] = {}

    def _edge_key(self, a: Hashable, b: Hashable) -> Tuple[str, str]:
        first, second = sorted([repr(a), repr(b)])
        return (first, second)

    def delay(self, sender: Hashable, receiver: Hashable) -> float:
        key = self._edge_key(sender, receiver)
        if key not in self._delays:
            self._delays[key] = self._rng.uniform(self._low, self._high)
        return self._delays[key]
