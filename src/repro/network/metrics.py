"""Traffic and delivery metrics collected by the simulator.

The paper's performance discussion (Section V-A) is phrased entirely in
message counts ("12,500 messages with adaptive diffusion ... 7,000 messages
for a regular flood and prune broadcast") and latency.  The collector records
every send and every payload delivery so that the benchmarks can regenerate
those numbers without protocol code having to count anything itself.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.network.message import Message, Observation


@dataclass
class MetricsCollector:
    """Aggregates message traffic and payload delivery statistics."""

    sends: List[Observation] = field(default_factory=list)
    deliveries: Dict[Tuple[Hashable, Hashable], float] = field(
        default_factory=dict
    )
    _sends_by_kind: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _sends_by_payload: Dict[Hashable, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _bytes_total: int = 0

    def record_send(self, observation: Observation) -> None:
        """Record one message delivery (equivalently: one link traversal)."""
        self.sends.append(observation)
        self._sends_by_kind[observation.message.kind] += 1
        self._sends_by_payload[observation.message.payload_id] += 1
        self._bytes_total += observation.message.size_bytes

    def record_delivery(
        self, node: Hashable, payload_id: Hashable, time: float
    ) -> None:
        """Record that ``node`` obtained the payload content at ``time``.

        Only the first delivery per (node, payload) pair is kept; duplicates
        caused by redundant links do not change the delivery time.
        """
        key = (node, payload_id)
        if key not in self.deliveries:
            self.deliveries[key] = time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def message_count(
        self,
        kind: Optional[str] = None,
        payload_id: Optional[Hashable] = None,
    ) -> int:
        """Total number of sent messages, optionally filtered."""
        if kind is None and payload_id is None:
            return len(self.sends)
        if kind is not None and payload_id is None:
            return self._sends_by_kind.get(kind, 0)
        if kind is None and payload_id is not None:
            return self._sends_by_payload.get(payload_id, 0)
        return sum(
            1
            for obs in self.sends
            if obs.message.kind == kind and obs.message.payload_id == payload_id
        )

    def bytes_sent(self) -> int:
        """Total accounted traffic volume in bytes."""
        return self._bytes_total

    def kinds(self) -> Dict[str, int]:
        """Message counts broken down by message kind."""
        return dict(self._sends_by_kind)

    def delivered_nodes(self, payload_id: Hashable) -> List[Hashable]:
        """Nodes that received the payload content, in delivery order."""
        entries = [
            (time, node)
            for (node, payload), time in self.deliveries.items()
            if payload == payload_id
        ]
        entries.sort()
        return [node for _, node in entries]

    def reach(self, payload_id: Hashable) -> int:
        """Number of distinct nodes that obtained the payload."""
        return sum(1 for (_, payload) in self.deliveries if payload == payload_id)

    def delivery_time(
        self, node: Hashable, payload_id: Hashable
    ) -> Optional[float]:
        """When ``node`` first obtained the payload, or ``None``."""
        return self.deliveries.get((node, payload_id))

    def completion_time(self, payload_id: Hashable) -> Optional[float]:
        """Time of the last first-delivery of the payload, or ``None``."""
        times = [
            time
            for (_, payload), time in self.deliveries.items()
            if payload == payload_id
        ]
        return max(times) if times else None

    def first_observations(
        self, payload_id: Hashable, kinds: Optional[Tuple[str, ...]] = None
    ) -> Dict[Hashable, Observation]:
        """First observation of the payload per receiving node.

        This is the raw material of the first-spy adversary: for every node,
        when did it first see any message of this payload and from whom.
        """
        first: Dict[Hashable, Observation] = {}
        for obs in self.sends:
            if obs.message.payload_id != payload_id:
                continue
            if kinds is not None and obs.message.kind not in kinds:
                continue
            if obs.receiver not in first:
                first[obs.receiver] = obs
        return first

    def summary(self) -> Dict[str, float]:
        """A compact dictionary of headline statistics."""
        return {
            "messages": float(len(self.sends)),
            "bytes": float(self._bytes_total),
            "payloads": float(len(self._sends_by_payload)),
            "deliveries": float(len(self.deliveries)),
        }
