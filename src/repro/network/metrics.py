"""Traffic and delivery metrics collected by the simulator.

The paper's performance discussion (Section V-A) is phrased entirely in
message counts ("12,500 messages with adaptive diffusion ... 7,000 messages
for a regular flood and prune broadcast") and latency.  The collector records
every send and every payload delivery so that the benchmarks can regenerate
those numbers without protocol code having to count anything itself.

Message traffic is written through an
:class:`~repro.network.observation_store.ObservationStore` shared with the
simulator, so every traffic query (``message_count``, ``first_observations``)
is answered from an index in O(result) instead of scanning the global send
log.  Payload deliveries (the "node X now knows the payload" events) are
indexed here per payload, so ``delivered_nodes``, ``reach`` and
``completion_time`` are O(result) as well.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.network.message import Observation
from repro.network.observation_store import ObservationStore


class MetricsCollector:
    """Aggregates message traffic and payload delivery statistics.

    Args:
        store: the observation store to write sends through.  The simulator
            passes its own store so that metrics queries and adversary views
            share one set of indexes; a fresh private store is created when
            the collector is used standalone.
    """

    def __init__(self, store: Optional[ObservationStore] = None) -> None:
        self.store = store if store is not None else ObservationStore()
        self.deliveries: Dict[Tuple[Hashable, Hashable], float] = {}
        self._deliveries_by_payload: Dict[
            Hashable, List[Tuple[float, Hashable]]
        ] = defaultdict(list)
        self._completion: Dict[Hashable, float] = {}

    @property
    def sends(self) -> List[Observation]:
        """A copy of the chronological send log (kept for compatibility).

        Prefer :meth:`iter_sends` for read-only scans — it avoids copying
        the full log.
        """
        return self.store.observations

    def iter_sends(self) -> Iterator[Observation]:
        """Lazily iterate the chronological send log without copying it."""
        return self.store.iter_observations()

    def record_send(self, observation: Observation) -> None:
        """Record one message delivery (equivalently: one link traversal)."""
        self.store.record(observation)

    def record_delivery(
        self, node: Hashable, payload_id: Hashable, time: float
    ) -> None:
        """Record that ``node`` obtained the payload content at ``time``.

        Only the first delivery per (node, payload) pair is kept; duplicates
        caused by redundant links do not change the delivery time.
        """
        key = (node, payload_id)
        if key not in self.deliveries:
            self.deliveries[key] = time
            self._deliveries_by_payload[payload_id].append((time, node))
            previous = self._completion.get(payload_id)
            if previous is None or time > previous:
                self._completion[payload_id] = time

    def record_delivery_batch(
        self, payload_id: Hashable, time: float, nodes: List[Hashable]
    ) -> None:
        """Record first deliveries of one payload at one time for many nodes.

        The batched engine's counterpart of :meth:`record_delivery`: one
        call per cohort instead of one per freshly-infected node.  Nodes
        that already obtained the payload are skipped, exactly like the
        per-node path.
        """
        deliveries = self.deliveries
        fresh = [
            node for node in nodes if (node, payload_id) not in deliveries
        ]
        if not fresh:
            return
        for node in fresh:
            deliveries[(node, payload_id)] = time
        self._deliveries_by_payload[payload_id].extend(
            (time, node) for node in fresh
        )
        previous = self._completion.get(payload_id)
        if previous is None or time > previous:
            self._completion[payload_id] = time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def message_count(
        self,
        kind: Optional[str] = None,
        payload_id: Optional[Hashable] = None,
    ) -> int:
        """Total number of sent messages, optionally filtered.

        All four filter combinations — including ``kind`` + ``payload_id``
        together — are O(1) lookups into the store's indexes.
        """
        return self.store.count(kind=kind, payload_id=payload_id)

    def bytes_sent(self) -> int:
        """Total accounted traffic volume in bytes."""
        return self.store.bytes_total()

    def kinds(self) -> Dict[str, int]:
        """Message counts broken down by message kind."""
        return self.store.kind_counts()

    def delivered_nodes(self, payload_id: Hashable) -> List[Hashable]:
        """Nodes that received the payload content, in delivery order."""
        entries = sorted(self._deliveries_by_payload.get(payload_id, []))
        return [node for _, node in entries]

    def reach(self, payload_id: Hashable) -> int:
        """Number of distinct nodes that obtained the payload."""
        return len(self._deliveries_by_payload.get(payload_id, ()))

    def delivery_time(
        self, node: Hashable, payload_id: Hashable
    ) -> Optional[float]:
        """When ``node`` first obtained the payload, or ``None``."""
        return self.deliveries.get((node, payload_id))

    def completion_time(self, payload_id: Hashable) -> Optional[float]:
        """Time of the last first-delivery of the payload, or ``None``."""
        return self._completion.get(payload_id)

    def first_observations(
        self, payload_id: Hashable, kinds: Optional[Tuple[str, ...]] = None
    ) -> Dict[Hashable, Observation]:
        """First observation of the payload per receiving node.

        This is the raw material of the first-spy adversary: for every node,
        when did it first see any message of this payload and from whom.
        Served from the store's first-seen-per-receiver index.
        """
        return self.store.first_observations(payload_id, kinds)

    def summary(self) -> Dict[str, float]:
        """A compact dictionary of headline statistics."""
        return {
            "messages": float(len(self.store)),
            "bytes": float(self.store.bytes_total()),
            "payloads": float(self.store.payload_count()),
            "deliveries": float(len(self.deliveries)),
        }
