"""Discrete-event peer-to-peer network simulation substrate.

All dissemination protocols in this library (flood-and-prune, gossip,
Dandelion, adaptive diffusion and the paper's three-phase protocol) run on
top of this package: a deterministic discrete-event simulator
(:class:`~repro.network.simulator.Simulator`), node behaviours
(:class:`~repro.network.node.Node`), overlay topology generators
(:mod:`repro.network.topology`), link latency models
(:mod:`repro.network.latency`) and a metrics collector that records every
message send and delivery (:mod:`repro.network.metrics`).

The simulator is the piece the paper's own evaluation implies but does not
describe — its "first simulation" of 1,000 peers — so it is built here as a
reusable substrate.
"""

from repro.network.churn import (
    ChurnEvent,
    ChurnSchedule,
    LinkEvent,
    random_churn_schedule,
)
from repro.network.conditions import NetworkConditions
from repro.network.events import Event, EventQueue
from repro.network.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    PerEdgeLatency,
    UniformLatency,
)
from repro.network.message import Message, Observation
from repro.network.metrics import MetricsCollector
from repro.network.node import Node
from repro.network.observation_store import ObservationStore
from repro.network.simulator import Simulator
from repro.network.topology import (
    barabasi_albert_overlay,
    bitcoin_like_overlay,
    complete_overlay,
    erdos_renyi_overlay,
    line_overlay,
    random_regular_overlay,
    regular_tree_overlay,
    scale_free_overlay,
    small_world_overlay,
    watts_strogatz_overlay,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "LinkEvent",
    "random_churn_schedule",
    "NetworkConditions",
    "Event",
    "EventQueue",
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyModel",
    "PerEdgeLatency",
    "UniformLatency",
    "Message",
    "Observation",
    "MetricsCollector",
    "Node",
    "ObservationStore",
    "Simulator",
    "barabasi_albert_overlay",
    "bitcoin_like_overlay",
    "complete_overlay",
    "erdos_renyi_overlay",
    "line_overlay",
    "random_regular_overlay",
    "regular_tree_overlay",
    "scale_free_overlay",
    "small_world_overlay",
    "watts_strogatz_overlay",
]
