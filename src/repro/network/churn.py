"""Node churn: failure/rejoin schedules executed as simulator events.

Real peer-to-peer networks are never static — peers crash, disconnect and
reconnect while broadcasts are in flight.  This module models that as a
*schedule*: a deterministic list of :class:`ChurnEvent` entries (node X
leaves at time t, rejoins at time t'), applied to a
:class:`~repro.network.simulator.Simulator` as ordinary scheduled events.
When a churn event fires, the simulator marks the node offline (or online
again) and invalidates its fast-path adjacency caches, so subsequent
fan-outs see the changed effective topology.

Offline semantics (implemented in :class:`~repro.network.simulator.Simulator`):

* messages sent *by* or *to* an offline node are dropped and counted in
  ``Simulator.churn_dropped``;
* messages already in flight towards a node that goes offline before the
  delivery time are dropped at delivery;
* ``neighbours_of`` excludes offline nodes, so protocols stop fanning out
  to them while they are gone;
* an offline node keeps its protocol state and its graph vertex — rejoining
  is cache invalidation, not re-registration.

Schedules are data, not behaviour, which keeps them serializable: the
scenario layer (:mod:`repro.scenarios`) describes churn declaratively and
compiles it into a :class:`ChurnSchedule` per session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Optional, Tuple

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.network.simulator import Simulator

#: Valid churn actions.
LEAVE = "leave"
REJOIN = "rejoin"

#: Valid link-churn actions.
SEVER = "sever"
RESTORE = "restore"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change.

    Attributes:
        time: simulated time at which the change happens.
        node: the affected overlay node.
        action: ``"leave"`` (node goes offline) or ``"rejoin"``.
    """

    time: float
    node: Hashable
    action: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("churn events cannot happen at negative times")
        if self.action not in (LEAVE, REJOIN):
            raise ValueError(
                f"unknown churn action {self.action!r} "
                f"(expected {LEAVE!r} or {REJOIN!r})"
            )


@dataclass(frozen=True)
class LinkEvent:
    """One scheduled overlay-link change.

    The link-level counterpart of :class:`ChurnEvent`: instead of a whole
    node crashing, a single overlay link goes down (``"sever"``) or comes
    back (``"restore"``).  Eclipse adversaries and flaky-link fault models
    (:mod:`repro.threat`) are built from these.

    Attributes:
        time: simulated time at which the change happens.
        a: one endpoint of the link.
        b: the other endpoint.
        action: ``"sever"`` or ``"restore"``.
    """

    time: float
    a: Hashable
    b: Hashable
    action: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("link events cannot happen at negative times")
        if self.action not in (SEVER, RESTORE):
            raise ValueError(
                f"unknown link action {self.action!r} "
                f"(expected {SEVER!r} or {RESTORE!r})"
            )


@dataclass(frozen=True)
class ChurnSchedule:
    """A deterministic sequence of churn events for one simulation.

    Events may be node-level (:class:`ChurnEvent`) or link-level
    (:class:`LinkEvent`); :meth:`apply` dispatches each to the matching
    simulator primitive.

    Example:
        >>> schedule = ChurnSchedule((ChurnEvent(1.0, 3, "leave"),))
        >>> len(schedule)
        1
    """

    events: Tuple[object, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def apply(self, simulator: "Simulator") -> None:
        """Install every event into ``simulator``'s event queue.

        Event times are *absolute* simulated times.  When the schedule is
        applied mid-run, events whose time already passed fire immediately
        (at the current clock) rather than shifting the whole schedule by
        the application time.  Each event executes
        ``fail_node``/``restore_node``, which also invalidates the
        simulator's cached adjacency so fan-outs started after the event
        see the new effective topology.
        """
        now = simulator.now
        for event in self.events:
            delay = max(0.0, event.time - now)
            if isinstance(event, LinkEvent):
                if event.action == SEVER:
                    simulator.schedule(
                        delay,
                        lambda a=event.a, b=event.b: simulator.sever_link(a, b),
                    )
                else:
                    simulator.schedule(
                        delay,
                        lambda a=event.a, b=event.b: simulator.restore_link(
                            a, b
                        ),
                    )
            elif event.action == LEAVE:
                simulator.schedule(
                    delay,
                    lambda node=event.node: simulator.fail_node(node),
                )
            else:
                simulator.schedule(
                    delay,
                    lambda node=event.node: simulator.restore_node(node),
                )


def random_churn_schedule(
    graph: nx.Graph,
    leave_fraction: float,
    leave_time: float,
    rejoin_after: Optional[float] = None,
    rng: Optional[random.Random] = None,
    protected: Iterable[Hashable] = (),
) -> ChurnSchedule:
    """Sample a schedule where a node fraction leaves (and maybe rejoins).

    Args:
        graph: the overlay whose nodes churn.
        leave_fraction: fraction of nodes that go offline, in ``[0, 1)``.
        leave_time: simulated time at which the departures happen.
        rejoin_after: when given, every departed node rejoins this many time
            units after leaving; ``None`` means the nodes stay gone.
        rng: randomness source (defaults to an unseeded one — pass a seeded
            ``random.Random`` for reproducible schedules).
        protected: nodes that never churn (e.g. the broadcast source whose
            delivery guarantee an experiment is measuring).

    Returns:
        The sampled :class:`ChurnSchedule`, leave events first.

    Raises:
        ValueError: for an out-of-range fraction or negative times.
    """
    if not 0.0 <= leave_fraction < 1.0:
        raise ValueError("leave_fraction must be in [0, 1)")
    if leave_time < 0:
        raise ValueError("leave_time must be non-negative")
    if rejoin_after is not None and rejoin_after <= 0:
        raise ValueError("rejoin_after must be positive when given")
    rng = rng if rng is not None else random.Random()
    protected = set(protected)
    candidates = [
        node for node in sorted(graph.nodes, key=repr) if node not in protected
    ]
    count = min(
        int(round(leave_fraction * graph.number_of_nodes())), len(candidates)
    )
    leavers = rng.sample(candidates, count) if count else []
    events = [ChurnEvent(leave_time, node, LEAVE) for node in leavers]
    if rejoin_after is not None:
        events.extend(
            ChurnEvent(leave_time + rejoin_after, node, REJOIN)
            for node in leavers
        )
    return ChurnSchedule(tuple(events))


def random_link_schedule(
    graph: nx.Graph,
    sever_fraction: float,
    sever_time: float,
    restore_after: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> ChurnSchedule:
    """Sample a schedule where a fraction of overlay links goes down.

    The link-level counterpart of :func:`random_churn_schedule`: a random
    ``sever_fraction`` of the overlay's edges is severed at ``sever_time``
    and (optionally) restored ``restore_after`` time units later.  Used by
    the engine-equivalence property tests to exercise mid-broadcast
    topology changes reproducibly.

    Raises:
        ValueError: for an out-of-range fraction or negative times.
    """
    if not 0.0 <= sever_fraction <= 1.0:
        raise ValueError("sever_fraction must be in [0, 1]")
    if sever_time < 0:
        raise ValueError("sever_time must be non-negative")
    if restore_after is not None and restore_after <= 0:
        raise ValueError("restore_after must be positive when given")
    rng = rng if rng is not None else random.Random()
    edges = sorted(graph.edges, key=repr)
    count = int(round(sever_fraction * len(edges)))
    severed = rng.sample(edges, count) if count else []
    events = [LinkEvent(sever_time, a, b, SEVER) for a, b in severed]
    if restore_after is not None:
        events.extend(
            LinkEvent(sever_time + restore_after, a, b, RESTORE)
            for a, b in severed
        )
    return ChurnSchedule(tuple(events))
