"""Overlay topology generators.

The privacy of topological spreading mechanisms depends strongly on the shape
of the peer-to-peer overlay: adaptive diffusion is analysed on d-regular
trees, Dandelion on random-regular graphs approximating Bitcoin's overlay,
and the paper's own simulation uses a 1,000-peer network.  This module wraps
the generators needed by the experiments and guarantees that every returned
overlay is connected (privacy and delivery guarantees are meaningless on a
partitioned graph).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable, List, Optional

import networkx as nx


def _require_connected(graph: nx.Graph, description: str) -> nx.Graph:
    if graph.number_of_nodes() == 0:
        raise ValueError(f"{description}: generated an empty graph")
    if not nx.is_connected(graph):
        raise ValueError(f"{description}: generated graph is not connected")
    return graph


def _seeded(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def random_regular_overlay(
    num_nodes: int, degree: int = 8, seed: Optional[int] = None
) -> nx.Graph:
    """A connected random d-regular graph, the standard Bitcoin-like overlay.

    Bitcoin nodes maintain 8 outgoing connections, so ``degree=8`` mirrors the
    setting used in the Dandelion analysis.  The generator retries with fresh
    seeds until the sampled graph is connected.
    """
    if num_nodes <= degree:
        raise ValueError("need more nodes than the degree")
    if (num_nodes * degree) % 2 != 0:
        raise ValueError("num_nodes * degree must be even for a regular graph")
    rng = _seeded(seed)
    for _ in range(100):
        candidate = nx.random_regular_graph(
            degree, num_nodes, seed=rng.randrange(2**31)
        )
        if nx.is_connected(candidate):
            return candidate
    raise RuntimeError("failed to sample a connected random regular graph")


def erdos_renyi_overlay(
    num_nodes: int, avg_degree: float = 8.0, seed: Optional[int] = None
) -> nx.Graph:
    """A connected Erdős–Rényi graph with the requested average degree."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    probability = min(1.0, avg_degree / max(1, num_nodes - 1))
    rng = _seeded(seed)
    for _ in range(100):
        candidate = nx.gnp_random_graph(
            num_nodes, probability, seed=rng.randrange(2**31)
        )
        if candidate.number_of_nodes() and nx.is_connected(candidate):
            return candidate
    raise RuntimeError(
        "failed to sample a connected Erdos-Renyi graph; increase avg_degree"
    )


def barabasi_albert_overlay(
    num_nodes: int, attachments: int = 4, seed: Optional[int] = None
) -> nx.Graph:
    """A scale-free Barabási–Albert overlay (hub-heavy degree distribution)."""
    if num_nodes <= attachments:
        raise ValueError("need more nodes than attachments per step")
    graph = nx.barabasi_albert_graph(num_nodes, attachments, seed=seed)
    return _require_connected(graph, "barabasi_albert_overlay")


def watts_strogatz_overlay(
    num_nodes: int,
    neighbours: int = 8,
    rewire_probability: float = 0.1,
    seed: Optional[int] = None,
) -> nx.Graph:
    """A small-world Watts–Strogatz overlay."""
    graph = nx.connected_watts_strogatz_graph(
        num_nodes, neighbours, rewire_probability, seed=seed
    )
    return _require_connected(graph, "watts_strogatz_overlay")


def small_world_overlay(
    num_nodes: int,
    neighbours: int = 8,
    shortcut_probability: float = 0.1,
    seed: Optional[int] = None,
) -> nx.Graph:
    """A Newman–Watts small-world overlay (ring lattice plus shortcuts).

    Unlike the rewiring Watts–Strogatz construction, Newman–Watts only
    *adds* shortcut edges to the ring lattice, so the generated overlay is
    connected by construction — high clustering like a social/regional peer
    graph, with a few long-range links keeping the diameter short.
    """
    if num_nodes < 3:
        raise ValueError("need at least three nodes for a ring lattice")
    if not 0.0 <= shortcut_probability <= 1.0:
        raise ValueError("shortcut probability must be in [0, 1]")
    graph = nx.newman_watts_strogatz_graph(
        num_nodes, neighbours, shortcut_probability, seed=seed
    )
    return _require_connected(graph, "small_world_overlay")


def scale_free_overlay(
    num_nodes: int,
    attachments: int = 4,
    triangle_probability: float = 0.3,
    seed: Optional[int] = None,
) -> nx.Graph:
    """A clustered scale-free overlay (Holme–Kim powerlaw cluster graph).

    Preferential attachment produces the hub-heavy degree distribution of
    unmanaged peer-to-peer networks (a few supernode-like peers carry most
    links); the triangle-formation step adds the clustering plain
    Barabási–Albert lacks.  The generator retries with fresh seeds until the
    sampled graph is connected.
    """
    if num_nodes <= attachments:
        raise ValueError("need more nodes than attachments per step")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ValueError("triangle probability must be in [0, 1]")
    rng = _seeded(seed)
    for _ in range(100):
        candidate = nx.powerlaw_cluster_graph(
            num_nodes, attachments, triangle_probability,
            seed=rng.randrange(2**31),
        )
        if nx.is_connected(candidate):
            return candidate
    raise RuntimeError("failed to sample a connected scale-free graph")


def line_overlay(num_nodes: int) -> nx.Graph:
    """A simple path graph; the idealised Dandelion stem topology."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    return nx.path_graph(num_nodes)


def regular_tree_overlay(branching: int, depth: int) -> nx.Graph:
    """A rooted tree where every internal node has ``branching`` children.

    Adaptive diffusion's analysis (Fanti et al.) is exact on regular trees,
    which makes this topology the reference case for the privacy experiments.
    """
    if branching < 2:
        raise ValueError("branching factor must be at least 2")
    if depth < 1:
        raise ValueError("depth must be at least 1")
    return nx.balanced_tree(branching, depth)


def complete_overlay(num_nodes: int) -> nx.Graph:
    """A fully connected graph; the logical topology of one DC-net group."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    return nx.complete_graph(num_nodes)


def bitcoin_like_overlay(
    num_reachable: int,
    num_unreachable: int,
    outgoing: int = 8,
    seed: Optional[int] = None,
) -> nx.Graph:
    """A two-tier overlay of reachable and unreachable nodes.

    Reachable nodes accept incoming connections and form a random-regular
    core; unreachable nodes (the majority of real Bitcoin clients, and the
    target of the deanonymisation attack in the paper's reference [15]) only
    open ``outgoing`` connections towards reachable nodes.  Node attribute
    ``reachable`` marks the tier.
    """
    if num_reachable <= outgoing:
        raise ValueError("need more reachable nodes than outgoing connections")
    rng = _seeded(seed)
    core = random_regular_overlay(
        num_reachable, degree=outgoing, seed=rng.randrange(2**31)
    )
    graph = nx.Graph()
    graph.add_nodes_from(core.nodes, reachable=True)
    graph.add_edges_from(core.edges)
    reachable_nodes = list(core.nodes)
    for index in range(num_unreachable):
        node = num_reachable + index
        graph.add_node(node, reachable=False)
        for peer in rng.sample(reachable_nodes, outgoing):
            graph.add_edge(node, peer)
    return _require_connected(graph, "bitcoin_like_overlay")


def bfs_partition(graph: nx.Graph, parts: int) -> List[List[Hashable]]:
    """Split an overlay into ``parts`` balanced, BFS-contiguous node blocks.

    The sharded delivery engine (:mod:`repro.network.sharded`) assigns each
    block to one worker process; a good partition keeps most overlay edges
    *inside* a block so most deliveries never cross a process boundary.
    This is the METIS-lite take on that goal: walk the graph breadth-first
    from the ``repr``-smallest node (neighbours visited in ``repr`` order,
    matching the simulator's deterministic orderings) and chop the visit
    sequence into ``parts`` contiguous chunks of near-equal size.  BFS
    order keeps neighbourhoods together, so each chunk is one "region" of
    the overlay rather than a random node sample.

    Deterministic: the same graph always yields the same partition.
    Disconnected graphs (none of the generators here produce one) are
    handled by restarting the walk from the next unvisited node.

    Args:
        graph: the overlay to split.
        parts: number of blocks; must be in ``[1, number_of_nodes]``.

    Returns:
        A list of ``parts`` node lists.  Every node appears in exactly one
        block; block sizes differ by at most one (the remainder goes to the
        leading blocks).
    """
    order = bfs_order(graph)
    count = len(order)
    if not 1 <= parts <= count:
        raise ValueError(
            f"parts must be between 1 and the node count ({count}), "
            f"got {parts}"
        )
    base, remainder = divmod(count, parts)
    blocks: List[List[Hashable]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        blocks.append(order[start:start + size])
        start += size
    return blocks


def bfs_order(graph: nx.Graph) -> List[Hashable]:
    """Deterministic breadth-first visit order of every node in ``graph``.

    Starts from the ``repr``-smallest node, visits neighbours in ``repr``
    order, and restarts from the next unvisited node (again in ``repr``
    order) if the graph is disconnected.  :func:`bfs_partition` chunks this
    sequence; it is exposed separately so tests and other layouts can reuse
    the exact walk.
    """
    if graph.number_of_nodes() == 0:
        return []
    # One repr-sort up front, then pure integer BFS over index adjacency —
    # sorting each node's neighbour tuple on demand would pay the key
    # function per edge instead of per node.
    nodes = sorted(graph.nodes, key=repr)
    index_of = {node: index for index, node in enumerate(nodes)}
    adjacency: List[List[int]] = [[] for _ in nodes]
    for a, b in graph.edges:
        ia, ib = index_of[a], index_of[b]
        adjacency[ia].append(ib)
        adjacency[ib].append(ia)
    for neighbours in adjacency:
        neighbours.sort()
    visited = bytearray(len(nodes))
    order: List[Hashable] = []
    queue: deque = deque()
    for root in range(len(nodes)):
        if visited[root]:
            continue
        visited[root] = 1
        queue.append(root)
        while queue:
            current = queue.popleft()
            order.append(nodes[current])
            for neighbour in adjacency[current]:
                if not visited[neighbour]:
                    visited[neighbour] = 1
                    queue.append(neighbour)
    return order
