"""Per-node infection bookkeeping for adaptive diffusion on general graphs.

On a tree the adaptive-diffusion spread step is unambiguous; on a general
graph every node needs a little state to decide where the infection frontier
is from its local point of view: who infected it (its parent), whom it has
already forwarded the payload to (its children), and which spread waves it
has already processed (to suppress duplicates arriving over cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set


@dataclass
class InfectionState:
    """Local infection state of one node for one payload.

    Attributes:
        payload_id: the broadcast this state belongs to.
        parent: node this node first received the payload from (``None`` for
            the node that introduced the payload).
        children: neighbours this node forwarded the payload to, in order.
        received_from: every neighbour the payload arrived from (parents and
            duplicate deliveries over cycles).
        processed_waves: spread-wave sequence numbers already handled.
        delivered_at: simulated time of the first payload delivery.
    """

    payload_id: Hashable
    parent: Optional[Hashable] = None
    children: List[Hashable] = field(default_factory=list)
    received_from: Set[Hashable] = field(default_factory=set)
    processed_waves: Set[int] = field(default_factory=set)
    delivered_at: Optional[float] = None

    def note_received(self, sender: Optional[Hashable], time: float) -> bool:
        """Record a payload arrival; returns ``True`` on first delivery."""
        first = self.delivered_at is None
        if sender is not None:
            self.received_from.add(sender)
        if first:
            self.delivered_at = time
            self.parent = sender
        return first

    def add_children(self, nodes: List[Hashable]) -> None:
        """Record neighbours this node just forwarded the payload to."""
        for node in nodes:
            if node not in self.children:
                self.children.append(node)

    def already_processed(self, wave: int) -> bool:
        """Check-and-mark for a spread wave; returns ``True`` if seen before."""
        if wave in self.processed_waves:
            return True
        self.processed_waves.add(wave)
        return False

    def spread_targets(
        self,
        neighbours: List[Hashable],
        exclude: Optional[Hashable] = None,
    ) -> List[Hashable]:
        """Neighbours the payload should be forwarded to in a spread step.

        Excludes the parent, everyone the payload was already received from,
        existing children, and the optional ``exclude`` direction (used by a
        new virtual source to avoid growing towards the previous one).
        """
        blocked = set(self.received_from)
        blocked.update(self.children)
        if self.parent is not None:
            blocked.add(self.parent)
        if exclude is not None:
            blocked.add(exclude)
        return [n for n in neighbours if n not in blocked]
