"""Adaptive diffusion (Fanti et al., SIGMETRICS 2015) — Phase 2 substrate.

Adaptive diffusion breaks the symmetry of plain flooding by introducing a
*virtual source token*: the node currently holding the token is always the
centre of the already-infected subgraph, while the true source can be
anywhere inside it.  Each round the token either stays (and the infection
grows by one hop in every direction) or is passed to a random neighbour (and
the infection re-balances around the new centre).

This package provides

* :mod:`repro.diffusion.virtual_source` — token state and the keep/pass
  probability ``alpha`` for d-regular trees (and its general-graph use),
* :mod:`repro.diffusion.spreading` — per-node infection bookkeeping used to
  drive spread waves through the infection tree on arbitrary graphs,
* :mod:`repro.diffusion.adaptive` — the event-driven protocol node and the
  convenience runner used by the paper's message-overhead experiment (E1).
"""

from repro.diffusion.adaptive import (
    AdaptiveDiffusionConfig,
    AdaptiveDiffusionNode,
    DiffusionRunResult,
    run_adaptive_diffusion,
)
from repro.diffusion.spreading import InfectionState
from repro.diffusion.virtual_source import (
    VirtualSourceToken,
    keep_probability,
    transfer_probability,
)

__all__ = [
    "AdaptiveDiffusionConfig",
    "AdaptiveDiffusionNode",
    "DiffusionRunResult",
    "run_adaptive_diffusion",
    "InfectionState",
    "VirtualSourceToken",
    "keep_probability",
    "transfer_probability",
]
