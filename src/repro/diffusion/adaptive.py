"""Event-driven adaptive diffusion protocol (Phase 2 of the paper).

The implementation follows the two alternating steps the paper summarises in
Section III-A:

1. with probability ``alpha`` the virtual source token is transferred to a
   new node, which then spreads the message in all directions besides the
   direction it received the token from (re-balancing the infected subgraph
   around itself);
2. otherwise the message is spread one hop further in every direction,
   increasing the diameter of the infected subgraph.

Spreading is realised with *spread waves*: the virtual source issues a wave
that travels down the infection tree (parent → children); nodes at the
frontier forward the payload to their not-yet-covered neighbours.  On general
graphs this produces the redundant deliveries responsible for adaptive
diffusion's message overhead over plain flooding (the paper's 12,500 vs 7,000
messages for 1,000 peers), while on trees it reduces to the exact protocol.

Message kinds used on the wire:

* ``ad_payload`` — carries the transaction to a newly infected node,
* ``ad_spread`` — instructs the infection tree to grow by one hop,
* ``ad_token`` — hands the virtual source role to a neighbour,
* ``ad_final`` — the "final spreading request" the last virtual source emits
  after ``d`` rounds; subclasses (the three-phase protocol) switch to flood
  and prune when it arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import networkx as nx

from repro.diffusion.spreading import InfectionState
from repro.diffusion.virtual_source import VirtualSourceToken, keep_probability
from repro.network.latency import ConstantLatency
from repro.network.message import Message
from repro.network.node import Node
from repro.network.simulator import Simulator


@dataclass
class AdaptiveDiffusionConfig:
    """Tunable parameters of adaptive diffusion.

    Attributes:
        max_rounds: the paper's parameter ``d`` — number of virtual-source
            rounds before the final spreading request is sent.  ``None``
            disables termination (used when adaptive diffusion alone must
            reach the whole network, as in experiment E1).
        round_interval: simulated time between virtual-source rounds.
        assumed_degree: degree used in the ``alpha`` formula; ``None`` means
            "use the current virtual source's own degree".
        payload_size_bytes: accounted size of ``ad_payload`` messages.
        control_size_bytes: accounted size of token/spread/final messages.
    """

    max_rounds: Optional[int] = None
    round_interval: float = 1.0
    assumed_degree: Optional[int] = None
    payload_size_bytes: int = 256
    control_size_bytes: int = 32


class AdaptiveDiffusionNode(Node):
    """A peer running adaptive diffusion for any number of payloads."""

    def __init__(
        self,
        node_id: Hashable,
        config: Optional[AdaptiveDiffusionConfig] = None,
    ) -> None:
        super().__init__(node_id)
        self.config = config or AdaptiveDiffusionConfig()
        self._infections: Dict[Hashable, InfectionState] = {}
        self._tokens: Dict[Hashable, VirtualSourceToken] = {}
        self._wave_sequence: Dict[Hashable, int] = {}
        self._finalized: Dict[Hashable, bool] = {}

    # ------------------------------------------------------------------
    # Public protocol entry points
    # ------------------------------------------------------------------
    def originate(self, payload_id: Hashable) -> None:
        """Introduce a new payload as its true source.

        Following the protocol, the source hands the payload and the virtual
        source token to one uniformly chosen neighbour, which becomes the
        first virtual source at distance ``h = 1``.
        """
        state = self._state(payload_id)
        state.note_received(None, self.now)
        self.mark_delivered(payload_id)
        neighbour = self.simulator.rng.choice(self.neighbours)
        state.add_children([neighbour])
        self.send(neighbour, self._payload_message(payload_id))
        token = VirtualSourceToken(payload_id=payload_id, path=[neighbour])
        self.send(
            neighbour,
            Message(
                kind="ad_token",
                payload_id=payload_id,
                body={"t": token.t, "h": token.h, "path": token.path},
                size_bytes=self.config.control_size_bytes,
            ),
        )

    def become_virtual_source(
        self, payload_id: Hashable, exclude: Optional[Hashable] = None
    ) -> None:
        """Assume the virtual source role directly (used by Phase 1 → 2).

        In the three-phase protocol the initial virtual source is not chosen
        by the originator but by the hash rule inside the DC-net group; the
        selected node calls this method.  The node spreads the payload to all
        neighbours (except ``exclude``) and starts the round timer.
        """
        state = self._state(payload_id)
        if state.delivered_at is None:
            state.note_received(None, self.now)
            self.mark_delivered(payload_id)
        self._tokens[payload_id] = VirtualSourceToken(
            payload_id=payload_id, previous=exclude, path=[self.node_id]
        )
        self._spread_step(payload_id, self._next_wave(payload_id), exclude=exclude)
        self._schedule_round(payload_id)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: Hashable, message: Message) -> None:
        if message.kind == "ad_payload":
            self._handle_payload(sender, message)
        elif message.kind == "ad_spread":
            self._handle_spread(sender, message)
        elif message.kind == "ad_token":
            self._handle_token(sender, message)
        elif message.kind == "ad_final":
            self._handle_final(sender, message)
        else:
            self.on_unhandled_message(sender, message)

    def on_unhandled_message(self, sender: Hashable, message: Message) -> None:
        """Hook for subclasses adding further message kinds."""
        raise ValueError(
            f"unexpected message kind {message.kind!r} at node {self.node_id!r}"
        )

    def _handle_payload(self, sender: Hashable, message: Message) -> None:
        state = self._state(message.payload_id)
        if state.note_received(sender, self.now):
            self.mark_delivered(message.payload_id)

    def _handle_spread(self, sender: Hashable, message: Message) -> None:
        payload_id = message.payload_id
        state = self._state(payload_id)
        wave = message.body["wave"]
        if state.already_processed(wave):
            return
        self._spread_step(payload_id, wave)

    def _handle_token(self, sender: Hashable, message: Message) -> None:
        payload_id = message.payload_id
        state = self._state(payload_id)
        if state.delivered_at is None:
            # The token always follows a payload message over the same link;
            # receiving it first can only happen if delivery order broke.
            state.note_received(sender, self.now)
            self.mark_delivered(payload_id)
        token = VirtualSourceToken(
            payload_id=payload_id,
            t=message.body["t"],
            h=message.body["h"],
            previous=sender,
            path=list(message.body.get("path", [])),
        )
        self._tokens[payload_id] = token
        # Re-balance: the new virtual source grows the infection away from
        # the previous one.  Two waves approximate the catch-up growth of the
        # tree protocol (the far side must gain two levels).
        self._spread_step(payload_id, self._next_wave(payload_id), exclude=sender)
        self._spread_step(payload_id, self._next_wave(payload_id), exclude=sender)
        self._schedule_round(payload_id)

    def _handle_final(self, sender: Hashable, message: Message) -> None:
        payload_id = message.payload_id
        if self._finalized.get(payload_id):
            return
        self._finalized[payload_id] = True
        state = self._state(payload_id)
        if state.delivered_at is None:
            state.note_received(sender, self.now)
            self.mark_delivered(payload_id)
        for child in state.children:
            self.send(
                child,
                Message(
                    kind="ad_final",
                    payload_id=payload_id,
                    body=dict(message.body),
                    size_bytes=self.config.control_size_bytes,
                ),
            )
        self.on_diffusion_finished(payload_id)

    # ------------------------------------------------------------------
    # Virtual source rounds
    # ------------------------------------------------------------------
    def _schedule_round(self, payload_id: Hashable) -> None:
        self.schedule(
            self.config.round_interval, lambda: self._virtual_source_round(payload_id)
        )

    def _virtual_source_round(self, payload_id: Hashable) -> None:
        token = self._tokens.get(payload_id)
        if token is None:
            return  # The role was handed over in the meantime.
        if (
            self.config.max_rounds is not None
            and token.t // 2 >= self.config.max_rounds
        ):
            self._finalize(payload_id)
            return

        degree = self.config.assumed_degree or max(2, len(self.neighbours))
        keep = keep_probability(token.t, token.h, degree)
        candidates = [n for n in self.neighbours if n != token.previous]
        if not candidates or self.simulator.rng.random() < keep:
            # Keep the token: grow the infection by one hop in every direction.
            self._tokens[payload_id] = token.advanced()
            self._spread_step(payload_id, self._next_wave(payload_id))
            self._schedule_round(payload_id)
            return

        # Pass the token to a uniformly chosen neighbour (not backwards).
        successor = self.simulator.rng.choice(candidates)
        passed = token.passed_to(successor, self.node_id)
        del self._tokens[payload_id]
        state = self._state(payload_id)
        if successor not in state.children and successor not in state.received_from:
            state.add_children([successor])
            self.send(successor, self._payload_message(payload_id))
        self.send(
            successor,
            Message(
                kind="ad_token",
                payload_id=payload_id,
                body={"t": passed.t, "h": passed.h, "path": passed.path},
                size_bytes=self.config.control_size_bytes,
            ),
        )

    def _finalize(self, payload_id: Hashable) -> None:
        """Send the final spreading request down the tree and stop."""
        del self._tokens[payload_id]
        self._finalized[payload_id] = True
        state = self._state(payload_id)
        for child in state.children:
            self.send(
                child,
                Message(
                    kind="ad_final",
                    payload_id=payload_id,
                    body={"from_virtual_source": True},
                    size_bytes=self.config.control_size_bytes,
                ),
            )
        self.on_diffusion_finished(payload_id)

    # ------------------------------------------------------------------
    # Spreading machinery
    # ------------------------------------------------------------------
    def _spread_step(
        self,
        payload_id: Hashable,
        wave: int,
        exclude: Optional[Hashable] = None,
    ) -> None:
        state = self._state(payload_id)
        state.processed_waves.add(wave)
        # The wave travels along every infection-tree link (children and the
        # parent), so that a "keep" round grows the infected subgraph in all
        # directions, not only below the current virtual source.  The
        # ``exclude`` direction (towards the previous virtual source during a
        # re-balancing step) is skipped at this node only.
        tree_links = list(state.children)
        if state.parent is not None:
            tree_links.append(state.parent)
        for link in tree_links:
            if link == exclude:
                continue
            self.send(
                link,
                Message(
                    kind="ad_spread",
                    payload_id=payload_id,
                    body={"wave": wave},
                    size_bytes=self.config.control_size_bytes,
                ),
            )
        targets = state.spread_targets(self.neighbours, exclude=exclude)
        for target in targets:
            self.send(target, self._payload_message(payload_id))
        state.add_children(targets)

    def _payload_message(self, payload_id: Hashable) -> Message:
        return Message(
            kind="ad_payload",
            payload_id=payload_id,
            size_bytes=self.config.payload_size_bytes,
        )

    def _next_wave(self, payload_id: Hashable) -> int:
        value = self._wave_sequence.get(payload_id, 0) + 1
        self._wave_sequence[payload_id] = value
        return value

    def _state(self, payload_id: Hashable) -> InfectionState:
        if payload_id not in self._infections:
            self._infections[payload_id] = InfectionState(payload_id=payload_id)
        return self._infections[payload_id]

    # ------------------------------------------------------------------
    # Hooks and introspection
    # ------------------------------------------------------------------
    def on_diffusion_finished(self, payload_id: Hashable) -> None:
        """Called when the final spreading request reaches this node."""

    def infection_state(self, payload_id: Hashable) -> Optional[InfectionState]:
        """This node's infection bookkeeping for ``payload_id`` (or ``None``)."""
        return self._infections.get(payload_id)

    def holds_token(self, payload_id: Hashable) -> bool:
        """Whether this node is currently the virtual source."""
        return payload_id in self._tokens


@dataclass
class DiffusionRunResult:
    """Outcome of a standalone adaptive-diffusion run.

    Attributes:
        messages: total messages sent (payload + control).
        payload_messages: only ``ad_payload`` transmissions.
        reach: number of nodes that obtained the payload.
        completion_time: simulated time when the last node was infected
            (``None`` if the run stopped before reaching everyone).
        rounds_executed: upper bound on virtual-source rounds (from the clock).
        simulator: the simulator, for further inspection by callers.
    """

    messages: int
    payload_messages: int
    reach: int
    completion_time: Optional[float]
    rounds_executed: int
    simulator: Simulator


def run_adaptive_diffusion(
    graph: nx.Graph,
    source: Hashable,
    payload_id: Hashable = "tx",
    config: Optional[AdaptiveDiffusionConfig] = None,
    seed: Optional[int] = None,
    max_time: float = 10_000.0,
) -> DiffusionRunResult:
    """Run adaptive diffusion until the payload reached every node.

    This is the harness behind the paper's Section V-A measurement: adaptive
    diffusion is not normally used to reach all nodes, but measuring the cost
    of doing so gives the 12,500-vs-7,000-messages comparison against flood
    and prune.  The simulation advances in round-interval steps and stops as
    soon as every node is infected (or ``max_time`` passes).
    """
    config = config or AdaptiveDiffusionConfig()
    simulator = Simulator(graph, latency=ConstantLatency(0.1), seed=seed)
    simulator.populate(lambda node_id: AdaptiveDiffusionNode(node_id, config))
    origin = simulator.node(source)
    assert isinstance(origin, AdaptiveDiffusionNode)
    origin.originate(payload_id)

    total_nodes = graph.number_of_nodes()
    while simulator.metrics.reach(payload_id) < total_nodes:
        if simulator.now >= max_time or simulator.pending_events == 0:
            break
        simulator.run(until=simulator.now + config.round_interval)

    metrics = simulator.metrics
    return DiffusionRunResult(
        messages=metrics.message_count(payload_id=payload_id),
        payload_messages=metrics.message_count(kind="ad_payload", payload_id=payload_id),
        reach=metrics.reach(payload_id),
        completion_time=metrics.completion_time(payload_id)
        if metrics.reach(payload_id) == total_nodes
        else None,
        rounds_executed=int(simulator.now / config.round_interval),
        simulator=simulator,
    )
