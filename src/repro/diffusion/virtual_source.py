"""Virtual source token state and the adaptive-diffusion hand-over probability.

Fanti et al. prove that, on a d-regular tree, the true source is uniformly
hidden among all infected nodes if the virtual source *keeps* the token with
probability

    alpha_d(t, h) = ((d-1)^(t/2 - h + 1) - 1) / ((d-1)^(t/2 + 1) - 1)    (d > 2)
    alpha_2(t, h) = (t - 2h + 2) / (t + 2)                               (d = 2)

where ``t`` is the (even) round counter and ``h`` the number of hops the
token has travelled from the true source.  The paper under reproduction
describes the same mechanism from the transfer side ("transfer the virtual
source token with probability alpha"); both views are exposed here as
:func:`keep_probability` and :func:`transfer_probability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional


def keep_probability(t: int, h: int, degree: int) -> float:
    """Probability that the virtual source keeps the token this round.

    Args:
        t: even round counter (the infection radius is ``t/2``).
        h: hops the token has travelled from the true source (``1 <= h <= t/2``).
        degree: assumed (regular-tree) degree of the overlay.

    Raises:
        ValueError: on malformed arguments.
    """
    if t < 2 or t % 2 != 0:
        raise ValueError("t must be an even integer >= 2")
    if h < 1 or h > t // 2:
        raise ValueError("h must satisfy 1 <= h <= t/2")
    if degree < 2:
        raise ValueError("degree must be at least 2")
    half_t = t // 2
    if degree == 2:
        return (t - 2 * h + 2) / (t + 2)
    base = degree - 1
    numerator = base ** (half_t - h + 1) - 1
    denominator = base ** (half_t + 1) - 1
    return numerator / denominator


def transfer_probability(t: int, h: int, degree: int) -> float:
    """Probability that the token is passed to a new node this round."""
    return 1.0 - keep_probability(t, h, degree)


@dataclass
class VirtualSourceToken:
    """The state carried along with the virtual source role.

    Attributes:
        payload_id: the broadcast this token belongs to.
        t: even round counter (starts at 2 once the first ring is infected).
        h: hops the token travelled from the true source.
        previous: node the token was received from (``None`` for the very
            first virtual source).
        path: identities of all virtual sources so far, in order.  This is
            simulation-side bookkeeping used by the evaluation; it is not
            information a protocol participant would forward.
    """

    payload_id: Hashable
    t: int = 2
    h: int = 1
    previous: Optional[Hashable] = None
    path: List[Hashable] = field(default_factory=list)

    def advanced(self) -> "VirtualSourceToken":
        """The token after one round in which the holder kept it."""
        return VirtualSourceToken(
            payload_id=self.payload_id,
            t=self.t + 2,
            h=self.h,
            previous=self.previous,
            path=list(self.path),
        )

    def passed_to(self, holder: Hashable, new_previous: Hashable) -> "VirtualSourceToken":
        """The token after being handed from ``new_previous`` to ``holder``."""
        return VirtualSourceToken(
            payload_id=self.payload_id,
            t=self.t + 2,
            h=self.h + 1,
            previous=new_previous,
            path=list(self.path) + [holder],
        )
