"""repro — reproduction of *A Flexible Network Approach to Privacy of
Blockchain Transactions* (Mödinger, Kopp, Kargl, Hauck — ICDCS 2018).

The package implements the paper's three-phase privacy-preserving broadcast
(DC-net → adaptive diffusion → flood-and-prune) together with every substrate
it depends on: a discrete-event network simulator, overlay topologies, a
DC-network with announcements / collisions / blame, adaptive diffusion,
Dandelion and flooding baselines, group management, adversary models and
privacy metrics, plus a small blockchain substrate used by the examples.

Quickstart::

    from repro.core import ProtocolConfig, ThreePhaseBroadcast
    from repro.network.topology import random_regular_overlay

    overlay = random_regular_overlay(200, degree=8, seed=1)
    protocol = ThreePhaseBroadcast(overlay, ProtocolConfig(group_size=5), seed=2)
    result = protocol.broadcast(source=0, payload=b"my transaction")
    print(result.delivered_fraction, result.messages_by_phase)
"""

import logging

from repro.core import (
    BroadcastResult,
    Phase,
    ProtocolConfig,
    ThreePhaseBroadcast,
    ThreePhaseNode,
)

# Library convention: never emit log output unless the application
# configures logging.  Modules log under ``repro.*`` child loggers
# (engines, runners, sweeps); a NullHandler on the package root keeps
# the "No handlers could be found" warning away without installing any
# real handler.
logging.getLogger(__name__).addHandler(logging.NullHandler())

__version__ = "0.1.0"

__all__ = [
    "BroadcastResult",
    "Phase",
    "ProtocolConfig",
    "ThreePhaseBroadcast",
    "ThreePhaseNode",
    "__version__",
]
