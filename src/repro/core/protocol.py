"""Per-node behaviour of the three-phase protocol.

:class:`ThreePhaseNode` extends the adaptive-diffusion behaviour with the two
pieces the combined protocol adds on top:

* Phase-1 knowledge delivery: group members learn the payload through the
  DC-net (driven by the orchestrator) and simply record it, so that later
  diffusion or flood copies are recognised as duplicates.
* Phase-3 flooding: when the final spreading request (``ad_final``) arrives,
  the node switches to flood-and-prune and pushes the payload to all its
  neighbours; plain ``flood`` messages are handled with the usual
  first-reception-forwards rule.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.core.config import ProtocolConfig
from repro.diffusion.adaptive import AdaptiveDiffusionConfig, AdaptiveDiffusionNode
from repro.network.message import Message


class ThreePhaseNode(AdaptiveDiffusionNode):
    """A peer participating in the three-phase privacy-preserving broadcast."""

    #: Message kind of Phase-1 traffic (DC-net share exchanges).
    DC_KIND = "dc_exchange"
    #: Message kind of Phase-3 traffic.
    FLOOD_KIND = "flood"

    def __init__(
        self,
        node_id: Hashable,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.protocol_config = config or ProtocolConfig()
        diffusion_config = AdaptiveDiffusionConfig(
            max_rounds=self.protocol_config.diffusion_depth,
            round_interval=self.protocol_config.diffusion_round_interval,
            payload_size_bytes=self.protocol_config.payload_size_bytes,
            control_size_bytes=self.protocol_config.control_size_bytes,
        )
        super().__init__(node_id, diffusion_config)
        self._flooded: Set[Hashable] = set()

    # ------------------------------------------------------------------
    # Phase 1: DC-net knowledge delivery (driven by the orchestrator)
    # ------------------------------------------------------------------
    def learn_from_group(self, payload_id: Hashable) -> None:
        """Record that the DC-net phase delivered the payload to this node."""
        state = self._state(payload_id)
        if state.note_received(None, self.now):
            self.mark_delivered(payload_id)

    # ------------------------------------------------------------------
    # Phase 2 → 3 transition
    # ------------------------------------------------------------------
    def on_diffusion_finished(self, payload_id: Hashable) -> None:
        """Switch to flood-and-prune when the final spreading request arrives."""
        self._start_flood(payload_id, exclude=None)

    # ------------------------------------------------------------------
    # Message handling for the kinds adaptive diffusion does not know
    # ------------------------------------------------------------------
    def on_unhandled_message(self, sender: Hashable, message: Message) -> None:
        if message.kind == self.DC_KIND:
            # Phase-1 share traffic: indistinguishable random bytes to anyone
            # but the group members, who obtain the payload through
            # :meth:`learn_from_group`.  Nothing to do here.
            return
        if message.kind == self.FLOOD_KIND:
            self._handle_flood(sender, message)
            return
        super().on_unhandled_message(sender, message)

    def _handle_flood(self, sender: Hashable, message: Message) -> None:
        payload_id = message.payload_id
        state = self._state(payload_id)
        first_delivery = state.note_received(sender, self.now)
        if first_delivery:
            self.mark_delivered(payload_id)
        if payload_id in self._flooded:
            return  # prune
        if first_delivery:
            self._start_flood(payload_id, exclude=sender)
        # Nodes that already obtained the payload in an earlier phase do not
        # re-flood on reception: the nodes that must switch to flooding are
        # reached by the final spreading request instead.

    def _start_flood(self, payload_id: Hashable, exclude: Optional[Hashable]) -> None:
        if payload_id in self._flooded:
            return
        self._flooded.add(payload_id)
        for peer in self.neighbours:
            if peer != exclude:
                self.send(
                    peer,
                    Message(
                        kind=self.FLOOD_KIND,
                        payload_id=payload_id,
                        size_bytes=self.protocol_config.payload_size_bytes,
                    ),
                )

    def has_flooded(self, payload_id: Hashable) -> bool:
        """Whether this node already flooded the payload (Phase 3)."""
        return payload_id in self._flooded
