"""Phase identifiers and the per-broadcast phase timeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class Phase(enum.Enum):
    """The three phases of the protocol (Fig. 5 of the paper)."""

    DC_NET = "dc_net"
    ADAPTIVE_DIFFUSION = "adaptive_diffusion"
    FLOOD = "flood"


@dataclass
class PhaseTimeline:
    """Start times of each phase for one broadcast.

    A phase that never started (e.g. the flood phase of a broadcast that was
    still diffusing when the simulation stopped) has no entry.
    """

    starts: Dict[Phase, float] = field(default_factory=dict)

    def record(self, phase: Phase, time: float) -> None:
        """Record the first start of ``phase`` (later calls are ignored)."""
        self.starts.setdefault(phase, time)

    def start_of(self, phase: Phase) -> Optional[float]:
        """Start time of ``phase``, or ``None`` if it never started."""
        return self.starts.get(phase)

    def duration_of(self, phase: Phase, end_time: float) -> Optional[float]:
        """Duration of ``phase`` given the overall ``end_time`` of the run.

        The duration of a phase is the gap to the next started phase (or to
        ``end_time`` for the last phase).  Returns ``None`` when the phase
        never started.
        """
        if phase not in self.starts:
            return None
        ordered = sorted(self.starts.items(), key=lambda item: item[1])
        for index, (current, start) in enumerate(ordered):
            if current is phase:
                if index + 1 < len(ordered):
                    return ordered[index + 1][1] - start
                return end_time - start
        return None  # pragma: no cover - unreachable
