"""The paper's contribution: the flexible three-phase privacy-preserving broadcast.

A transaction is disseminated in three phases (Section IV-B):

1. **DC-net** — the originator shares the transaction anonymously inside its
   group of ``k`` nodes (:mod:`repro.dcnet`), gaining sender k-anonymity that
   holds against arbitrarily strong passive observers.
2. **Adaptive diffusion** — the group member whose hashed identity is closest
   to the hash of the transaction becomes the initial virtual source
   (:mod:`repro.core.transitions`) and spreads the transaction with adaptive
   diffusion for ``d`` rounds (:mod:`repro.diffusion`).
3. **Flood and prune** — the final virtual source's "final spreading
   request" switches every reached node to plain flooding, guaranteeing
   delivery to the entire network (:mod:`repro.broadcast.flood` semantics).

:class:`~repro.core.protocol.ThreePhaseNode` implements the per-node
behaviour; :class:`~repro.core.orchestrator.ThreePhaseBroadcast` wires the
group directory, the simulator and the phases together and is the main entry
point of the library.
"""

from repro.core.config import ProtocolConfig
from repro.core.orchestrator import BroadcastResult, ThreePhaseBroadcast
from repro.core.phases import Phase, PhaseTimeline
from repro.core.protocol import ThreePhaseNode
from repro.core.transitions import select_virtual_source, verify_virtual_source

__all__ = [
    "ProtocolConfig",
    "BroadcastResult",
    "ThreePhaseBroadcast",
    "Phase",
    "PhaseTimeline",
    "ThreePhaseNode",
    "select_virtual_source",
    "verify_virtual_source",
]
