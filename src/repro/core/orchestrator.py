"""End-to-end orchestration of the three-phase broadcast.

:class:`ThreePhaseBroadcast` is the library's main entry point.  It owns the
overlay, the group directory, the simulator and the protocol nodes, and for
every broadcast it

1. runs the originator's DC-net group session (Phase 1), injecting the share
   traffic into the simulator so observers and metrics see it,
2. delivers the payload knowledge to all group members and hands the virtual
   source role to the member selected by the hash rule (Phase 1 → 2),
3. lets the event-driven adaptive diffusion and the final flood play out
   (Phases 2 and 3), and
4. returns a :class:`BroadcastResult` with reach, per-phase message counts,
   timings and the ground truth needed by the privacy experiments.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

import networkx as nx

from repro.core.config import ProtocolConfig
from repro.core.phases import Phase, PhaseTimeline
from repro.core.protocol import ThreePhaseNode
from repro.core.transitions import select_virtual_source
from repro.dcnet.group_session import DCNetGroupSession
from repro.groups.directory import GroupDirectory
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message
from repro.network.simulator import Simulator


@dataclass
class BroadcastResult:
    """Outcome of one three-phase broadcast.

    Attributes:
        payload_id: identifier of the broadcast.
        source: ground-truth originator (simulation-side knowledge only).
        group: members of the originator's DC-net group.
        virtual_source: group member selected as the initial virtual source.
        reach: number of nodes that obtained the payload.
        delivered_fraction: ``reach`` divided by the network size.
        completion_time: simulated time at which the last node was reached
            (``None`` if the broadcast did not reach everyone).
        messages_by_phase: message counts per :class:`Phase`.
        messages_total: total messages across all phases.
        dc_rounds: number of DC-net rounds Phase 1 used.
        timeline: phase start times.
    """

    payload_id: Hashable
    source: Hashable
    group: List[Hashable]
    virtual_source: Hashable
    reach: int
    delivered_fraction: float
    completion_time: Optional[float]
    messages_by_phase: Dict[Phase, int] = field(default_factory=dict)
    messages_total: int = 0
    dc_rounds: int = 0
    timeline: PhaseTimeline = field(default_factory=PhaseTimeline)


class ThreePhaseBroadcast:
    """The three-phase privacy-preserving broadcast over one overlay.

    An instance is a long-lived *session*: construct it once per overlay
    (optionally under shared :class:`~repro.network.conditions.NetworkConditions`)
    and call :meth:`broadcast` any number of times.  The protocol registry
    (:mod:`repro.protocols`) builds exactly such sessions, so the three-phase
    protocol runs in the same harness as every baseline.

    Example:
        >>> from repro.network.topology import random_regular_overlay
        >>> from repro.core import ProtocolConfig, ThreePhaseBroadcast
        >>> overlay = random_regular_overlay(100, degree=8, seed=1)
        >>> protocol = ThreePhaseBroadcast(overlay, ProtocolConfig(group_size=4), seed=2)
        >>> result = protocol.broadcast(source=0, payload=b"tx")
        >>> result.delivered_fraction
        1.0
    """

    def __init__(
        self,
        graph: nx.Graph,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        latency: Optional[LatencyModel] = None,
        directory: Optional[GroupDirectory] = None,
        conditions: Optional[NetworkConditions] = None,
        engine: str = "event",
        shards: Optional[int] = None,
    ) -> None:
        self.config = config or ProtocolConfig()
        self.rng = random.Random(seed)
        self.graph = graph
        if latency is None:
            if conditions is not None:
                # Build the latency from a dedicated RNG so that lazily
                # drawing models (PerEdgeLatency) never perturb the protocol
                # stream ``self.rng``.
                latency = conditions.build_latency(
                    random.Random(None if seed is None else seed + 2)
                )
            else:
                latency = ConstantLatency(0.1)
        self.conditions = conditions
        self.simulator = Simulator(
            graph,
            latency=latency,
            seed=None if seed is None else seed + 1,
            conditions=conditions,
            engine=engine,
            shards=shards,
        )
        # Per-instance counter for auto-generated payload ids: two systems
        # constructed the same way hand out the same id sequence regardless
        # of what else ran in the process — a replayability requirement for
        # parallel sweeps (a module-level counter would depend on process
        # history).
        self._payload_counter = itertools.count()
        self.simulator.populate(
            lambda node_id: ThreePhaseNode(node_id, self.config)
        )
        self.directory = directory or GroupDirectory(
            sorted(graph.nodes, key=repr), self.config.group_size, self.rng
        )
        self._results: List[BroadcastResult] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def results(self) -> List[BroadcastResult]:
        """Results of every broadcast run so far."""
        return list(self._results)

    def node(self, node_id: Hashable) -> ThreePhaseNode:
        """The protocol node behaviour registered for ``node_id``."""
        node = self.simulator.node(node_id)
        assert isinstance(node, ThreePhaseNode)
        return node

    def broadcast(
        self,
        source: Hashable,
        payload: bytes,
        payload_id: Optional[Hashable] = None,
        run_to_completion: bool = True,
    ) -> BroadcastResult:
        """Broadcast ``payload`` from ``source`` through all three phases.

        Args:
            source: the originating node.
            payload: transaction bytes (also the input of the virtual-source
                hash selection).
            payload_id: explicit identifier; generated when omitted.
            run_to_completion: when ``True`` the simulator runs until idle
                before the result is computed.

        Returns:
            The :class:`BroadcastResult` for this broadcast.
        """
        if payload_id is None:
            payload_id = f"payload-{next(self._payload_counter)}"
        timeline = PhaseTimeline()
        start_time = self.simulator.now
        timeline.record(Phase.DC_NET, start_time)

        group = self.directory.members_of(source)
        dc_rounds = self._run_phase_one(source, group, payload, payload_id)
        phase_one_end = start_time + dc_rounds * self.config.dc_round_interval

        virtual_source = select_virtual_source(payload, group)
        cancel_flood_hook = self._schedule_phase_two(
            payload_id, group, virtual_source, phase_one_end, timeline
        )

        if run_to_completion:
            self.simulator.run_until_idle()
            # The event queue is drained: a broadcast that never reached
            # Phase 3 by now never will, so drop its pending flood hook
            # rather than letting a later broadcast that reuses the same
            # payload id fire it into this (already final) timeline.
            cancel_flood_hook()

        result = self._collect_result(
            payload_id, source, group, virtual_source, dc_rounds, timeline
        )
        self._results.append(result)
        return result

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _run_phase_one(
        self,
        source: Hashable,
        group: List[Hashable],
        payload: bytes,
        payload_id: Hashable,
    ) -> int:
        """Run the DC-net group session and inject its traffic; returns rounds."""
        session = DCNetGroupSession(
            group,
            self.rng,
            announcement_rounds=self.config.announcement_rounds,
        )
        session.queue_message(source, payload)
        outcomes = session.run_until_empty(max_rounds=100)

        # Inject the share traffic into the simulator so that metrics and
        # adversary views include Phase 1.  Every ordered pair of group
        # members exchanges one message per protocol step; the exact byte
        # content is irrelevant to observers (uniformly random shares).
        for outcome in outcomes:
            round_start = (
                self.simulator.now
                + (outcome.round_index - 1) * self.config.dc_round_interval
            )
            self._inject_dc_traffic(group, payload_id, outcome.messages_sent, round_start)
        return len(outcomes)

    def _inject_dc_traffic(
        self,
        group: List[Hashable],
        payload_id: Hashable,
        messages: int,
        round_start: float,
    ) -> None:
        pairs = [
            (a, b) for a in group for b in group if a != b
        ]
        if not pairs:
            return
        # All members transmit simultaneously in a real DC-net round; the
        # injection shuffles pair order and jitters the send times so that the
        # observable traffic pattern carries no information about which member
        # is the actual sender (the anonymity property of Phase 1).
        self.rng.shuffle(pairs)
        share_size = max(
            8, self.config.payload_size_bytes // max(1, len(group) - 1)
        )
        base_delay = max(0.0, round_start - self.simulator.now)
        for index in range(messages):
            sender, receiver = pairs[index % len(pairs)]
            jitter = self.rng.uniform(0.0, self.config.dc_round_interval * 0.5)
            self.simulator.schedule(
                base_delay + jitter,
                lambda s=sender, r=receiver: self.simulator.send(
                    s,
                    r,
                    Message(
                        kind=ThreePhaseNode.DC_KIND,
                        payload_id=payload_id,
                        size_bytes=share_size,
                    ),
                    direct=True,
                ),
            )

    # ------------------------------------------------------------------
    # Phase 2 and 3
    # ------------------------------------------------------------------
    def _schedule_phase_two(
        self,
        payload_id: Hashable,
        group: List[Hashable],
        virtual_source: Hashable,
        phase_one_end: float,
        timeline: PhaseTimeline,
    ) -> Callable[[], None]:
        delay = max(0.0, phase_one_end - self.simulator.now)

        def start_phase_two() -> None:
            timeline.record(Phase.ADAPTIVE_DIFFUSION, self.simulator.now)
            for member in group:
                self.node(member).learn_from_group(payload_id)
            self.node(virtual_source).become_virtual_source(payload_id)

        self.simulator.schedule(delay, start_phase_two)

        # The first flood message observed for this payload marks the Phase 3
        # boundary.  The observation store fires the hook exactly once, at
        # delivery time, so no polling events are needed and a broadcast that
        # never reaches Phase 3 simply never records a flood start.
        return self.simulator.store.on_first(
            payload_id,
            ThreePhaseNode.FLOOD_KIND,
            lambda obs: timeline.record(Phase.FLOOD, obs.time),
        )

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def _collect_result(
        self,
        payload_id: Hashable,
        source: Hashable,
        group: List[Hashable],
        virtual_source: Hashable,
        dc_rounds: int,
        timeline: PhaseTimeline,
    ) -> BroadcastResult:
        metrics = self.simulator.metrics
        total_nodes = self.graph.number_of_nodes()
        reach = metrics.reach(payload_id)
        phase_counts = {
            Phase.DC_NET: metrics.message_count(
                kind=ThreePhaseNode.DC_KIND, payload_id=payload_id
            ),
            Phase.ADAPTIVE_DIFFUSION: sum(
                metrics.message_count(kind=kind, payload_id=payload_id)
                for kind in ("ad_payload", "ad_spread", "ad_token", "ad_final")
            ),
            Phase.FLOOD: metrics.message_count(
                kind=ThreePhaseNode.FLOOD_KIND, payload_id=payload_id
            ),
        }
        return BroadcastResult(
            payload_id=payload_id,
            source=source,
            group=list(group),
            virtual_source=virtual_source,
            reach=reach,
            delivered_fraction=reach / total_nodes,
            completion_time=metrics.completion_time(payload_id)
            if reach == total_nodes
            else None,
            messages_by_phase=phase_counts,
            messages_total=sum(phase_counts.values()),
            dc_rounds=dc_rounds,
            timeline=timeline,
        )
