"""Phase 1 → Phase 2 transition: deterministic virtual-source selection.

Section IV-B: *"the node whose hashed identity, e.g., public key, is closest
to the hash of the message creates the initial virtual source token and
starts the adaptive diffusion"*.  The rule needs three properties, all
checked by the tests:

* no additional messages — it is a pure function of data every member holds,
* independence of the originator — only the message content matters,
* verifiability — every group member can recompute and check the selection.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Union

from repro.crypto.hashing import closest_identity

PayloadLike = Union[bytes, str, int]


def select_virtual_source(
    payload: PayloadLike, group_members: Iterable[Hashable]
) -> Hashable:
    """Deterministically select the initial virtual source for ``payload``.

    Raises:
        ValueError: if the group is empty.
    """
    return closest_identity(payload, list(group_members))


def verify_virtual_source(
    payload: PayloadLike,
    group_members: Iterable[Hashable],
    claimed: Hashable,
) -> bool:
    """Check a claimed virtual-source selection (what honest members do).

    Any group member can detect a node that starts Phase 2 without being the
    legitimately selected virtual source, which is the misbehaviour-detection
    property the paper requires of the transition.
    """
    return select_virtual_source(payload, group_members) == claimed
