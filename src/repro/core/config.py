"""Configuration of the three-phase protocol.

The paper emphasises *flexibility*: the two knobs are the DC-net group size
``k`` (the cryptographic privacy floor, "typically a value between four and
ten") and the adaptive-diffusion depth ``d`` (how far the statistical phase
carries the transaction before the efficient flood takes over, "chosen based
on the network diameter").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of the three-phase broadcast.

    Attributes:
        group_size: the DC-net group size ``k``; the privacy floor is
            k-anonymity among the honest group members.
        diffusion_depth: the adaptive diffusion round budget ``d`` before the
            final spreading request is issued.
        dc_round_interval: simulated time one DC-net round occupies.
        diffusion_round_interval: simulated time per adaptive-diffusion round.
        payload_size_bytes: accounted size of transaction-carrying messages.
        control_size_bytes: accounted size of control messages (tokens,
            spread instructions, final spreading requests).
        announcement_rounds: whether Phase 1 uses the 32-bit
            length-announcement optimisation (Section V-A).
    """

    group_size: int = 5
    diffusion_depth: int = 4
    dc_round_interval: float = 1.0
    diffusion_round_interval: float = 1.0
    payload_size_bytes: int = 256
    control_size_bytes: int = 32
    announcement_rounds: bool = True

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ValueError("the group size k must be at least 2")
        if self.diffusion_depth < 1:
            raise ValueError("the diffusion depth d must be at least 1")
        if self.dc_round_interval <= 0 or self.diffusion_round_interval <= 0:
            raise ValueError("round intervals must be positive")
        if self.payload_size_bytes <= 0 or self.control_size_bytes <= 0:
            raise ValueError("message sizes must be positive")

    @property
    def max_group_size(self) -> int:
        """Largest group size before a split: ``2k - 1`` (Section IV-C)."""
        return 2 * self.group_size - 1
