"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    Floats are shown with three decimals; every other value with ``str``.
    """
    if not headers:
        raise ValueError("a table needs at least one column")

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered_rows = [[cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match the header")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return " | ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)
