"""Experiment harness helpers: repetitions, statistics and table rendering.

The benchmarks regenerate the paper's quantitative claims by sweeping a
parameter (adversary fraction, group size, diffusion depth, ...), repeating
each configuration over several seeds, and printing a small table of the
aggregated results.  This package contains the shared machinery so every
benchmark stays a thin, declarative script.
"""

from repro.analysis.experiment import ExperimentResult, attack_experiment
from repro.analysis.reporting import format_table
from repro.analysis.stats import Summary, confidence_interval, summarize
from repro.analysis.sweep import sweep

__all__ = [
    "ExperimentResult",
    "attack_experiment",
    "format_table",
    "Summary",
    "confidence_interval",
    "summarize",
    "sweep",
]
