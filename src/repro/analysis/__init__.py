"""Experiment harness helpers: repetitions, statistics and table rendering.

The benchmarks regenerate the paper's quantitative claims by sweeping a
parameter (adversary fraction, group size, diffusion depth, ...), repeating
each configuration over several seeds, and printing a small table of the
aggregated results.  This package contains the shared machinery so every
benchmark stays a thin, declarative script.

Sweeps come in two flavours with one contract: :func:`~repro.analysis.sweep.sweep`
runs serially, :class:`~repro.analysis.parallel.ParallelSweep` (or the
:func:`~repro.analysis.parallel.run_parallel` shorthand) fans the same runs —
same derived seeds, same aggregation — out over worker processes.
"""

from repro.analysis.experiment import (
    ESTIMATORS,
    ExperimentResult,
    attack_experiment,
    run_attack_experiment,
)
from repro.analysis.parallel import ParallelSweep, run_parallel
from repro.analysis.reporting import format_table
from repro.analysis.stats import Summary, confidence_interval, summarize
from repro.analysis.sweep import aggregate_runs, derive_seed, sweep

__all__ = [
    "ESTIMATORS",
    "ExperimentResult",
    "attack_experiment",
    "run_attack_experiment",
    "format_table",
    "ParallelSweep",
    "run_parallel",
    "Summary",
    "confidence_interval",
    "summarize",
    "aggregate_runs",
    "derive_seed",
    "sweep",
]
