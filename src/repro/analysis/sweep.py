"""Parameter sweeps with per-configuration repetitions.

The seed-derivation and aggregation rules live in this module and are shared
with :mod:`repro.analysis.parallel`, so a parallel sweep produces exactly the
same numbers as a serial one for the same ``base_seed``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, TypeVar

ParameterValue = TypeVar("ParameterValue")

SweepRunner = Callable[[ParameterValue, int], Dict[str, float]]


def derive_seed(
    value_index: int, repetition: int, repetitions: int, base_seed: int
) -> int:
    """The seed for one (parameter value, repetition) run of a sweep.

    Seeds are ``base_seed`` plus a distinct offset per run, so sweeps are
    reproducible, runs never share a seed, and the schedule is independent of
    execution order — the property the parallel engine relies on.
    """
    return base_seed + value_index * repetitions + repetition


def aggregate_runs(
    value: ParameterValue, runs: Sequence[Dict[str, float]]
) -> Dict[str, float]:
    """Mean every metric over the repetitions of one parameter value.

    Returns one flat dictionary per parameter value containing the mean of
    every metric, plus ``"value"`` (when the parameter is numeric) and
    ``"repetitions"`` entries.
    """
    aggregated: Dict[str, float] = {}
    for key in runs[0]:
        aggregated[key] = sum(run[key] for run in runs) / len(runs)
    if isinstance(value, (int, float)):
        aggregated.setdefault("value", float(value))
    aggregated["repetitions"] = float(len(runs))
    return aggregated


def sweep(
    values: Sequence[ParameterValue],
    runner: SweepRunner,
    repetitions: int = 3,
    base_seed: int = 0,
) -> List[Dict[str, float]]:
    """Run ``runner(value, seed)`` for every value and repetition.

    Args:
        values: the parameter values to sweep over.
        runner: callable returning a flat metric dictionary for one run.
        repetitions: how many seeds per parameter value.
        base_seed: seeds are ``base_seed + repetition_index`` offsets per
            value (see :func:`derive_seed`), so sweeps are reproducible and
            non-overlapping.

    Returns:
        One aggregated dictionary per parameter value (see
        :func:`aggregate_runs`).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    results: List[Dict[str, float]] = []
    for index, value in enumerate(values):
        runs = [
            runner(value, derive_seed(index, repetition, repetitions, base_seed))
            for repetition in range(repetitions)
        ]
        results.append(aggregate_runs(value, runs))
    return results
