"""Parameter sweeps with per-configuration repetitions."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, TypeVar

ParameterValue = TypeVar("ParameterValue")


def sweep(
    values: Sequence[ParameterValue],
    runner: Callable[[ParameterValue, int], Dict[str, float]],
    repetitions: int = 3,
    base_seed: int = 0,
) -> List[Dict[str, float]]:
    """Run ``runner(value, seed)`` for every value and repetition.

    Args:
        values: the parameter values to sweep over.
        runner: callable returning a flat metric dictionary for one run.
        repetitions: how many seeds per parameter value.
        base_seed: seeds are ``base_seed + repetition_index`` offsets per
            value, so sweeps are reproducible and non-overlapping.

    Returns:
        One aggregated dictionary per parameter value containing the mean of
        every metric over the repetitions, plus ``"value"`` (when numeric) and
        ``"repetitions"`` entries.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    results: List[Dict[str, float]] = []
    for index, value in enumerate(values):
        runs = [
            runner(value, base_seed + index * repetitions + repetition)
            for repetition in range(repetitions)
        ]
        aggregated: Dict[str, float] = {}
        for key in runs[0]:
            aggregated[key] = sum(run[key] for run in runs) / len(runs)
        if isinstance(value, (int, float)):
            aggregated.setdefault("value", float(value))
        aggregated["repetitions"] = float(repetitions)
        results.append(aggregated)
    return results
