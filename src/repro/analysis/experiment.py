"""Registry-driven attack experiments shared by benchmarks and examples.

The central privacy experiment of this reproduction is always the same
shape: broadcast many transactions from random sources with some protocol,
let a botnet-scale adversary watch a fraction of the network, and measure
how often a source estimator identifies the true originator.
:func:`run_attack_experiment` implements that loop once for *every* protocol
in the :mod:`repro.protocols` registry, under one set of
:class:`~repro.network.conditions.NetworkConditions` and with a pluggable
estimator (first-spy, rumor-centrality or DC-net collusion, or any
``factory(simulator, observers) → .guess(payload_id)`` callable).

Beyond the point-guess detection statistics, every experiment measures the
attacker's *uncertainty*: estimators expose posterior surfaces through the
posterior protocol (:mod:`repro.privacy.posterior`), which the privacy
engine (:mod:`repro.privacy.metrics`) streams into per-broadcast entropy,
anonymity-set and top-k metrics and the multi-round intersection attack
(:mod:`repro.privacy.intersection`) links across broadcasts that share a
sender.  The measurement is read-only — detection numbers stay seed-for-seed
identical with privacy on or off.

:func:`attack_experiment` remains as the legacy entry point.  It is a thin
shim over the registry that reproduces the historical per-protocol defaults
seed-for-seed: the three-phase protocol on constant 0.1 latency, the
baselines on per-edge 50–300 ms latency, everything lossless.  New code
should call :func:`run_attack_experiment` with explicit conditions so all
protocols face the same environment.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

import networkx as nx

from repro.adversary.botnet import deploy_botnet
from repro.adversary.collusion import DcNetCollusionEstimator
from repro.adversary.first_spy import FirstSpyEstimator
from repro.adversary.rumor_centrality import RumorCentralityEstimator
from repro.broadcast.dandelion import DandelionConfig
from repro.core.config import ProtocolConfig
from repro.network.conditions import NetworkConditions
from repro.network.latency import ConstantLatency
from repro.network.simulator import Simulator
from repro.privacy.detection import DetectionStats, evaluate_attack
from repro.privacy.intersection import IntersectionAttack
from repro.privacy.metrics import (
    PrivacyAccumulator,
    PrivacyConfig,
    PrivacyReport,
    summarize_intersection,
)
from repro.privacy.posterior import Scores, estimator_rank
from repro.protocols import BroadcastProtocol, create_protocol
from repro.telemetry.recorder import NULL_RECORDER, Recorder, recording
from repro.threat.base import AdversaryModel

logger = logging.getLogger(__name__)

#: An estimator factory: called once per attacked broadcast with the
#: session's simulator and the adversary's observer set; the returned object
#: answers ``guess(payload_id)`` (and, for posterior-capable estimators,
#: ``rank(payload_id)`` — see :mod:`repro.privacy.posterior`).
EstimatorFactory = Callable[[Simulator, Set[Hashable]], object]

#: Named estimators selectable by string from every experiment driver.
ESTIMATORS: Dict[str, EstimatorFactory] = {
    "first_spy": FirstSpyEstimator,
    "rumor_centrality": RumorCentralityEstimator,
    "dc_collusion": DcNetCollusionEstimator,
}


def resolve_estimator(
    estimator: Union[str, EstimatorFactory],
) -> Tuple[str, EstimatorFactory]:
    """Resolve an estimator name or factory into ``(name, factory)``.

    Raises:
        ValueError: for an unknown estimator name.
    """
    if not isinstance(estimator, str):
        return getattr(estimator, "__name__", "custom"), estimator
    try:
        return estimator, ESTIMATORS[estimator]
    except KeyError:
        known = ", ".join(sorted(ESTIMATORS))
        raise ValueError(
            f"unknown estimator {estimator!r} (available: {known})"
        ) from None


@dataclass
class ExperimentResult:
    """Outcome of one attack experiment.

    Attributes:
        protocol: name of the evaluated dissemination protocol.
        adversary_fraction: fraction of compromised nodes.
        detection: precision/recall statistics of the deanonymisation attack.
        messages_per_broadcast: mean number of messages per broadcast.
        anonymity_floor: size of the smallest anonymity set the protocol
            guarantees by construction (group size for the three-phase
            protocol, 1 for the baselines).
        estimator: name of the source estimator the adversary used.
        mean_reach: mean delivered fraction over the broadcasts (1.0 under
            lossless conditions for complete protocols; degrades with
            message loss).
        privacy: information-theoretic anonymity metrics of the attack
            (entropy, anonymity sets, top-k success, intersection attack),
            computed from the estimator's posterior surfaces; ``None`` when
            privacy measurement was disabled.
        adversary_metrics: model-specific counters reported by the active
            :class:`~repro.threat.base.AdversaryModel` (repositionings,
            blame verdicts, severed links, ...); empty for the static
            attacker.
        engine_effective: the delivery engine that actually executed the
            broadcasts — ``"batched"`` when a sharded run fell back
            in-process, ``"event"`` when no cohort kernel was eligible,
            ``"mixed"`` when broadcasts disagreed.  Digest-neutral
            metadata; mirrors ``Simulator.engine_effective``.
    """

    protocol: str
    adversary_fraction: float
    detection: DetectionStats
    messages_per_broadcast: float
    anonymity_floor: int
    estimator: str = "first_spy"
    mean_reach: float = 1.0
    privacy: Optional[PrivacyReport] = None
    adversary_metrics: Dict[str, float] = field(default_factory=dict)
    engine_effective: str = "event"


def _pick_sources(
    graph: nx.Graph,
    count: int,
    rng: random.Random,
    sender_pool: Optional[int] = None,
) -> List[Hashable]:
    nodes = sorted(graph.nodes, key=repr)
    if sender_pool is not None:
        # Mixed multi-sender workloads: every broadcast originates from a
        # small, fixed set of senders (wallet hosts, exchange gateways)
        # instead of the whole network.  The pool draw happens before the
        # per-broadcast choices, and only when a pool is requested — the
        # default consumes exactly the historical draws.
        if not 1 <= sender_pool <= len(nodes):
            raise ValueError(
                "sender_pool must be between 1 and the overlay size"
            )
        nodes = sorted(rng.sample(nodes, sender_pool), key=repr)
    return [rng.choice(nodes) for _ in range(count)]


def run_attack_experiment(
    graph: nx.Graph,
    protocol: Union[str, BroadcastProtocol],
    adversary_fraction: float,
    broadcasts: int = 20,
    seed: int = 0,
    conditions: Optional[NetworkConditions] = None,
    estimator: Union[str, EstimatorFactory] = "first_spy",
    sender_pool: Optional[int] = None,
    session_hook: Optional[Callable[[object], None]] = None,
    privacy: Union[bool, PrivacyConfig] = True,
    adversary: Optional[AdversaryModel] = None,
    engine: str = "event",
    shards: Optional[int] = None,
    telemetry: Optional[Recorder] = None,
) -> ExperimentResult:
    """Run the deanonymisation experiment against one registered protocol.

    Args:
        graph: the overlay to simulate on.
        protocol: a registry name (see
            :func:`repro.protocols.available_protocols`) or a ready
            :class:`~repro.protocols.base.BroadcastProtocol` instance (use an
            instance to pass protocol options).
        adversary_fraction: fraction of nodes the adversary controls.  The
            true source of each broadcast is never compromised itself (the
            adversary learning its own transactions is not an attack).
        broadcasts: number of transactions to broadcast and attack.
        seed: master seed of the experiment.
        conditions: shared network conditions; defaults to lossless
            internet-like per-edge latency.
        estimator: estimator name (``"first_spy"``, ``"rumor_centrality"``,
            ``"dc_collusion"``) or a custom factory.
        sender_pool: when given, the broadcast sources are drawn from a
            fixed random pool of this many nodes instead of the whole
            overlay (mixed multi-sender workloads).  ``None`` keeps the
            historical whole-network source schedule draw-for-draw.
        session_hook: called with every freshly built
            :class:`~repro.protocols.base.ProtocolSession` before any
            broadcast runs on it — the seam through which the scenario
            layer installs environment state such as a
            :class:`~repro.network.churn.ChurnSchedule`.  ``None`` changes
            nothing.
        privacy: ``True`` (default) measures the anonymity metrics with the
            default :class:`~repro.privacy.metrics.PrivacyConfig`, a config
            instance customises them, ``False`` skips the measurement
            entirely.  Privacy measurement is a pure read over the
            estimator's posterior surface — it draws no randomness and
            changes no detection numbers.
        adversary: an active :class:`~repro.threat.base.AdversaryModel`
            driving observer placement and per-broadcast behaviour
            (adaptive re-positioning, eclipse scheduling, DC-net blame
            rounds).  ``None`` keeps the historical static botnet code
            path untouched.  A model's default ``place()`` consumes
            exactly the static deployment's RNG draws, so models that do
            not adapt stay seed-for-seed identical to ``adversary=None``.
        engine: simulator delivery engine for every session
            (see :data:`repro.network.simulator.ENGINES`); ``shards``
            sets the sharded engine's worker count.  All engines
            are seed-for-seed identical in every observable, so this only
            affects wall-clock performance.
        telemetry: a :class:`~repro.telemetry.Recorder` to instrument the
            experiment with — installed ambiently for every session built
            inside, with phase spans (``protocol_setup``, ``run``,
            ``privacy``, ``metrics``) around the stages.  ``None`` (the
            default) records nothing and costs nothing; recording never
            changes any observable result.

    Session handling follows the protocol's declaration: a
    ``shared_session`` protocol (three-phase) builds one session for all
    broadcasts and deploys one botnet protected from every source, while
    per-broadcast protocols get a fresh session, seed ``seed * 1000 + index``
    and botnet per broadcast — the schedules of the historical experiment
    loop, kept so results stay comparable across versions.

    Returns:
        The aggregated :class:`ExperimentResult`.

    Raises:
        ValueError: for an unknown protocol or estimator name, or a
            non-positive broadcast count.
    """
    if broadcasts < 1:
        raise ValueError("broadcasts must be at least 1")
    proto = (
        protocol
        if isinstance(protocol, BroadcastProtocol)
        else create_protocol(protocol)
    )
    estimator_name, estimator_factory = resolve_estimator(estimator)
    privacy_config: Optional[PrivacyConfig]
    if privacy is True:
        privacy_config = PrivacyConfig()
    elif privacy is False:
        privacy_config = None
    else:
        privacy_config = privacy

    rng = random.Random(seed)
    sources = _pick_sources(graph, broadcasts, rng, sender_pool=sender_pool)
    outcomes: List[Tuple[Hashable, Optional[Hashable]]] = []
    message_counts: List[float] = []
    reaches: List[float] = []
    accumulator: Optional[PrivacyAccumulator] = None
    linker: Optional[IntersectionAttack] = None
    if privacy_config is not None:
        accumulator = PrivacyAccumulator(
            graph.number_of_nodes(), privacy_config.top_k
        )
        if privacy_config.intersection:
            linker = IntersectionAttack()

    def attack(
        guesser: object, source: Hashable, payload_id: Hashable
    ) -> Optional[Scores]:
        """One broadcast's point guess plus (optionally) its posterior."""
        outcomes.append((source, guesser.guess(payload_id)))
        scores: Optional[Scores] = None
        if accumulator is not None or adversary is not None:
            scores = estimator_rank(guesser, payload_id)
        if accumulator is not None:
            accumulator.add(scores, source)
            if linker is not None:
                linker.observe(source, scores)
        return scores

    # The recorder is installed ambiently so every Simulator the protocol
    # builds — including ones constructed deep inside adapters — attaches
    # without any build-signature change.  ``tel`` is always span-capable
    # (the null recorder's spans are no-ops), keeping the flow unforked.
    recorder = (
        telemetry if telemetry is not None and telemetry.enabled else None
    )
    tel = recorder if recorder is not None else NULL_RECORDER
    logger.debug(
        "running attack experiment: protocol=%s broadcasts=%d engine=%s",
        proto.name,
        broadcasts,
        engine,
    )
    effective_engines: List[str] = []
    with recording(recorder):
        if proto.shared_session:
            with tel.span("protocol_setup", protocol=proto.name):
                session = proto.build(
                    graph, conditions, seed=seed, engine=engine,
                    shards=shards,
                )
                if session_hook is not None:
                    session_hook(session)
                protected = set(sources)
                if adversary is not None:
                    adversary.begin_session(session)
                    monitored = adversary.place(
                        graph, adversary_fraction, rng, protected
                    )
                else:
                    monitored = deploy_botnet(
                        graph, adversary_fraction, rng, protected=protected
                    ).observers
            with tel.span("run", broadcasts=len(sources)):
                for index, source in enumerate(sources):
                    payload_id = f"tx-{seed}-{index}"
                    outcome = proto.broadcast(session, source, payload_id)
                    effective_engines.append(
                        session.simulator.engine_effective
                    )
                    guesser = estimator_factory(session.simulator, monitored)
                    scores = attack(guesser, source, payload_id)
                    if adversary is not None:
                        updated = adversary.after_broadcast(
                            payload_id, source, scores or {}, graph, protected
                        )
                        if updated is not None:
                            monitored = updated
                    message_counts.append(float(outcome.messages))
                    reaches.append(outcome.delivered_fraction)
        else:
            with tel.span("run", broadcasts=len(sources)):
                for index, source in enumerate(sources):
                    run_seed = seed * 1000 + index
                    with tel.span("protocol_setup", broadcast=index):
                        session = proto.build(
                            graph, conditions, seed=run_seed, engine=engine,
                            shards=shards,
                        )
                        if session_hook is not None:
                            session_hook(session)
                        protected = {source}
                        if adversary is not None:
                            adversary.begin_session(session)
                            monitored = adversary.place(
                                graph, adversary_fraction, session.rng,
                                protected,
                            )
                        else:
                            monitored = deploy_botnet(
                                graph, adversary_fraction, session.rng,
                                protected=protected,
                            ).observers
                    payload_id = f"tx-{run_seed}"
                    outcome = proto.broadcast(session, source, payload_id)
                    effective_engines.append(
                        session.simulator.engine_effective
                    )
                    guesser = estimator_factory(session.simulator, monitored)
                    scores = attack(guesser, source, payload_id)
                    if adversary is not None:
                        adversary.after_broadcast(
                            payload_id, source, scores or {}, graph, protected
                        )
                    message_counts.append(float(outcome.messages))
                    reaches.append(outcome.delivered_fraction)

        privacy_report: Optional[PrivacyReport] = None
        if accumulator is not None:
            with tel.span("privacy"):
                intersection = None
                if linker is not None:
                    intersection = summarize_intersection(
                        linker.outcomes(),
                        graph.number_of_nodes(),
                        accumulator.mean_entropy,
                    )
                privacy_report = accumulator.report(
                    intersection=intersection
                )

        effective = set(effective_engines)
        engine_effective = (
            effective.pop() if len(effective) == 1
            else ("mixed" if effective else engine)
        )
        with tel.span("metrics"):
            return ExperimentResult(
                protocol=proto.name,
                adversary_fraction=adversary_fraction,
                detection=evaluate_attack(outcomes),
                messages_per_broadcast=(
                    sum(message_counts) / len(message_counts)
                ),
                anonymity_floor=proto.anonymity_floor(),
                estimator=estimator_name,
                mean_reach=sum(reaches) / len(reaches),
                privacy=privacy_report,
                adversary_metrics=(
                    dict(adversary.metrics()) if adversary else {}
                ),
                engine_effective=engine_effective,
            )


def attack_experiment(
    graph: nx.Graph,
    protocol: str,
    adversary_fraction: float,
    broadcasts: int = 20,
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    dandelion_config: Optional[DandelionConfig] = None,
) -> ExperimentResult:
    """Legacy first-spy experiment entry point (compatibility shim).

    Thin wrapper over :func:`run_attack_experiment` that reproduces the
    historical per-protocol environments seed-for-seed: ``"three_phase"``
    runs on constant 0.1 latency, ``"flood"`` and ``"dandelion"`` on stable
    per-edge 50–300 ms latency, all lossless with the first-spy estimator.
    Any other registered protocol name runs under the default conditions.

    Args:
        graph: the overlay to simulate on.
        protocol: a registered protocol name.
        adversary_fraction: fraction of nodes the adversary controls.
        broadcasts: number of transactions to broadcast and attack.
        seed: master seed of the experiment.
        config: three-phase protocol configuration (protocol "three_phase").
        dandelion_config: Dandelion configuration (protocol "dandelion").

    Returns:
        The aggregated :class:`ExperimentResult`.

    Raises:
        ValueError: for an unknown protocol name.
    """
    conditions: Optional[NetworkConditions]
    if protocol == "three_phase":
        proto: BroadcastProtocol = create_protocol("three_phase", config=config)
        conditions = NetworkConditions(latency=ConstantLatency(0.1))
    elif protocol == "dandelion":
        proto = create_protocol("dandelion", config=dandelion_config)
        conditions = NetworkConditions()
    elif protocol == "flood":
        proto = create_protocol("flood")
        conditions = NetworkConditions()
    else:
        proto = create_protocol(protocol)
        conditions = None
    return run_attack_experiment(
        graph,
        proto,
        adversary_fraction,
        broadcasts=broadcasts,
        seed=seed,
        conditions=conditions,
    )
