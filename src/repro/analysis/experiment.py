"""Reusable attack experiments shared by benchmarks and examples.

The central privacy experiment of this reproduction is always the same
shape: broadcast many transactions from random sources with some protocol,
let a botnet-scale adversary watch a fraction of the network, and measure
how often the first-spy estimator identifies the true originator.  This
module implements that loop once for every protocol so the benchmarks only
differ in which protocol and parameter they sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.adversary.botnet import deploy_botnet
from repro.adversary.first_spy import FirstSpyEstimator
from repro.broadcast.dandelion import DandelionConfig, DandelionNode, assign_stem_successors
from repro.broadcast.flood import FloodNode
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.network.latency import PerEdgeLatency
from repro.network.simulator import Simulator
from repro.privacy.detection import DetectionStats, evaluate_attack


@dataclass
class ExperimentResult:
    """Outcome of one attack experiment.

    Attributes:
        protocol: name of the evaluated dissemination protocol.
        adversary_fraction: fraction of compromised nodes.
        detection: precision/recall statistics of the first-spy attack.
        messages_per_broadcast: mean number of messages per broadcast.
        anonymity_floor: size of the smallest anonymity set the protocol
            guarantees by construction (group size for the three-phase
            protocol, 1 for the baselines).
    """

    protocol: str
    adversary_fraction: float
    detection: DetectionStats
    messages_per_broadcast: float
    anonymity_floor: int


def _pick_sources(
    graph: nx.Graph, count: int, rng: random.Random
) -> List[Hashable]:
    nodes = sorted(graph.nodes, key=repr)
    return [rng.choice(nodes) for _ in range(count)]


def attack_experiment(
    graph: nx.Graph,
    protocol: str,
    adversary_fraction: float,
    broadcasts: int = 20,
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    dandelion_config: Optional[DandelionConfig] = None,
) -> ExperimentResult:
    """Run the first-spy attack experiment against one protocol.

    Args:
        graph: the overlay to simulate on.
        protocol: ``"flood"``, ``"dandelion"`` or ``"three_phase"``.
        adversary_fraction: fraction of nodes the adversary controls.
        broadcasts: number of transactions to broadcast and attack.
        seed: master seed of the experiment.
        config: three-phase protocol configuration (protocol "three_phase").
        dandelion_config: Dandelion configuration (protocol "dandelion").

    Returns:
        The aggregated :class:`ExperimentResult`.

    Raises:
        ValueError: for an unknown protocol name.
    """
    rng = random.Random(seed)
    outcomes: List[Tuple[Hashable, Optional[Hashable]]] = []
    message_counts: List[float] = []

    if protocol == "three_phase":
        proto_config = config or ProtocolConfig()
        system = ThreePhaseBroadcast(graph, proto_config, seed=seed)
        sources = _pick_sources(graph, broadcasts, rng)
        # The true sources are never compromised themselves (the adversary
        # learning its own transactions is not an attack), matching the
        # treatment of the baseline protocols below.
        botnet = deploy_botnet(graph, adversary_fraction, rng, protected=set(sources))
        for index, source in enumerate(sources):
            payload = f"tx-{seed}-{index}".encode("utf-8")
            result = system.broadcast(source, payload)
            estimator = FirstSpyEstimator(system.simulator, botnet.observers)
            outcomes.append((source, estimator.guess(result.payload_id)))
            message_counts.append(float(result.messages_total))
        floor = proto_config.group_size
        return ExperimentResult(
            protocol=protocol,
            adversary_fraction=adversary_fraction,
            detection=evaluate_attack(outcomes),
            messages_per_broadcast=sum(message_counts) / len(message_counts),
            anonymity_floor=floor,
        )

    if protocol not in ("flood", "dandelion"):
        raise ValueError(f"unknown protocol {protocol!r}")

    sources = _pick_sources(graph, broadcasts, rng)
    for index, source in enumerate(sources):
        run_seed = seed * 1000 + index
        run_rng = random.Random(run_seed)
        simulator = Simulator(
            graph, latency=PerEdgeLatency(run_rng, 0.05, 0.3), seed=run_seed
        )
        if protocol == "flood":
            simulator.populate(FloodNode)
        else:
            successors = assign_stem_successors(graph, run_rng)
            dandelion = dandelion_config or DandelionConfig()
            simulator.populate(
                lambda node_id: DandelionNode(node_id, dandelion, successors[node_id])
            )
        botnet = deploy_botnet(graph, adversary_fraction, run_rng, protected={source})
        payload_id = f"tx-{run_seed}"
        simulator.node(source).originate(payload_id)
        simulator.run_until_idle()
        estimator = FirstSpyEstimator(simulator, botnet.observers)
        outcomes.append((source, estimator.guess(payload_id)))
        message_counts.append(
            float(simulator.metrics.message_count(payload_id=payload_id))
        )

    return ExperimentResult(
        protocol=protocol,
        adversary_fraction=adversary_fraction,
        detection=evaluate_attack(outcomes),
        messages_per_broadcast=sum(message_counts) / len(message_counts),
        anonymity_floor=1,
    )
