"""Parallel parameter sweeps over worker processes.

``analysis.sweep`` runs every (value, repetition) pair serially, which is
fine for the 100–1,000-node overlays of the original benchmarks but becomes
the wall-clock bottleneck for the multi-thousand-node scale runs
(``benchmarks/test_bench_e11_scale.py``).  :class:`ParallelSweep` fans the
same runs out over a :mod:`multiprocessing` pool while keeping the exact
``sweep()`` contract:

* every run gets the seed :func:`repro.analysis.sweep.derive_seed` assigns —
  derivation depends only on (value index, repetition), never on scheduling,
* aggregation uses :func:`repro.analysis.sweep.aggregate_runs`, and
* results are ordered by parameter value, repetition order inside a value.

So ``run_parallel(values, runner, ...) == sweep(values, runner, ...)``
seed-for-seed; the only difference is wall-clock time.

Workers are started with the ``fork`` method and receive the runner through
process inheritance, so runners may be closures or lambdas — nothing about
the runner is pickled.  Task inputs (parameter value, seed) and the returned
metric dictionaries do cross process boundaries and must be picklable, which
every existing runner already satisfies.  The pool is only used on Linux
(the one platform where fork-without-exec is dependable); on other platforms
— or with ``processes=1`` — the engine transparently degrades to the serial
path, producing identical results.

Scheduling is built for throughput: tasks are streamed to the workers with
``imap_unordered`` in chunks (one IPC round-trip per chunk instead of per
run, and no head-of-line blocking on a slow run the way ``pool.map``'s
ordered collection has), and the pool itself is kept alive on the
:class:`ParallelSweep` instance, so consecutive ``run()`` calls — e.g. one
per sweep point of an outer scan — reuse the forked workers instead of
re-paying pool start-up per call.  Results are re-ordered by task index
after collection, so the seed-for-seed equality with ``sweep()`` is
unaffected by the unordered arrival.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import (
    ParameterValue,
    SweepRunner,
    aggregate_runs,
    derive_seed,
)

_Task = Tuple[int, ParameterValue, int]

logger = logging.getLogger(__name__)

# Module-level slot the fork-started workers inherit; holding the runner here
# (instead of sending it through the task queue) is what allows closures.
_WORKER_RUNNER: Optional[SweepRunner] = None


def _init_worker(runner: SweepRunner) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner


def _execute_task(task: _Task) -> Tuple[int, Dict[str, float]]:
    task_index, value, seed = task
    assert _WORKER_RUNNER is not None
    return task_index, _WORKER_RUNNER(value, seed)


@dataclass
class ParallelSweep:
    """A reusable parallel sweep configuration.

    Example:
        >>> from repro.analysis import ParallelSweep, sweep
        >>> runner = lambda value, seed: {"metric": float(value * 10)}
        >>> engine = ParallelSweep(repetitions=2, base_seed=5)
        >>> engine.run([1, 2], runner) == sweep([1, 2], runner,
        ...                                     repetitions=2, base_seed=5)
        True

    Attributes:
        repetitions: how many seeds per parameter value.
        base_seed: base of the per-run seed derivation (identical to
            ``sweep()``'s).
        processes: worker process count; defaults to the machine's CPU count,
            capped at the number of runs.  ``1`` forces the serial path.
        chunk_size: tasks handed to a worker per IPC round-trip; defaults to
            ``len(tasks) // (workers * 4)`` (at least 1), which keeps every
            worker busy while bounding the scheduling overhead.

    After a ``run()``, :attr:`effective_processes` reports the worker count
    actually used (``1`` on the serial path) — callers surface it so a
    silently degraded environment is visible in persisted results.  When the
    degrade is *platform-forced* (parallelism was requested but the platform
    cannot fork) a ``logging`` warning is emitted as well; asking for
    ``processes=1``, or having a single task, degrades silently because the
    serial path is then the expected one.

    The worker pool persists across ``run()`` calls with the same runner and
    worker count, so repeated sweeps amortise the fork cost; call
    :meth:`close` (or use the instance as a context manager) to release the
    workers when done.  Reuse implies fork-snapshot semantics: workers see
    the process state as it was when the pool was first forked, so state a
    runner reads from its enclosing scope or module globals must not change
    between ``run()`` calls — mutate it only after a :meth:`close` (the next
    ``run()`` then forks fresh workers).  Runner *inputs* that change per
    call (values, seeds) are unaffected; they travel through the task queue.
    """

    repetitions: int = 3
    base_seed: int = 0
    processes: Optional[int] = None
    chunk_size: Optional[int] = None
    #: Worker count the most recent ``run()`` actually used (``1`` = serial
    #: path); ``None`` until the first run.
    effective_processes: Optional[int] = field(
        default=None, init=False, compare=False
    )
    _pool: Optional[Any] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pool_runner: Optional[SweepRunner] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pool_workers: int = field(
        default=0, init=False, repr=False, compare=False
    )

    def run(
        self,
        values: Sequence[ParameterValue],
        runner: SweepRunner,
    ) -> List[Dict[str, float]]:
        """Run ``runner(value, seed)`` for every value and repetition.

        Returns:
            One aggregated dictionary per parameter value, equal to what
            ``sweep(values, runner, self.repetitions, self.base_seed)``
            returns for the same inputs.
        """
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        values = list(values)
        if not values:
            return []
        tasks: List[_Task] = []
        for value_index, value in enumerate(values):
            for repetition in range(self.repetitions):
                seed = derive_seed(
                    value_index, repetition, self.repetitions, self.base_seed
                )
                tasks.append((len(tasks), value, seed))

        runs = self._execute(tasks, runner)
        results: List[Dict[str, float]] = []
        for value_index, value in enumerate(values):
            start = value_index * self.repetitions
            results.append(
                aggregate_runs(value, runs[start : start + self.repetitions])
            )
        return results

    def run_with_payloads(
        self,
        values: Sequence[ParameterValue],
        runner: Any,
    ) -> Tuple[List[Dict[str, float]], List[Any]]:
        """Like :meth:`run` for runners returning ``(metrics, payload)``.

        The metric dictionaries are aggregated exactly as :meth:`run`
        does; the payloads — arbitrary picklable side-channel data such
        as telemetry documents, which must stay out of ``aggregate_runs``
        (it sums every value) — are returned separately, one per task in
        task order (value-major, repetition-minor).
        """
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        values = list(values)
        if not values:
            return [], []
        tasks: List[_Task] = []
        for value_index, value in enumerate(values):
            for repetition in range(self.repetitions):
                seed = derive_seed(
                    value_index, repetition, self.repetitions, self.base_seed
                )
                tasks.append((len(tasks), value, seed))

        # _execute is shape-agnostic: it collects whatever the runner
        # returns by task index, so (metrics, payload) pairs ride through
        # the same serial/pool paths unchanged.
        outputs = self._execute(tasks, runner)
        metrics_runs = [metrics for metrics, _payload in outputs]
        payloads = [payload for _metrics, payload in outputs]
        results: List[Dict[str, float]] = []
        for value_index, value in enumerate(values):
            start = value_index * self.repetitions
            results.append(
                aggregate_runs(
                    value, metrics_runs[start : start + self.repetitions]
                )
            )
        return results, payloads

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _worker_count(self, task_count: int) -> int:
        requested = self.processes
        if requested is None:
            requested = os.cpu_count() or 1
        return max(1, min(requested, task_count))

    def _execute(
        self, tasks: List[_Task], runner: SweepRunner
    ) -> List[Dict[str, float]]:
        workers = self._worker_count(len(tasks))
        # Fork-without-exec is only reliable on Linux: macOS lists "fork" as
        # available but forked children can crash inside system frameworks
        # (which is why CPython made spawn the macOS default), and spawn
        # would break closure runners.  Everywhere but Linux, degrade to the
        # serial path — same results, just without the fan-out.
        platform_blocked = (
            sys.platform != "linux"
            or "fork" not in multiprocessing.get_all_start_methods()
        )
        if workers == 1 or platform_blocked:
            if platform_blocked and workers > 1:
                # Parallelism was requested but the platform cannot provide
                # it — say so, instead of silently running 1/N as fast.
                logger.warning(
                    "ParallelSweep: fork-based parallelism unavailable on "
                    "this platform (%s); degrading %d requested workers to "
                    "the serial path. Results are identical, only slower.",
                    sys.platform,
                    workers,
                )
            self.effective_processes = 1
            return [runner(value, seed) for _, value, seed in tasks]
        self.effective_processes = workers
        pool = self._ensure_pool(workers, runner)
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, len(tasks) // (workers * 4))
        runs: List[Optional[Dict[str, float]]] = [None] * len(tasks)
        try:
            for task_index, metrics in pool.imap_unordered(
                _execute_task, tasks, chunksize=chunk
            ):
                runs[task_index] = metrics
        except BaseException:
            # A failed worker leaves the pool in an undefined state; discard
            # it so the next run() starts from a fresh fork.
            self.close()
            raise
        assert all(run is not None for run in runs)
        return runs  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int, runner: SweepRunner) -> Any:
        """Return a live pool for ``runner``, reusing the previous one.

        The runner reaches the workers through fork inheritance at pool
        start-up, so a pool is only reusable for the *same* runner object
        (and worker count); anything else forks a fresh pool.
        """
        if (
            self._pool is not None
            and self._pool_runner is runner
            and self._pool_workers == workers
        ):
            return self._pool
        self.close()
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            processes=workers, initializer=_init_worker, initargs=(runner,)
        )
        self._pool_runner = runner
        self._pool_workers = workers
        return self._pool

    def close(self) -> None:
        """Shut down the cached worker pool (idempotent)."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        self._pool_runner = None
        self._pool_workers = 0
        pool.terminate()
        pool.join()

    def __enter__(self) -> "ParallelSweep":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-exit path
        try:
            self.close()
        except Exception:
            pass


def run_parallel(
    values: Sequence[ParameterValue],
    runner: SweepRunner,
    repetitions: int = 3,
    base_seed: int = 0,
    processes: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Drop-in parallel replacement for :func:`repro.analysis.sweep.sweep`.

    Args:
        values: the parameter values to sweep over.
        runner: callable returning a flat metric dictionary for one run.
        repetitions: how many seeds per parameter value.
        base_seed: base of the per-run seed derivation.
        processes: worker processes (defaults to CPU count; ``1`` = serial).

    Returns:
        The same list of aggregated dictionaries ``sweep`` would return.
    """
    engine = ParallelSweep(
        repetitions=repetitions, base_seed=base_seed, processes=processes
    )
    try:
        return engine.run(values, runner)
    finally:
        # One-shot entry point: nothing will reuse the pool, release it.
        engine.close()
