"""Summary statistics used by the benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation and extrema of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises:
        ValueError: if the sample is empty.
    """
    if not values:
        raise ValueError("cannot summarise an empty sample")
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation confidence interval of the sample mean.

    With the default ``z = 1.96`` this is an approximate 95 % interval, which
    is accurate enough for the benchmark repetition counts used here.
    """
    summary = summarize(values)
    if summary.count == 1:
        return (summary.mean, summary.mean)
    half_width = z * summary.std / math.sqrt(summary.count)
    return (summary.mean - half_width, summary.mean + half_width)
