"""Model interfaces and registries of the adversary & fault library.

Two kinds of composable, declaratively-configured models live in this
package, mirroring the ``Attacker``/``FaultModel`` split of mature
source-location-privacy simulators:

* an :class:`AdversaryModel` drives the *attacker* side of an experiment —
  where the observers sit, whether they re-position between broadcasts
  (closing the loop on :mod:`repro.privacy.posterior`), and any active
  behaviour such as eclipsing a victim or disrupting DC-net rounds;
* a :class:`FaultModel` drives the *environment* side — correlated failures
  beyond independent churn, compiled into a deterministic
  :class:`~repro.network.churn.ChurnSchedule` of node and link events.

Both are addressed by name from :class:`~repro.scenarios.spec.ScenarioSpec`
(``AdversarySpec.model`` / ``FaultSpec.model``) through the registries
below, so a scenario stays pure data and an unknown name fails loudly at
spec-validation time with the registered alternatives listed.

The default :class:`StaticBotnetAdversary` reproduces the historical
experiment behaviour draw for draw: uniformly random observer placement
via :func:`~repro.adversary.botnet.deploy_botnet`, no adaptation, no
active behaviour.  Every other model degrades to it when its active
features are disabled, which is what the seed-for-seed equivalence tests
pin.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from repro.adversary.botnet import deploy_botnet
from repro.network.churn import ChurnSchedule
from repro.privacy.posterior import Scores


class AdversaryModel:
    """Base adversary model: the static honest-but-curious botnet.

    The experiment harness (:func:`repro.analysis.experiment.
    run_attack_experiment`) calls the hooks in this order:

    1. :meth:`begin_session` once per freshly built protocol session (once
       per experiment for shared-session protocols, once per broadcast for
       the per-broadcast baselines) — the seam for active behaviour that
       needs the simulator, e.g. scheduling eclipse events;
    2. :meth:`place` whenever the harness deploys observers (same cadence
       as ``begin_session``), with the same RNG and protected set the
       static path uses, so a model that does not override placement is
       draw-for-draw identical to the historical experiments;
    3. :meth:`after_broadcast` once per attacked broadcast, with the
       estimator's posterior surface — returning a node set re-positions
       the monitored set for subsequent broadcasts, returning ``None``
       keeps it;
    4. :meth:`metrics` once at the end; every entry lands in the
       experiment result (prefixed ``adversary_``) and therefore in
       scenario run digests.

    Hooks marked "simulation-side" receive ground truth (the true source)
    that a real attacker would obtain out of band — e.g. the on-chain
    identity linking the paper's intersection attack assumes — or that the
    modelled behaviour simply *is* located at (a Byzantine group member
    disrupts the round it participates in).
    """

    #: Registry name (set by subclasses / registration).
    name = "static"

    def begin_session(self, session: object) -> None:
        """Called with every freshly built protocol session (no-op here)."""

    def place(
        self,
        graph: nx.Graph,
        fraction: float,
        rng: random.Random,
        protected: Set[Hashable],
    ) -> Set[Hashable]:
        """The observer set for the next broadcast(s).

        The default draws a uniformly random botnet — exactly the
        historical static deployment, consuming exactly its RNG draws.
        """
        return deploy_botnet(graph, fraction, rng, protected=protected).observers

    def after_broadcast(
        self,
        payload_id: Hashable,
        true_source: Hashable,
        scores: Scores,
        graph: nx.Graph,
        protected: Set[Hashable],
    ) -> Optional[Set[Hashable]]:
        """Posterior feedback after one attacked broadcast.

        Args:
            payload_id: the broadcast just attacked.
            true_source: simulation-side ground truth (see class docstring).
            scores: the estimator's posterior surface for the broadcast.
            graph: the overlay.
            protected: nodes the adversary can never monitor.

        Returns:
            A replacement monitored set for subsequent broadcasts, or
            ``None`` to keep the current one (the static default).
        """
        return None

    def metrics(self) -> Dict[str, float]:
        """Model-specific counters for the experiment result (empty here)."""
        return {}


class StaticBotnetAdversary(AdversaryModel):
    """The historical attacker, as an explicit registry entry."""

    name = "static"


class FaultModel:
    """Base fault model: compiles into a deterministic churn schedule.

    Subclasses override :meth:`schedule` to describe *correlated* failures
    — a whole region crashing together, links flapping in bursts — as
    :class:`~repro.network.churn.ChurnEvent`/:class:`~repro.network.churn.
    LinkEvent` sequences.  All randomness must come from the ``rng``
    argument so one ``(spec, run seed)`` pair always yields one schedule.
    """

    #: Registry name (set by subclasses / registration).
    name = ""

    def schedule(self, graph: nx.Graph, rng: random.Random) -> ChurnSchedule:
        """The concrete event schedule for one session (empty here)."""
        return ChurnSchedule(())


_ADVERSARY_MODELS: Dict[str, Callable[..., AdversaryModel]] = {}
_FAULT_MODELS: Dict[str, Callable[..., FaultModel]] = {}


def register_adversary_model(
    factory: Callable[..., AdversaryModel],
) -> Callable[..., AdversaryModel]:
    """Register an adversary-model factory under ``factory.name``.

    Returns the factory so modules can register and bind in one line.

    Raises:
        ValueError: for a missing name or a name already taken.
    """
    name = getattr(factory, "name", "")
    if not name:
        raise ValueError("adversary models need a non-empty name")
    if name in _ADVERSARY_MODELS:
        raise ValueError(f"adversary model {name!r} is already registered")
    _ADVERSARY_MODELS[name] = factory
    return factory


def register_fault_model(
    factory: Callable[..., FaultModel],
) -> Callable[..., FaultModel]:
    """Register a fault-model factory under ``factory.name``."""
    name = getattr(factory, "name", "")
    if not name:
        raise ValueError("fault models need a non-empty name")
    if name in _FAULT_MODELS:
        raise ValueError(f"fault model {name!r} is already registered")
    _FAULT_MODELS[name] = factory
    return factory


def available_adversary_models() -> Tuple[str, ...]:
    """Sorted names of every registered adversary model."""
    return tuple(sorted(_ADVERSARY_MODELS))


def available_fault_models() -> Tuple[str, ...]:
    """Sorted names of every registered fault model."""
    return tuple(sorted(_FAULT_MODELS))


def validate_adversary_model(name: str) -> None:
    """Raise ``KeyError`` (listing registered names) for an unknown model.

    The spec layer calls this at validation time, so a typo in a scenario
    file fails before anything runs.
    """
    if name not in _ADVERSARY_MODELS:
        known = ", ".join(available_adversary_models()) or "none"
        raise KeyError(
            f"unknown adversary model {name!r} (registered: {known})"
        )


def validate_fault_model(name: str) -> None:
    """Raise ``KeyError`` (listing registered names) for an unknown model."""
    if name not in _FAULT_MODELS:
        known = ", ".join(available_fault_models()) or "none"
        raise KeyError(f"unknown fault model {name!r} (registered: {known})")


def create_adversary_model(
    name: str, params: Optional[Dict[str, Any]] = None
) -> AdversaryModel:
    """Instantiate a registered adversary model from flat options.

    Raises:
        KeyError: for an unknown model name (registered names listed).
        TypeError: for options the model's constructor does not accept.
    """
    validate_adversary_model(name)
    return _ADVERSARY_MODELS[name](**dict(params or {}))


def create_fault_model(
    name: str, params: Optional[Dict[str, Any]] = None
) -> FaultModel:
    """Instantiate a registered fault model from flat options."""
    validate_fault_model(name)
    return _FAULT_MODELS[name](**dict(params or {}))


register_adversary_model(StaticBotnetAdversary)
