"""Byzantine DC-net member: malformed shares driving the blame protocol.

Section V-C of the paper counters DC-net denial-of-service with a
commit-then-open blame protocol (von Ahn et al.), implemented in
:mod:`repro.dcnet.blame` but — until this model — never reached from any
experiment.  This adversary closes that gap: after every attacked
broadcast it replays the true source's DC-net group as a *committed* round
in which one group member (the Byzantine one) misbehaves, then runs the
investigation and applies the group's countermeasure policy.

Two tamper modes map onto the verdict's two outcomes:

* ``"flip"`` — the disruptor's wire shares differ from its opened (and
  committed) shares, so the investigation attributes the disruption and
  the ``"expel"`` policy removes exactly that member;
* ``"withhold"`` — the disruptor's shares never arrive; its opening stays
  self-consistent, nothing is attributable, and the verdict recommends
  dissolving — the paper's re-form-without-untrusted-members trade-off,
  applied by the ``"dissolve"`` policy.

The replayed round is simulation-side modelling (the Byzantine member *is*
in the group, so it knows the membership); its outcome feeds the
experiment result as ``adversary_blame_*`` metrics and therefore the
scenario run digests.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from repro.crypto.pads import xor_bytes
from repro.dcnet.blame import BlameProtocol
from repro.dcnet.member import DCNetMember
from repro.privacy.posterior import Scores
from repro.threat.base import AdversaryModel, register_adversary_model

#: Valid tamper modes and countermeasure policies.
TAMPER_MODES = ("flip", "withhold")
POLICIES = ("expel", "dissolve")


@register_adversary_model
class ByzantineDCNetAdversary(AdversaryModel):
    """One DC-net group member disrupts every round the source sends in.

    Args:
        tamper: ``"flip"`` (wire shares differ from commitments — the
            attributable disruption) or ``"withhold"`` (shares never sent —
            unattributable, forcing the dissolve recommendation).
        policy: the group's response — ``"expel"`` removes blamed members
            from all subsequent rounds, ``"dissolve"`` counts a dissolution
            and re-forms with the same membership.
        frame_length: frame size of the replayed blame rounds.
    """

    name = "byzantine_dcnet"

    def __init__(
        self,
        tamper: str = "flip",
        policy: str = "expel",
        frame_length: int = 32,
    ) -> None:
        if tamper not in TAMPER_MODES:
            raise ValueError(
                f"unknown tamper mode {tamper!r} (expected one of {TAMPER_MODES})"
            )
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r} (expected one of {POLICIES})"
            )
        if frame_length <= 0:
            raise ValueError("frame_length must be positive")
        self.tamper = tamper
        self.policy = policy
        self.frame_length = frame_length
        self._session: Optional[object] = None
        self._rounds = 0
        self._blamed_total = 0
        self._correct = 0
        self._dissolved = 0
        self._overhead_messages = 0
        self._expelled: Set[Hashable] = set()
        self.last_verdict = None
        self.last_disruptor: Optional[Hashable] = None

    def begin_session(self, session: object) -> None:
        self._session = session

    def after_broadcast(
        self,
        payload_id: Hashable,
        true_source: Hashable,
        scores: Scores,
        graph: nx.Graph,
        protected: Set[Hashable],
    ) -> Optional[Set[Hashable]]:
        """Replay the source's group as a disrupted, committed round."""
        session = self._session
        system = getattr(session, "state", {}).get("system") if session else None
        directory = getattr(system, "directory", None)
        if directory is None:
            return None  # not a group-based protocol; nothing to disrupt
        group: List[Hashable] = sorted(
            directory.members_of(true_source), key=repr
        )
        active = [m for m in group if m not in self._expelled]
        disruptor = next((m for m in active if m != true_source), None)
        if len(active) < 2 or true_source not in active or disruptor is None:
            return None  # countermeasure already removed the disruptor
        rng = random.Random(
            (getattr(session, "seed", 0) or 0) * 7919 + self._rounds
        )
        verdict = self._disrupted_round(active, true_source, disruptor, rng)
        self.last_verdict = verdict
        self.last_disruptor = disruptor
        self._rounds += 1
        self._blamed_total += len(verdict.blamed)
        if verdict.blamed == [disruptor]:
            self._correct += 1
        if self.policy == "expel":
            self._expelled.update(verdict.blamed)
        elif not verdict.clean:
            self._dissolved += 1
        return None

    def _disrupted_round(
        self,
        group: List[Hashable],
        source: Hashable,
        disruptor: Hashable,
        rng: random.Random,
    ):
        """One commit-then-open round with the disruptor misbehaving."""
        frame = str(disruptor).encode("utf-8")[: self.frame_length]
        frame = frame + bytes(self.frame_length - len(frame))
        protocol = BlameProtocol(group, self.frame_length)
        members = {m: DCNetMember(m, group, self.frame_length) for m in group}
        opened: Dict[Hashable, Dict[Hashable, bytes]] = {}
        received: Dict[Hashable, Dict[Hashable, bytes]] = {m: {} for m in group}
        garble = b"\xa5" * self.frame_length
        for member_id in group:
            shares = members[member_id].prepare_shares(
                frame if member_id == source else None, rng
            )
            protocol.register_commitments(
                member_id, members[member_id].sent_shares, rng
            )
            opened[member_id] = members[member_id].sent_shares
            self._overhead_messages += 2 * len(shares)  # digests + openings
            if member_id == disruptor:
                if self.tamper == "withhold":
                    continue  # shares never reach the wire
                shares = {
                    peer: xor_bytes(share, garble)
                    for peer, share in shares.items()
                }
            for peer, share in shares.items():
                received[peer][member_id] = share
        return protocol.investigate(
            opened, received, claimed_senders=[source]
        )

    def metrics(self) -> Dict[str, float]:
        return {
            "blame_rounds": float(self._rounds),
            "blame_blamed_total": float(self._blamed_total),
            "blame_correct_attributions": float(self._correct),
            "blame_dissolved": float(self._dissolved),
            "blame_expelled": float(len(self._expelled)),
            "blame_overhead_messages": float(self._overhead_messages),
        }
