"""Eclipse adversary: severing a victim's overlay links.

An eclipse attack isolates one node from the honest overlay by taking over
(here: cutting) its connections — the classic pre-step to deanonymisation
and double-spend setups.  This model expresses it with the simulator's
link-failure primitives: at ``start`` it severs a fraction of the victim's
overlay links (deterministically, highest-``repr``-order peers first), and
optionally restores them ``duration`` time units later.

The observers themselves stay the uniform static botnet; the eclipse is an
*environment* manipulation layered on top, so its effect shows up in the
delivery metrics (``mean_reach``, ``churn_dropped``) rather than in the
estimator.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.network.churn import RESTORE, SEVER, ChurnSchedule, LinkEvent
from repro.threat.base import AdversaryModel, register_adversary_model


@register_adversary_model
class EclipseAdversary(AdversaryModel):
    """Cuts a victim's overlay links at a scheduled time.

    Args:
        victim: the node to eclipse (must exist in the session's overlay).
        start: simulated time at which the links go down.
        duration: when given, the links come back after this many time
            units; ``None`` keeps the victim eclipsed for the whole session.
        link_fraction: fraction of the victim's links to sever, rounded to
            at least one link while positive.  ``1.0`` is a full eclipse;
            smaller values model partial partitions.
    """

    name = "eclipse"

    def __init__(
        self,
        victim: Hashable = 0,
        start: float = 0.0,
        duration: Optional[float] = None,
        link_fraction: float = 1.0,
    ) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive when given")
        if not 0.0 < link_fraction <= 1.0:
            raise ValueError("link_fraction must be in (0, 1]")
        self.victim = victim
        self.start = start
        self.duration = duration
        self.link_fraction = link_fraction
        self._severed = 0

    def begin_session(self, session: object) -> None:
        """Schedule the sever (and optional restore) events on the session."""
        graph = session.graph
        if self.victim not in graph:
            raise ValueError(
                f"eclipse victim {self.victim!r} is not in the overlay"
            )
        peers: List[Hashable] = sorted(graph.neighbors(self.victim), key=repr)
        count = max(1, round(self.link_fraction * len(peers))) if peers else 0
        targets = peers[:count]
        events: List[LinkEvent] = [
            LinkEvent(self.start, self.victim, peer, SEVER) for peer in targets
        ]
        if self.duration is not None:
            events.extend(
                LinkEvent(self.start + self.duration, self.victim, peer, RESTORE)
                for peer in targets
            )
        ChurnSchedule(tuple(events)).apply(session.simulator)
        self._severed += len(targets)

    def metrics(self) -> Dict[str, float]:
        return {"eclipse_severed_links": float(self._severed)}
