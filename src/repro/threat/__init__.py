"""Composable adversary and fault models (ROADMAP item 3).

The paper's Section V argues its anonymity guarantees against adversaries
that *adapt* and against group members that *disrupt*; the estimators in
:mod:`repro.adversary` are static observers.  This package supplies the
active side as two registries of named, declaratively-configurable models:

* **adversary models** (:class:`~repro.threat.base.AdversaryModel`) — the
  static botnet baseline, the posterior-chasing
  :class:`~repro.threat.adaptive.AdaptiveMonitoringAdversary`, the
  link-cutting :class:`~repro.threat.eclipse.EclipseAdversary` and the
  blame-protocol-driving
  :class:`~repro.threat.byzantine.ByzantineDCNetAdversary`;
* **fault models** (:class:`~repro.threat.base.FaultModel`) — correlated
  failures beyond independent churn:
  :class:`~repro.threat.faults.RegionalOutageFault` and
  :class:`~repro.threat.faults.FlakyLinksFault`.

Scenario specs address both by name (``AdversarySpec.model``,
``FaultSpec.model``); unknown names raise ``KeyError`` listing the
registered alternatives at spec-validation time.  See
``docs/ADVERSARIES.md`` for the catalogue.
"""

from repro.threat.adaptive import AdaptiveMonitoringAdversary
from repro.threat.base import (
    AdversaryModel,
    FaultModel,
    StaticBotnetAdversary,
    available_adversary_models,
    available_fault_models,
    create_adversary_model,
    create_fault_model,
    register_adversary_model,
    register_fault_model,
    validate_adversary_model,
    validate_fault_model,
)
from repro.threat.byzantine import ByzantineDCNetAdversary
from repro.threat.eclipse import EclipseAdversary
from repro.threat.faults import FlakyLinksFault, RegionalOutageFault

__all__ = [
    "AdversaryModel",
    "FaultModel",
    "StaticBotnetAdversary",
    "AdaptiveMonitoringAdversary",
    "EclipseAdversary",
    "ByzantineDCNetAdversary",
    "RegionalOutageFault",
    "FlakyLinksFault",
    "available_adversary_models",
    "available_fault_models",
    "create_adversary_model",
    "create_fault_model",
    "register_adversary_model",
    "register_fault_model",
    "validate_adversary_model",
    "validate_fault_model",
]
