"""Correlated fault models beyond independent churn.

The churn layer (:mod:`repro.network.churn`) draws independent per-node
departures; real failures correlate.  The two models here compile the two
classic correlation shapes into deterministic schedules:

* :class:`RegionalOutageFault` — a whole overlay *region* (a BFS ball
  around an epicenter) crashes together and optionally recovers together,
  the data-centre/power-grid failure mode;
* :class:`FlakyLinksFault` — bursts of link-level flapping: a random
  sample of overlay links goes down and comes back repeatedly, the
  congested-backbone failure mode.

Both are pure ``(graph, rng) → ChurnSchedule`` compilers, so one
``(spec, run seed)`` pair always produces one schedule and scenario run
digests stay reproducible.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Tuple

import networkx as nx

from repro.network.churn import (
    LEAVE,
    REJOIN,
    RESTORE,
    SEVER,
    ChurnEvent,
    ChurnSchedule,
    LinkEvent,
)
from repro.threat.base import FaultModel, register_fault_model


@register_fault_model
class RegionalOutageFault(FaultModel):
    """A BFS region around an epicenter fails (and recovers) together.

    Args:
        epicenter: centre of the outage; ``None`` draws it from the run RNG.
        radius: BFS hop radius of the failed region (``0`` = epicenter only).
        start: simulated time of the outage.
        duration: when given, every failed node rejoins after this many
            time units; ``None`` keeps the region down.
    """

    name = "regional_outage"

    def __init__(
        self,
        epicenter: Optional[Hashable] = None,
        radius: int = 1,
        start: float = 0.25,
        duration: Optional[float] = None,
    ) -> None:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive when given")
        self.epicenter = epicenter
        self.radius = radius
        self.start = start
        self.duration = duration

    def region(self, graph: nx.Graph, rng: random.Random) -> List[Hashable]:
        """The failed region, sorted by ``repr`` (deterministic)."""
        epicenter = self.epicenter
        if epicenter is None:
            epicenter = rng.choice(sorted(graph.nodes, key=repr))
        elif epicenter not in graph:
            raise ValueError(f"epicenter {epicenter!r} is not in the overlay")
        reached = nx.single_source_shortest_path_length(
            graph, epicenter, cutoff=self.radius
        )
        return sorted(reached, key=repr)

    def schedule(self, graph: nx.Graph, rng: random.Random) -> ChurnSchedule:
        nodes = self.region(graph, rng)
        events: List[object] = [
            ChurnEvent(self.start, node, LEAVE) for node in nodes
        ]
        if self.duration is not None:
            events.extend(
                ChurnEvent(self.start + self.duration, node, REJOIN)
                for node in nodes
            )
        return ChurnSchedule(tuple(events))


@register_fault_model
class FlakyLinksFault(FaultModel):
    """Bursts of link flapping: sampled links go down and come back.

    Args:
        links: number of links sampled per burst (capped at the overlay's
            edge count).
        bursts: how many down/up cycles happen.
        start: simulated time of the first burst.
        period: time between burst starts.
        down_time: how long each burst keeps its links severed (must be
            positive and at most ``period`` so bursts never overlap).
    """

    name = "flaky_links"

    def __init__(
        self,
        links: int = 5,
        bursts: int = 2,
        start: float = 0.1,
        period: float = 0.5,
        down_time: float = 0.25,
    ) -> None:
        if links < 1:
            raise ValueError("links must be positive")
        if bursts < 1:
            raise ValueError("bursts must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < down_time <= period:
            raise ValueError("down_time must be in (0, period]")
        self.links = links
        self.bursts = bursts
        self.start = start
        self.period = period
        self.down_time = down_time

    def schedule(self, graph: nx.Graph, rng: random.Random) -> ChurnSchedule:
        edges: List[Tuple[Hashable, Hashable]] = sorted(
            graph.edges, key=repr
        )
        count = min(self.links, len(edges))
        events: List[object] = []
        for burst in range(self.bursts):
            begin = self.start + burst * self.period
            for a, b in rng.sample(edges, count):
                events.append(LinkEvent(begin, a, b, SEVER))
                events.append(
                    LinkEvent(begin + self.down_time, a, b, RESTORE)
                )
        return ChurnSchedule(tuple(events))
