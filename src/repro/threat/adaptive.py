"""Adaptive monitoring: the attacker that acts on its posteriors.

PR 5 gave every estimator a posterior surface; this model is its first
consumer that *acts* on it.  After each attacked broadcast the adversary
accumulates the normalised posterior into a per-node suspicion mass and
re-positions its monitored set onto the most suspect nodes and their
overlay neighbourhoods — the "move your sybils next to whoever looks like
the wallet host" strategy the paper's Section V adversary discussion
implies but the static botnet never exercises.

The model is deliberately budget-preserving: it never monitors more nodes
than the initial uniform deployment gave it, so adaptive-vs-static
comparisons isolate *placement intelligence* from *observer count*.  With
``enabled=False`` (or during the warm-up) it is behaviourally identical to
:class:`~repro.threat.base.StaticBotnetAdversary` draw for draw, which the
equivalence tests pin seed for seed.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from repro.privacy.posterior import Scores, normalize
from repro.threat.base import AdversaryModel, register_adversary_model


@register_adversary_model
class AdaptiveMonitoringAdversary(AdversaryModel):
    """Re-positions the monitored set onto the highest-posterior nodes.

    Args:
        enabled: ``False`` disables every adaptation (exactly the static
            attacker, same RNG draws — the seed-for-seed baseline).
        warmup: number of attacked broadcasts observed before the first
            re-positioning; the initial uniform placement stands until then.
        neighbourhood: also monitor the overlay neighbours of each prime
            suspect instead of spending the whole budget on suspects.
            Off by default: spreading the budget over neighbourhoods
            re-widens the posterior surface and loses most of the entropy
            reduction that concentrating on the suspects themselves buys
            (measured on the mixed-senders preset).
        decay: multiplier applied to the accumulated suspicion mass before
            each new broadcast's posterior is added; ``1.0`` never forgets,
            smaller values favour recent evidence.
    """

    name = "adaptive"

    def __init__(
        self,
        enabled: bool = True,
        warmup: int = 1,
        neighbourhood: bool = False,
        decay: float = 1.0,
    ) -> None:
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.enabled = bool(enabled)
        self.warmup = warmup
        self.neighbourhood = bool(neighbourhood)
        self.decay = decay
        self._mass: Dict[Hashable, float] = {}
        self._budget = 0
        self._observed = 0
        self._repositions = 0
        self._monitored: Optional[Set[Hashable]] = None

    def place(
        self,
        graph: nx.Graph,
        fraction: float,
        rng: random.Random,
        protected: Set[Hashable],
    ) -> Set[Hashable]:
        """Uniform deployment, then the adapted set once one exists.

        The uniform draw always happens (and fixes the monitoring budget),
        so the RNG stream is identical whether or not adaptation kicks in
        — everything downstream of this call stays seed-for-seed
        comparable between the adaptive and static attackers.
        """
        uniform = super().place(graph, fraction, rng, protected)
        self._budget = max(self._budget, len(uniform))
        if not self.enabled or self._monitored is None:
            return uniform
        adapted = {node for node in self._monitored if node not in protected}
        if not adapted:
            return uniform
        # Top the set back up to budget from the uniform draw when the
        # protected filter shrank it (per-broadcast sessions protect the
        # new source, which may well be a prime suspect).
        for node in sorted(uniform, key=repr):
            if len(adapted) >= self._budget:
                break
            adapted.add(node)
        return adapted

    def after_broadcast(
        self,
        payload_id: Hashable,
        true_source: Hashable,
        scores: Scores,
        graph: nx.Graph,
        protected: Set[Hashable],
    ) -> Optional[Set[Hashable]]:
        """Fold one posterior into the suspicion mass; maybe re-position."""
        if not self.enabled:
            return None
        self._observed += 1
        # An all-zero surface is an abstention (no evidence), not a
        # distribution — folding it in would make normalize() raise.
        if scores and any(scores.values()):
            posterior = normalize(scores)
            if self.decay < 1.0:
                for node in self._mass:
                    self._mass[node] *= self.decay
            for node, probability in posterior.items():
                if node in graph:
                    self._mass[node] = self._mass.get(node, 0.0) + probability
        if self._observed < self.warmup or not self._mass or not self._budget:
            return None
        monitored = self._select(graph, protected)
        if not monitored:
            return None
        if monitored != self._monitored:
            self._repositions += 1
        self._monitored = monitored
        return set(monitored)

    def _select(
        self, graph: nx.Graph, protected: Set[Hashable]
    ) -> Set[Hashable]:
        """The budgeted monitored set: prime suspects plus neighbourhoods."""
        ranked: List[Hashable] = [
            node
            for node, _ in sorted(
                self._mass.items(), key=lambda item: (-item[1], repr(item[0]))
            )
        ]
        chosen: Set[Hashable] = set()
        for suspect in ranked:
            if len(chosen) >= self._budget:
                break
            if suspect not in protected:
                chosen.add(suspect)
            if not self.neighbourhood:
                continue
            for peer in sorted(graph.neighbors(suspect), key=repr):
                if len(chosen) >= self._budget:
                    break
                if peer not in protected:
                    chosen.add(peer)
        return chosen

    def metrics(self) -> Dict[str, float]:
        return {
            "adaptive_enabled": 1.0 if self.enabled else 0.0,
            "adaptive_repositions": float(self._repositions),
            "adaptive_budget": float(self._budget),
        }
