"""Overlapping-group analysis and probability smoothing (Section IV-C).

The paper's example: in a group of three members A, B and C, where B and C
are additionally members of a second group while A is not, a message sent
through the first group has probability ½ of originating at A instead of the
desired ⅓ — because B and C spread their sending probability over two
groups.  The fix is to *"enforce a number of groups"* per node so the
per-group sending probabilities stay uniform.

:func:`origin_probabilities` computes the attacker's posterior over the
originator of a message observed in a given group, assuming every node picks
uniformly among the groups it belongs to when sending.
:func:`smooth_group_assignment` builds an assignment where every node is a
member of exactly the same number of groups, which restores uniformity.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence


def origin_probabilities(
    groups: Sequence[Sequence[Hashable]],
    observed_group: int,
) -> Dict[Hashable, float]:
    """Posterior probability of each member being the origin of a message.

    Args:
        groups: every group in the system, as sequences of member identities.
        observed_group: index (into ``groups``) of the group in which the
            message was observed.

    Returns:
        ``{member: probability}`` for members of the observed group, under
        the model that every node sends with equal prior probability and
        chooses uniformly among the groups it belongs to.

    Raises:
        IndexError: if ``observed_group`` is out of range.
        ValueError: if the observed group is empty.
    """
    if observed_group < 0 or observed_group >= len(groups):
        raise IndexError("observed_group is out of range")
    members = list(groups[observed_group])
    if not members:
        raise ValueError("the observed group has no members")

    membership_count: Dict[Hashable, int] = {}
    for group in groups:
        for member in group:
            membership_count[member] = membership_count.get(member, 0) + 1

    # P(observed in this group | member is origin) = 1 / #groups(member);
    # apply Bayes with a uniform prior over members of the system.
    likelihoods = {
        member: 1.0 / membership_count[member] for member in members
    }
    total = sum(likelihoods.values())
    return {member: value / total for member, value in likelihoods.items()}


def uniformity_error(probabilities: Dict[Hashable, float]) -> float:
    """Maximum deviation from the uniform distribution.

    Zero means perfect smoothing (every member equally likely); the paper's
    A/B/C example yields an error of ``1/2 - 1/3 = 1/6``.
    """
    if not probabilities:
        raise ValueError("empty probability map")
    uniform = 1.0 / len(probabilities)
    return max(abs(p - uniform) for p in probabilities.values())


def smooth_group_assignment(
    nodes: Sequence[Hashable],
    group_size: int,
    groups_per_node: int,
    rng: random.Random,
    max_attempts: int = 200,
) -> List[List[Hashable]]:
    """Assign every node to exactly ``groups_per_node`` groups of equal size.

    With every node belonging to the same number of groups, the posterior of
    :func:`origin_probabilities` is uniform within every group, which is the
    enforcement policy the paper proposes against the overlap skew.

    The construction repeatedly deals shuffled copies of the node list into
    groups of ``group_size``; it requires ``len(nodes)`` to be divisible by
    ``group_size`` and retries the shuffle when a group would contain the
    same node twice.

    Raises:
        ValueError: on unsatisfiable parameters.
        RuntimeError: if no valid assignment is found within ``max_attempts``.
    """
    node_list = list(nodes)
    if group_size < 2:
        raise ValueError("group size must be at least 2")
    if groups_per_node < 1:
        raise ValueError("groups_per_node must be at least 1")
    if len(node_list) < group_size:
        raise ValueError("not enough nodes for a single group")
    if len(node_list) % group_size != 0:
        raise ValueError("the number of nodes must be divisible by the group size")

    groups: List[List[Hashable]] = []
    for _ in range(groups_per_node):
        for _attempt in range(max_attempts):
            shuffled = list(node_list)
            rng.shuffle(shuffled)
            layer = [
                shuffled[i : i + group_size]
                for i in range(0, len(shuffled), group_size)
            ]
            if all(len(set(group)) == len(group) for group in layer):
                groups.extend(layer)
                break
        else:  # pragma: no cover - only reachable with duplicate node ids
            raise RuntimeError("failed to build a valid overlapping assignment")
    return groups
