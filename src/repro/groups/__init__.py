"""Group management for Phase 1 (Section IV-C of the paper).

The DC-net phase requires nodes to be organised in groups of size between
``k`` and ``2k - 1``: a group reaching ``2k`` members splits into two groups
of ``k``.  This package implements

* :mod:`repro.groups.membership` — join/leave/create handling with the
  ``[k, 2k-1]`` size invariant and the split rule,
* :mod:`repro.groups.overlap` — the probability-smoothing analysis for nodes
  that are members of several overlapping groups (the paper's ½-vs-⅓
  example) and the policy that restores uniformity,
* :mod:`repro.groups.reiter` — a simplified manager-based secure group
  membership protocol in the spirit of Reiter (1996), tolerating up to
  ``⌊(n-1)/3⌋`` faulty members,
* :mod:`repro.groups.directory` — assignment of an entire overlay's nodes
  into groups, as used by the end-to-end protocol and the experiments.
"""

from repro.groups.directory import GroupDirectory
from repro.groups.membership import Group, GroupManager
from repro.groups.overlap import origin_probabilities, smooth_group_assignment
from repro.groups.reiter import MembershipEvent, ReiterGroupMembership

__all__ = [
    "GroupDirectory",
    "Group",
    "GroupManager",
    "origin_probabilities",
    "smooth_group_assignment",
    "MembershipEvent",
    "ReiterGroupMembership",
]
