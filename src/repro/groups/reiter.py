"""Simplified manager-based secure group membership (Reiter, 1996).

The paper points to Reiter's secure group membership protocol as a first
solution for group creation: a manager-based system tolerating up to one
third of malicious members by running a consensus on every membership change.

This module provides a deliberately compact simulation of that behaviour:

* every membership change (join/leave) is proposed by the manager and voted
  on by the current members;
* a change is installed only if more than two thirds of the members approve,
  so up to ``⌊(n-1)/3⌋`` byzantine members cannot block or force changes on
  their own;
* the installed membership history forms a totally ordered sequence of
  *views*, mirroring the view-synchronous semantics of the original protocol.

Faulty members are modelled by a caller-provided predicate that decides how
they vote; honest members always approve consistent proposals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence


@dataclass(frozen=True)
class MembershipEvent:
    """One proposed membership change.

    Attributes:
        kind: ``"join"`` or ``"leave"``.
        node: the node joining or leaving.
        view_number: the view this change would create when installed.
    """

    kind: str
    node: Hashable
    view_number: int


@dataclass
class _View:
    number: int
    members: List[Hashable] = field(default_factory=list)


class ReiterGroupMembership:
    """A group whose membership changes go through a 2/3 quorum vote."""

    def __init__(
        self,
        manager: Hashable,
        initial_members: Sequence[Hashable],
        vote: Optional[Callable[[Hashable, MembershipEvent], bool]] = None,
    ) -> None:
        members = sorted(set(initial_members), key=repr)
        if manager not in members:
            raise ValueError("the manager must be one of the initial members")
        self.manager = manager
        self._vote = vote or (lambda member, event: True)
        self._views: List[_View] = [_View(number=0, members=members)]
        self._rejected: List[MembershipEvent] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[Hashable]:
        """Members of the currently installed view."""
        return list(self._views[-1].members)

    @property
    def view_number(self) -> int:
        """Number of the currently installed view."""
        return self._views[-1].number

    @property
    def history(self) -> List[List[Hashable]]:
        """Member lists of every installed view, oldest first."""
        return [list(view.members) for view in self._views]

    @property
    def rejected_events(self) -> List[MembershipEvent]:
        """Proposals that failed to reach the quorum."""
        return list(self._rejected)

    def fault_tolerance(self) -> int:
        """Maximum number of byzantine members the quorum rule tolerates."""
        return (len(self.members) - 1) // 3

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def propose_join(self, node: Hashable) -> bool:
        """Propose adding ``node``; returns ``True`` if the view changed."""
        if node in self.members:
            raise ValueError(f"node {node!r} is already a member")
        event = MembershipEvent(
            kind="join", node=node, view_number=self.view_number + 1
        )
        return self._decide(event, self.members + [node])

    def propose_leave(self, node: Hashable) -> bool:
        """Propose removing ``node``; returns ``True`` if the view changed."""
        if node not in self.members:
            raise ValueError(f"node {node!r} is not a member")
        if node == self.manager:
            raise ValueError("the manager cannot remove itself")
        event = MembershipEvent(
            kind="leave", node=node, view_number=self.view_number + 1
        )
        return self._decide(event, [m for m in self.members if m != node])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decide(self, event: MembershipEvent, next_members: List[Hashable]) -> bool:
        voters = self.members
        approvals = sum(1 for member in voters if self._vote(member, event))
        quorum = (2 * len(voters)) // 3 + 1
        if approvals >= quorum:
            self._views.append(
                _View(number=event.view_number, members=sorted(next_members, key=repr))
            )
            return True
        self._rejected.append(event)
        return False
