"""Network-wide group directory used by the end-to-end protocol.

The three-phase protocol needs to know, for every node, which DC-net group
it belongs to.  :class:`GroupDirectory` partitions the overlay's nodes into
groups via :class:`~repro.groups.membership.GroupManager` and exposes the
lookups the protocol and the experiments need.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence

from repro.groups.membership import Group, GroupManager


class GroupDirectory:
    """Partition of a node population into DC-net groups of size ``k..2k-1``."""

    def __init__(
        self,
        nodes: Sequence[Hashable],
        min_size: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        if len(nodes) < min_size:
            raise ValueError(
                "the population is smaller than the minimum group size; "
                "privacy cannot be guaranteed (Section IV-C)"
            )
        self.manager = GroupManager(min_size, rng or random.Random())
        self.manager.assign_population(list(nodes))
        self._cache: Dict[Hashable, Group] = {}
        for group in self.manager.groups:
            for member in group.members:
                self._cache[member] = group

    @property
    def groups(self) -> List[Group]:
        """All groups in the directory."""
        return self.manager.groups

    def group_of(self, node: Hashable) -> Group:
        """The group of ``node``.

        Raises:
            KeyError: if the node is not part of the directory.
        """
        if node not in self._cache:
            raise KeyError(f"node {node!r} is not assigned to any group")
        return self._cache[node]

    def members_of(self, node: Hashable) -> List[Hashable]:
        """All members of ``node``'s group (including the node itself)."""
        return list(self.group_of(node).members)

    def group_sizes(self) -> List[int]:
        """Sizes of all groups (useful for invariant checks in tests)."""
        return [group.size for group in self.groups]

    def all_groups_private(self) -> bool:
        """Whether every group meets the minimum size ``k``."""
        return self.manager.all_groups_private()
