"""Join/leave group management with the ``[k, 2k-1]`` size invariant.

Section IV-C: *"Group members need to react to nodes leaving the group, such
that the intended group size remains within chosen parameters, namely k and
2k − 1 as a group of size 2k can be split in two groups of size k.  Until the
network is large enough to satisfy the minimal group size k, privacy can not
be guaranteed."*
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

_group_counter = itertools.count()


@dataclass
class Group:
    """One DC-net group.

    Attributes:
        group_id: unique identifier of the group.
        members: current member identities (sorted for determinism).
        min_size: the privacy parameter ``k``.
    """

    group_id: int
    members: List[Hashable]
    min_size: int

    def __post_init__(self) -> None:
        self.members = sorted(set(self.members), key=repr)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def max_size(self) -> int:
        """Largest allowed size before a split: ``2k - 1``."""
        return 2 * self.min_size - 1

    @property
    def provides_privacy(self) -> bool:
        """Whether the group is large enough to give k-anonymity."""
        return self.size >= self.min_size

    def contains(self, node: Hashable) -> bool:
        return node in self.members


class GroupManager:
    """Creates, grows, shrinks and splits groups for a population of nodes.

    The manager keeps every node in exactly one group (the overlapping-group
    extension is analysed separately in :mod:`repro.groups.overlap`) and
    maintains the invariant that groups have between ``k`` and ``2k - 1``
    members whenever the population allows it.
    """

    def __init__(self, min_size: int, rng: Optional[random.Random] = None) -> None:
        if min_size < 2:
            raise ValueError("the group size parameter k must be at least 2")
        self.min_size = min_size
        self.rng = rng or random.Random()
        self._groups: Dict[int, Group] = {}
        self._membership: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def groups(self) -> List[Group]:
        """All current groups, sorted by id."""
        return [self._groups[gid] for gid in sorted(self._groups)]

    def group_of(self, node: Hashable) -> Optional[Group]:
        """The group ``node`` belongs to, or ``None``."""
        group_id = self._membership.get(node)
        if group_id is None:
            return None
        return self._groups[group_id]

    def nodes(self) -> List[Hashable]:
        """All nodes currently assigned to a group."""
        return sorted(self._membership, key=repr)

    def all_groups_private(self) -> bool:
        """Whether every group satisfies the minimum size ``k``."""
        return all(group.provides_privacy for group in self._groups.values())

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def join(self, node: Hashable) -> Group:
        """Add ``node`` to the smallest group (creating one if necessary).

        A group that reaches ``2k`` members is immediately split into two
        groups of ``k`` each.

        Raises:
            ValueError: if the node is already a member of a group.
        """
        if node in self._membership:
            raise ValueError(f"node {node!r} already belongs to a group")
        target = self._smallest_group()
        if target is None or target.size >= 2 * self.min_size:
            target = self._create_group([])
        target.members = sorted(target.members + [node], key=repr)
        self._membership[node] = target.group_id
        if target.size >= 2 * self.min_size:
            self._split(target)
        return self.group_of(node)  # type: ignore[return-value]

    def leave(self, node: Hashable) -> Optional[Group]:
        """Remove ``node``; merge its group away if it became too small.

        Returns the group the remaining members ended up in (or ``None`` when
        the departed node was the last one).
        """
        group_id = self._membership.pop(node, None)
        if group_id is None:
            raise ValueError(f"node {node!r} does not belong to any group")
        group = self._groups[group_id]
        group.members = [m for m in group.members if m != node]
        if group.size == 0:
            del self._groups[group_id]
            return None
        if group.size < self.min_size:
            return self._rebalance(group)
        return group

    def assign_population(self, nodes: List[Hashable]) -> List[Group]:
        """Partition a whole population into groups of size ``k .. 2k-1``.

        Nodes are shuffled (with the manager's RNG) before assignment so
        group composition is not correlated with node identifiers.
        """
        pending = [node for node in nodes if node not in self._membership]
        self.rng.shuffle(pending)
        for node in pending:
            self.join(node)
        return self.groups

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _create_group(self, members: List[Hashable]) -> Group:
        group = Group(
            group_id=next(_group_counter), members=members, min_size=self.min_size
        )
        self._groups[group.group_id] = group
        for member in group.members:
            self._membership[member] = group.group_id
        return group

    def _smallest_group(self) -> Optional[Group]:
        candidates = [g for g in self._groups.values() if g.size < 2 * self.min_size]
        if not candidates:
            return None
        return min(candidates, key=lambda g: (g.size, g.group_id))

    def _split(self, group: Group) -> None:
        members = list(group.members)
        self.rng.shuffle(members)
        half = len(members) // 2
        first, second = members[:half], members[half:]
        group.members = sorted(first, key=repr)
        for member in group.members:
            self._membership[member] = group.group_id
        new_group = self._create_group(sorted(second, key=repr))
        for member in new_group.members:
            self._membership[member] = new_group.group_id

    def _rebalance(self, group: Group) -> Group:
        """Merge an undersized group into the smallest other group."""
        others = [g for g in self._groups.values() if g.group_id != group.group_id]
        if not others:
            return group  # nothing to merge with; privacy temporarily degraded
        target = min(others, key=lambda g: (g.size, g.group_id))
        target.members = sorted(target.members + group.members, key=repr)
        for member in group.members:
            self._membership[member] = target.group_id
        del self._groups[group.group_id]
        if target.size >= 2 * self.min_size:
            self._split(target)
        return self._groups.get(target.group_id, target)
