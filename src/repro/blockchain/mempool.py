"""The mempool: transactions received but not yet included in a block."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.blockchain.transaction import Transaction


class Mempool:
    """A fee-ordered pool of pending transactions."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be positive when given")
        self._transactions: Dict[str, Transaction] = {}
        self._arrival: Dict[str, int] = {}
        self._counter = 0
        self.max_size = max_size

    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._transactions

    def add(self, transaction: Transaction) -> bool:
        """Add a transaction; returns ``False`` for duplicates.

        When the pool is full, the lowest-fee transaction is evicted if the
        newcomer pays more; otherwise the newcomer is rejected.
        """
        tx_id = transaction.tx_id
        if tx_id in self._transactions:
            return False
        if self.max_size is not None and len(self._transactions) >= self.max_size:
            lowest = min(
                self._transactions.values(), key=lambda tx: (tx.fee, tx.tx_id)
            )
            if lowest.fee >= transaction.fee:
                return False
            self.remove(lowest.tx_id)
        self._transactions[tx_id] = transaction
        self._arrival[tx_id] = self._counter
        self._counter += 1
        return True

    def remove(self, tx_id: str) -> Optional[Transaction]:
        """Remove and return a transaction, or ``None`` if absent."""
        self._arrival.pop(tx_id, None)
        return self._transactions.pop(tx_id, None)

    def get(self, tx_id: str) -> Optional[Transaction]:
        """Look up a pending transaction by id."""
        return self._transactions.get(tx_id)

    def select_for_block(self, count: int) -> List[Transaction]:
        """The ``count`` highest-fee transactions (ties: arrival order)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        ranked = sorted(
            self._transactions.values(),
            key=lambda tx: (-tx.fee, self._arrival[tx.tx_id]),
        )
        return ranked[:count]

    def all_transactions(self) -> List[Transaction]:
        """All pending transactions in arrival order."""
        return sorted(
            self._transactions.values(), key=lambda tx: self._arrival[tx.tx_id]
        )
