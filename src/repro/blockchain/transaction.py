"""Transactions: the payloads whose broadcast the protocol protects."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Transaction:
    """A simple value transfer.

    Attributes:
        sender: address of the paying wallet.
        recipient: address of the receiving wallet.
        amount: transferred amount (must be positive).
        fee: miner fee (non-negative), the incentive of Section II.
        nonce: sender-chosen counter making otherwise equal transfers distinct.
    """

    sender: str
    recipient: str
    amount: int
    fee: int = 1
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError("the transferred amount must be positive")
        if self.fee < 0:
            raise ValueError("the fee must be non-negative")

    @property
    def tx_id(self) -> str:
        """Hex digest identifying this transaction."""
        return hashlib.sha256(self.serialize()).hexdigest()

    def serialize(self) -> bytes:
        """Canonical byte encoding (also the broadcast payload)."""
        return json.dumps(
            {
                "sender": self.sender,
                "recipient": self.recipient,
                "amount": self.amount,
                "fee": self.fee,
                "nonce": self.nonce,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "Transaction":
        """Inverse of :meth:`serialize`.

        Raises:
            ValueError: if the bytes are not a valid transaction encoding.
        """
        try:
            fields = json.loads(data.decode("utf-8"))
            return cls(
                sender=fields["sender"],
                recipient=fields["recipient"],
                amount=fields["amount"],
                fee=fields["fee"],
                nonce=fields["nonce"],
            )
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ValueError(f"invalid transaction encoding: {exc}") from exc
