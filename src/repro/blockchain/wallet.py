"""Wallets: addresses and transaction creation."""

from __future__ import annotations

import hashlib
import random
from typing import Optional

from repro.blockchain.transaction import Transaction


class Wallet:
    """A spending identity with an address and a transaction nonce counter.

    The address is derived by hashing a random identity secret; no real
    signature scheme is needed for the protocol experiments, but the address
    derivation mirrors the "hashed identity, e.g., public key" the paper's
    virtual-source selection rule relies on.
    """

    def __init__(self, rng: Optional[random.Random] = None, label: str = "") -> None:
        rng = rng or random.Random()
        secret = bytes(rng.getrandbits(8) for _ in range(32))
        self._secret = secret
        self.label = label
        self.address = hashlib.sha256(b"wallet|" + secret).hexdigest()[:40]
        self._nonce = 0

    def create_transaction(
        self, recipient: "Wallet | str", amount: int, fee: int = 1
    ) -> Transaction:
        """Create a transfer to ``recipient`` and advance the nonce."""
        recipient_address = (
            recipient.address if isinstance(recipient, Wallet) else recipient
        )
        transaction = Transaction(
            sender=self.address,
            recipient=recipient_address,
            amount=amount,
            fee=fee,
            nonce=self._nonce,
        )
        self._nonce += 1
        return transaction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f" {self.label}" if self.label else ""
        return f"Wallet({self.address[:8]}…{suffix})"
