"""A proof-of-work miner assembling blocks from a mempool."""

from __future__ import annotations

import random
from typing import Optional

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.mempool import Mempool


class Miner:
    """Selects high-fee transactions and searches for a valid nonce.

    The proof of work is genuine (hash below a target) but the default
    difficulty is tiny so experiments remain fast; the point of the substrate
    is the *flow* of Section II — transactions must reach miners before they
    can earn their fees — not hash-rate realism.
    """

    def __init__(
        self,
        address: str,
        chain: Blockchain,
        mempool: Mempool,
        block_size: int = 10,
        rng: Optional[random.Random] = None,
        max_attempts: int = 200_000,
    ) -> None:
        if block_size < 1:
            raise ValueError("block size must be at least 1")
        self.address = address
        self.chain = chain
        self.mempool = mempool
        self.block_size = block_size
        self.rng = rng or random.Random()
        self.max_attempts = max_attempts
        self.earned_fees = 0

    def mine_block(self) -> Optional[Block]:
        """Assemble and mine one block; returns ``None`` if PoW search fails.

        On success the block is appended to the chain, its transactions are
        removed from the mempool and the miner's fee account is credited.
        """
        transactions = [
            tx
            for tx in self.mempool.select_for_block(self.block_size)
            if not self.chain.contains_transaction(tx.tx_id)
        ]
        template = dict(
            height=self.chain.tip.height + 1,
            previous_hash=self.chain.tip.block_hash,
            transactions=tuple(transactions),
            miner=self.address,
        )
        for _ in range(self.max_attempts):
            candidate = Block(nonce=self.rng.getrandbits(64), **template)
            if candidate.meets_difficulty(self.chain.difficulty_bits):
                self.chain.append(candidate)
                for tx in transactions:
                    self.mempool.remove(tx.tx_id)
                self.earned_fees += candidate.total_fees()
                return candidate
        return None
