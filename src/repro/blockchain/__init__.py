"""Minimal blockchain substrate grounding the examples in the paper's scenario.

Section II of the paper describes the setting: nodes broadcast transactions
through a peer-to-peer network, miners collect them into blocks, vote via
proof of work and earn fees.  The privacy protocol protects the *broadcast*;
this package provides just enough of the surrounding system — transactions,
wallets, a mempool, blocks, a chain and a simple miner — for the examples and
integration tests to exercise the protocol in its intended context.
"""

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import Miner
from repro.blockchain.transaction import Transaction
from repro.blockchain.wallet import Wallet

__all__ = ["Block", "Blockchain", "Mempool", "Miner", "Transaction", "Wallet"]
