"""The blockchain: an append-only, hash-linked sequence of blocks."""

from __future__ import annotations

from typing import List, Optional, Set

from repro.blockchain.block import Block

#: Previous-hash value of the genesis block.
GENESIS_PREVIOUS_HASH = "0" * 64


class Blockchain:
    """An append-only ledger with structural validation on append."""

    def __init__(self, difficulty_bits: int = 8) -> None:
        if difficulty_bits < 0:
            raise ValueError("difficulty must be non-negative")
        self.difficulty_bits = difficulty_bits
        genesis = Block(height=0, previous_hash=GENESIS_PREVIOUS_HASH)
        self._blocks: List[Block] = [genesis]
        self._included_tx_ids: Set[str] = set()

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def tip(self) -> Block:
        """The most recently appended block."""
        return self._blocks[-1]

    @property
    def blocks(self) -> List[Block]:
        """All blocks, genesis first."""
        return list(self._blocks)

    def contains_transaction(self, tx_id: str) -> bool:
        """Whether a transaction id is already included in some block."""
        return tx_id in self._included_tx_ids

    def append(self, block: Block) -> None:
        """Append ``block`` after validating it against the current tip.

        Raises:
            ValueError: if the block does not extend the tip, fails the
                proof-of-work check, or re-includes a known transaction.
        """
        if block.previous_hash != self.tip.block_hash:
            raise ValueError("block does not extend the current tip")
        if block.height != self.tip.height + 1:
            raise ValueError(
                f"expected height {self.tip.height + 1}, got {block.height}"
            )
        if not block.meets_difficulty(self.difficulty_bits):
            raise ValueError("block does not meet the proof-of-work difficulty")
        duplicate = [
            tx.tx_id for tx in block.transactions if tx.tx_id in self._included_tx_ids
        ]
        if duplicate:
            raise ValueError(f"transactions already included: {duplicate}")
        self._blocks.append(block)
        self._included_tx_ids.update(tx.tx_id for tx in block.transactions)

    def validate(self) -> bool:
        """Re-validate the whole chain (hash links and difficulty)."""
        for previous, current in zip(self._blocks, self._blocks[1:]):
            if current.previous_hash != previous.block_hash:
                return False
            if current.height != previous.height + 1:
                return False
            if not current.meets_difficulty(self.difficulty_bits):
                return False
        return True

    def find_block_of(self, tx_id: str) -> Optional[Block]:
        """The block containing ``tx_id``, or ``None``."""
        for block in self._blocks:
            if any(tx.tx_id == tx_id for tx in block.transactions):
                return block
        return None
