"""Blocks: batches of transactions chained by hashes."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.blockchain.transaction import Transaction


@dataclass(frozen=True)
class Block:
    """One block of the chain.

    Attributes:
        height: position in the chain (0 for the genesis block).
        previous_hash: hash of the preceding block.
        transactions: transactions included by the miner.
        miner: address of the block's producer.
        nonce: proof-of-work nonce found by the miner.
    """

    height: int
    previous_hash: str
    transactions: Sequence[Transaction] = field(default_factory=tuple)
    miner: str = ""
    nonce: int = 0

    def header_bytes(self) -> bytes:
        """Canonical encoding of the block header (what the PoW hashes)."""
        return json.dumps(
            {
                "height": self.height,
                "previous_hash": self.previous_hash,
                "merkle": self.merkle_root(),
                "miner": self.miner,
                "nonce": self.nonce,
            },
            sort_keys=True,
        ).encode("utf-8")

    def merkle_root(self) -> str:
        """A simple Merkle-style digest over the included transaction ids."""
        digests: List[str] = [tx.tx_id for tx in self.transactions]
        if not digests:
            return hashlib.sha256(b"empty").hexdigest()
        while len(digests) > 1:
            if len(digests) % 2 == 1:
                digests.append(digests[-1])
            digests = [
                hashlib.sha256((a + b).encode("utf-8")).hexdigest()
                for a, b in zip(digests[::2], digests[1::2])
            ]
        return digests[0]

    @property
    def block_hash(self) -> str:
        """Hash of the block header."""
        return hashlib.sha256(self.header_bytes()).hexdigest()

    def total_fees(self) -> int:
        """Sum of the fees of all included transactions (the miner's reward)."""
        return sum(tx.fee for tx in self.transactions)

    def meets_difficulty(self, difficulty_bits: int) -> bool:
        """Whether the block hash has ``difficulty_bits`` leading zero bits."""
        if difficulty_bits < 0:
            raise ValueError("difficulty must be non-negative")
        value = int(self.block_hash, 16)
        return value < (1 << (256 - difficulty_bits))
